"""What-if platform definition: preview hardware before buying it.

"enable practitioners to establish performance expectations before
deployment" — :func:`define_platform` turns datasheet numbers into a
:class:`PlatformSpec` (practical FLOPS estimated from the tier's observed
efficiency when no measurement exists), and :func:`preview_platform` runs
the whole model zoo through the predictor on it.

:func:`cache_effective_qps` extends the same pre-deployment question to
the caching subsystem (:mod:`repro.cache`): what request rate does the
same hardware sustain once a cache tier with a given hit ratio
short-circuits a given fraction of per-request cost?
"""

from __future__ import annotations

import math

from repro.hardware.platform import (
    PlatformKind,
    PlatformSpec,
    Scenario,
    get_platform,
)
from repro.hardware.precision import Precision, parse_precision
from repro.models.zoo import list_models
from repro.predict.predictor import PerformancePredictor

#: Practical/theoretical efficiency assumed for an unmeasured device,
#: taken from the tier's measured platforms (Table 1): cloud 75-83%,
#: edge 67%.
_TIER_EFFICIENCY = {PlatformKind.CLOUD: 0.78, PlatformKind.EDGE: 0.67}


def define_platform(
    name: str,
    kind: "PlatformKind | str",
    peak_tflops: float,
    precision: "Precision | str",
    gpu_memory_gb: float,
    memory_bandwidth_gbps: float,
    cpu_cores: int,
    unified_memory: bool = False,
    host_memory_gb: float | None = None,
    measured_practical_tflops: float | None = None,
    power_watts: float | None = None,
) -> PlatformSpec:
    """Build a hypothetical platform from datasheet numbers.

    ``measured_practical_tflops`` overrides the tier-efficiency estimate
    when the practitioner has run the Table 1 GEMM benchmark on real
    hardware.

    >>> orin_nx = define_platform("OrinNX", "edge", peak_tflops=50.0,
    ...     precision="fp16", gpu_memory_gb=16, memory_bandwidth_gbps=102,
    ...     cpu_cores=8, unified_memory=True)
    >>> orin_nx.practical_tflops
    33.5
    """
    kind = PlatformKind(kind)
    if kind is PlatformKind.HOST:
        raise ValueError("define cloud or edge platforms")
    precision = parse_precision(precision)
    if peak_tflops <= 0:
        raise ValueError("peak_tflops must be positive")
    practical = (measured_practical_tflops
                 if measured_practical_tflops is not None
                 else round(peak_tflops * _TIER_EFFICIENCY[kind], 1))
    scenarios = ((Scenario.REAL_TIME,) if kind is PlatformKind.EDGE
                 else (Scenario.ONLINE, Scenario.OFFLINE))
    usable = 0.52 if unified_memory else 0.92
    return PlatformSpec(
        name=name,
        kind=kind,
        cpu_cores=cpu_cores,
        gpu_name=f"{name} (hypothetical)",
        gpu_count=1,
        gpu_memory_gb=gpu_memory_gb,
        host_memory_gb=(gpu_memory_gb if unified_memory
                        else (host_memory_gb or 4 * gpu_memory_gb)),
        unified_memory=unified_memory,
        theoretical_tflops={precision: peak_tflops},
        practical_tflops=practical,
        benchmark_precision=precision,
        memory_bandwidth_gbps=memory_bandwidth_gbps,
        scenarios=scenarios,
        power_watts=power_watts,
        usable_memory_fraction=usable,
    )


def cache_effective_qps(base_qps: float, hit_ratio: float,
                        stage_fraction: float) -> float:
    """Sustainable QPS once a cache absorbs part of every request.

    A cache tier with hit ratio *h* short-circuiting a stage that is
    fraction *f* of each request's serving cost leaves ``1 - h*f`` of
    the original per-request work, so the same hardware sustains

        ``effective_qps = base_qps / (1 - h * f)``

    An edge *result* cache short-circuits the whole serving path
    (``stage_fraction=1.0``: at h=0.8 one replica set serves 5x the
    frames); a cloud *tensor* cache removes only the preprocess share
    (CRSA's CPU-bound warp can be >0.5 of the Fig. 8 budget).  A fully
    absorbed workload (``h*f == 1``) returns ``inf``.
    """
    if base_qps <= 0:
        raise ValueError("base_qps must be positive")
    if not 0.0 <= hit_ratio <= 1.0:
        raise ValueError("hit_ratio must be in [0, 1]")
    if not 0.0 <= stage_fraction <= 1.0:
        raise ValueError("stage_fraction must be in [0, 1]")
    remaining = 1.0 - hit_ratio * stage_fraction
    if remaining <= 0.0:
        return float("inf")
    return base_qps / remaining


def uplink_fair_share_rate(link, endpoints: int,
                           image_bytes: float) -> float:
    """Per-endpoint upload ceiling on a shared bottleneck (images/s).

    ``endpoints`` co-located devices fair-share one uplink, so each
    sustains ``link.sustainable_images_per_second(image_bytes) /
    endpoints`` — already discounted for the link's loss-retransmission
    expansion.  The "can four field cameras stream through one LTE
    modem" question, answered before deploying.
    """
    if endpoints < 1:
        raise ValueError("endpoints must be >= 1")
    return link.sustainable_images_per_second(image_bytes) / endpoints


def preview_cache_capacity(base_qps: float, stage_fraction: float,
                           hit_ratios: tuple[float, ...] = (
                               0.0, 0.25, 0.5, 0.8, 0.9, 0.95),
                           ) -> list[dict]:
    """The "do we need more replicas or a cache" table.

    One row per candidate hit ratio: the effective sustainable QPS and
    the capacity multiplier versus the uncached baseline, for a cache
    short-circuiting ``stage_fraction`` of per-request cost.
    """
    rows = []
    for hit_ratio in hit_ratios:
        effective = cache_effective_qps(base_qps, hit_ratio,
                                        stage_fraction)
        rows.append({
            "hit_ratio": hit_ratio,
            "stage_fraction": stage_fraction,
            "effective_qps": effective,
            "capacity_multiplier": effective / base_qps,
        })
    return rows


def compare_serverless(trace, *, execute_seconds: float,
                       memory_gb: float, replica_cost_per_hour: float,
                       replica_qps_capacity: float, cost_model=None,
                       bins: int = 24) -> dict:
    """Serverless vs. provisioned replicas for one farm trace.

    Planner-regime arithmetic (deterministic, no simulation): the
    trace is binned into ``bins`` equal windows via
    :meth:`~repro.serving.traces.ArrivalTrace.rate_histogram`; in each
    bin the serverless cost rate is ``rate x invocation_cost`` while
    the provisioned fleet — sized for the trace's *peak* bin, because
    replicas cannot scale-to-zero between frames — costs a flat
    ``replicas x replica_cost_per_hour``.  The crossover falls out of
    the comparison: sparse nighttime bins favor the per-invocation
    meter, the daylight peak favors the flat replica.

    ``break_even_qps`` is the request rate at which serverless spend
    matches *one* provisioned replica — above it, provisioned becomes
    cheaper per replica's worth of traffic.

    Returns a JSON-friendly dict: per-bin rates and cost rates, trace
    totals in dollars, the break-even QPS, crossover hours (bins where
    serverless is the cheaper regime), and the overall verdict.
    """
    from repro.faas.cost import CostModel

    if execute_seconds <= 0:
        raise ValueError("execute_seconds must be positive")
    if memory_gb <= 0:
        raise ValueError("memory_gb must be positive")
    if replica_cost_per_hour < 0:
        raise ValueError("replica cost must be >= 0")
    if replica_qps_capacity <= 0:
        raise ValueError("replica_qps_capacity must be positive")
    if cost_model is None:
        cost_model = CostModel()
    rates = trace.rate_histogram(bins)
    peak_rate = max(rates) if rates else 0.0
    replicas = max(1, math.ceil(peak_rate / replica_qps_capacity))
    provisioned_per_second = replicas * replica_cost_per_hour / 3600.0
    per_invocation = cost_model.invocation_cost(execute_seconds,
                                                memory_gb)
    bin_seconds = trace.duration / bins
    bin_rows = []
    serverless_total = 0.0
    crossover_bins = 0
    for index, rate in enumerate(rates):
        serverless_rate = cost_model.serverless_cost_per_second(
            rate, execute_seconds, memory_gb)
        serverless_total += serverless_rate * bin_seconds
        cheaper = serverless_rate < provisioned_per_second
        crossover_bins += cheaper
        bin_rows.append({
            "start": index * bin_seconds,
            "rate": rate,
            "serverless_usd_per_s": serverless_rate,
            "provisioned_usd_per_s": provisioned_per_second,
            "serverless_cheaper": bool(cheaper),
        })
    provisioned_total = provisioned_per_second * trace.duration
    break_even_qps = (float("inf") if per_invocation == 0 else
                      (replica_cost_per_hour / 3600.0) / per_invocation)
    return {
        "bins": bin_rows,
        "replicas": replicas,
        "peak_rate": peak_rate,
        "per_invocation_usd": per_invocation,
        "serverless_total_usd": serverless_total,
        "provisioned_total_usd": provisioned_total,
        "break_even_qps": break_even_qps,
        "crossover_hours": crossover_bins * bin_seconds / 3600.0,
        "cheaper": ("serverless"
                    if serverless_total < provisioned_total
                    else "provisioned"),
    }


def preview_platform(platform: PlatformSpec,
                     donor: str | None = None) -> list[dict]:
    """Run the model zoo through the predictor on a candidate device.

    Returns one expectation report per zoo model, plus the speedup over
    the same-tier reference platform — the "should we buy it" table.
    """
    predictor = PerformancePredictor(platform, donor=donor)
    reference = get_platform("jetson"
                             if platform.kind is PlatformKind.EDGE
                             else "a100")
    ref_predictor = PerformancePredictor(reference)
    rows = []
    for entry in list_models():
        report = predictor.expectation_report(entry.graph)
        ref = ref_predictor.expectation_report(entry.graph)
        report["speedup_vs_" + reference.name.lower()] = (
            report["peak_throughput"] / ref["peak_throughput"])
        rows.append(report)
    return rows


def _preview_worker(params: dict) -> dict:
    """Sweep worker: one candidate platform's full preview report.

    Runs inside a pool worker process, so the candidate arrives as the
    plain :func:`define_platform` keyword dict (a ``PlatformSpec``
    holds enum members and would pin pickling to this module's import
    state) and the rows return as plain dicts.
    """
    candidate = dict(params["candidate"])
    platform = define_platform(**candidate)
    return {
        "platform": platform.name,
        "practical_tflops": platform.practical_tflops,
        "rows": preview_platform(platform, donor=params.get("donor")),
    }


def preview_platform_grid(candidates: "list[dict]", jobs: int = 1,
                          donor: str | None = None) -> list[dict]:
    """Preview a grid of candidate platforms, optionally in parallel.

    ``candidates`` is a list of :func:`define_platform` keyword dicts
    (the procurement short-list).  Each candidate runs the full
    model-zoo preview — independent work, so with ``jobs > 1`` the
    grid fans out across processes via :mod:`repro.sweep`.  Reports
    come back in candidate order regardless of worker count; a bad
    datasheet fails its own candidate with the offending parameters
    attached instead of sinking the whole grid.
    """
    if not candidates:
        raise ValueError("preview_platform_grid needs candidates")
    for candidate in candidates:
        define_platform(**dict(candidate))  # fail fast, pre-dispatch

    from repro.sweep import SweepRunner, SweepSpec

    spec = SweepSpec(
        worker="repro.predict.whatif:_preview_worker",
        grid=[{"candidate": dict(c), "donor": donor}
              for c in candidates],
        expected_cost=lambda p: float(
            p["candidate"].get("peak_tflops", 1.0)))
    result = SweepRunner(jobs=jobs).run(spec)
    result.raise_on_error()
    return result.values()
