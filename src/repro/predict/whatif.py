"""What-if platform definition: preview hardware before buying it.

"enable practitioners to establish performance expectations before
deployment" — :func:`define_platform` turns datasheet numbers into a
:class:`PlatformSpec` (practical FLOPS estimated from the tier's observed
efficiency when no measurement exists), and :func:`preview_platform` runs
the whole model zoo through the predictor on it.
"""

from __future__ import annotations

from repro.hardware.platform import (
    PlatformKind,
    PlatformSpec,
    Scenario,
    get_platform,
)
from repro.hardware.precision import Precision, parse_precision
from repro.models.zoo import list_models
from repro.predict.predictor import PerformancePredictor

#: Practical/theoretical efficiency assumed for an unmeasured device,
#: taken from the tier's measured platforms (Table 1): cloud 75-83%,
#: edge 67%.
_TIER_EFFICIENCY = {PlatformKind.CLOUD: 0.78, PlatformKind.EDGE: 0.67}


def define_platform(
    name: str,
    kind: "PlatformKind | str",
    peak_tflops: float,
    precision: "Precision | str",
    gpu_memory_gb: float,
    memory_bandwidth_gbps: float,
    cpu_cores: int,
    unified_memory: bool = False,
    host_memory_gb: float | None = None,
    measured_practical_tflops: float | None = None,
    power_watts: float | None = None,
) -> PlatformSpec:
    """Build a hypothetical platform from datasheet numbers.

    ``measured_practical_tflops`` overrides the tier-efficiency estimate
    when the practitioner has run the Table 1 GEMM benchmark on real
    hardware.

    >>> orin_nx = define_platform("OrinNX", "edge", peak_tflops=50.0,
    ...     precision="fp16", gpu_memory_gb=16, memory_bandwidth_gbps=102,
    ...     cpu_cores=8, unified_memory=True)
    >>> orin_nx.practical_tflops
    33.5
    """
    kind = PlatformKind(kind)
    if kind is PlatformKind.HOST:
        raise ValueError("define cloud or edge platforms")
    precision = parse_precision(precision)
    if peak_tflops <= 0:
        raise ValueError("peak_tflops must be positive")
    practical = (measured_practical_tflops
                 if measured_practical_tflops is not None
                 else round(peak_tflops * _TIER_EFFICIENCY[kind], 1))
    scenarios = ((Scenario.REAL_TIME,) if kind is PlatformKind.EDGE
                 else (Scenario.ONLINE, Scenario.OFFLINE))
    usable = 0.52 if unified_memory else 0.92
    return PlatformSpec(
        name=name,
        kind=kind,
        cpu_cores=cpu_cores,
        gpu_name=f"{name} (hypothetical)",
        gpu_count=1,
        gpu_memory_gb=gpu_memory_gb,
        host_memory_gb=(gpu_memory_gb if unified_memory
                        else (host_memory_gb or 4 * gpu_memory_gb)),
        unified_memory=unified_memory,
        theoretical_tflops={precision: peak_tflops},
        practical_tflops=practical,
        benchmark_precision=precision,
        memory_bandwidth_gbps=memory_bandwidth_gbps,
        scenarios=scenarios,
        power_watts=power_watts,
        usable_memory_fraction=usable,
    )


def preview_platform(platform: PlatformSpec,
                     donor: str | None = None) -> list[dict]:
    """Run the model zoo through the predictor on a candidate device.

    Returns one expectation report per zoo model, plus the speedup over
    the same-tier reference platform — the "should we buy it" table.
    """
    predictor = PerformancePredictor(platform, donor=donor)
    reference = get_platform("jetson"
                             if platform.kind is PlatformKind.EDGE
                             else "a100")
    ref_predictor = PerformancePredictor(reference)
    rows = []
    for entry in list_models():
        report = predictor.expectation_report(entry.graph)
        ref = ref_predictor.expectation_report(entry.graph)
        report["speedup_vs_" + reference.name.lower()] = (
            report["peak_throughput"] / ref["peak_throughput"])
        rows.append(report)
    return rows
