"""Serverless (FaaS) execution model: cold starts, scale-to-zero, and
the GB-second cost meter.

The paper benchmarks HARVEST inference on provisioned platforms; this
package models the alternative deployment the sparse nighttime farm
trace invites — Functions-as-a-Service, where instances spawn on
demand, idle capacity is reaped, and the bill is metered per
invocation instead of per replica-hour.  See ``docs/serverless.md``.
"""

from repro.faas.backend import (
    FaaSBackend,
    FaaSFunctionConfig,
    FunctionStats,
)
from repro.faas.cost import CostLedger, CostModel
from repro.faas.platform import (
    FaaSPlatformModel,
    get_faas_platform,
    list_faas_platforms,
)

__all__ = [
    "CostLedger",
    "CostModel",
    "FaaSBackend",
    "FaaSFunctionConfig",
    "FaaSPlatformModel",
    "FunctionStats",
    "get_faas_platform",
    "list_faas_platforms",
]
