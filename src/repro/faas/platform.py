"""FaaS platform models: where cold-start latency comes from.

A serverless cold start has two legs the paper's provisioned platforms
never pay: *sandbox provisioning* (the platform allocates a microVM or
container and boots the runtime) and *initialization* (the function
fetches its model artifact and loads it before the first inference).
Both are priced here per platform, because they differ by an order of
magnitude between a hyperscaler FaaS and an on-farm edge runtime.

The model follows the dual-regime discipline of
:class:`~repro.continuum.network.NetworkLink`:

* :attr:`FaaSPlatformModel.expected_cold_start_seconds` is the
  deterministic planner regime — no randomness, the number a capacity
  or cost planner should use.  Sandbox jitter is zero-mean, so the
  expected value simply ignores it.
* :meth:`FaaSPlatformModel.sample_cold_start` is the replay regime —
  sandbox time gets a seeded, uniform zero-mean jitter.  A platform
  with ``cold_start_jitter_seconds == 0`` consumes **no** randomness,
  so adding a jitter-free function to a replay cannot shift any other
  sampled quantity (the same contract lossless links keep).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class FaaSPlatformModel:
    """Cold-start and billing geometry of one serverless platform.

    ``cold_start_base_seconds`` is the median sandbox-provisioning
    time; ``cold_start_jitter_seconds`` a uniform half-width around it
    (zero-mean, so planners may ignore it).  Initialization is modeled
    as fetching ``artifact_bytes`` of model weights at
    ``artifact_bandwidth_bps`` — the part of a cold start that scales
    with the model, not the platform.  ``memory_gb`` is the function's
    memory allocation, the unit the GB-second meter multiplies by.
    """

    name: str
    cold_start_base_seconds: float
    cold_start_jitter_seconds: float
    artifact_bytes: float
    artifact_bandwidth_bps: float
    memory_gb: float

    def __post_init__(self) -> None:
        if self.cold_start_base_seconds < 0:
            raise ValueError("cold-start base must be >= 0")
        if self.cold_start_jitter_seconds < 0:
            raise ValueError("cold-start jitter must be >= 0")
        if self.cold_start_jitter_seconds > self.cold_start_base_seconds:
            raise ValueError(
                "cold-start jitter half-width cannot exceed the base "
                "(sandbox time would go negative)")
        if self.artifact_bytes < 0:
            raise ValueError("artifact size must be >= 0")
        if self.artifact_bandwidth_bps <= 0:
            raise ValueError("artifact bandwidth must be positive")
        if self.memory_gb <= 0:
            raise ValueError("memory allocation must be positive")

    # ------------------------------------------------------------------
    @property
    def init_seconds(self) -> float:
        """Deterministic initialization leg (artifact fetch + load)."""
        return self.artifact_bytes * 8.0 / self.artifact_bandwidth_bps

    @property
    def expected_cold_start_seconds(self) -> float:
        """Planner regime: expected sandbox + init time, no randomness."""
        return self.cold_start_base_seconds + self.init_seconds

    def sample_cold_start(self, rng=None) -> tuple[float, float]:
        """Replay regime: one ``(sandbox_seconds, init_seconds)`` draw.

        With ``rng=None`` (or zero jitter) this degrades to the
        expected values and consumes no randomness, so planner-mode
        backends and jitter-free platforms stay byte-deterministic.
        """
        sandbox = self.cold_start_base_seconds
        if rng is not None and self.cold_start_jitter_seconds > 0.0:
            sandbox += float(rng.uniform(-self.cold_start_jitter_seconds,
                                         self.cold_start_jitter_seconds))
        return sandbox, self.init_seconds


#: Platform presets.  Numbers are representative of published
#: measurements, not vendor quotes: a hyperscaler FaaS provisions a
#: microVM in a few hundred milliseconds and fetches artifacts from
#: object storage at ~1 Gbps; a container-based platform pays an image
#: pull; an on-farm edge runtime keeps artifacts on local flash, so
#: its cold start is almost all process spawn.
_PLATFORMS: dict[str, FaaSPlatformModel] = {
    p.name: p for p in (
        FaaSPlatformModel(
            name="lambda_like",
            cold_start_base_seconds=0.25,
            cold_start_jitter_seconds=0.10,
            artifact_bytes=100e6,
            artifact_bandwidth_bps=1e9,
            memory_gb=2.0),
        FaaSPlatformModel(
            name="container_faas",
            cold_start_base_seconds=1.2,
            cold_start_jitter_seconds=0.4,
            artifact_bytes=250e6,
            artifact_bandwidth_bps=2e9,
            memory_gb=4.0),
        FaaSPlatformModel(
            name="edge_faas",
            cold_start_base_seconds=0.08,
            cold_start_jitter_seconds=0.0,
            artifact_bytes=25e6,
            artifact_bandwidth_bps=4e9,
            memory_gb=1.0),
    )
}


def get_faas_platform(name: str) -> FaaSPlatformModel:
    """Look up a platform preset by name (KeyError lists options)."""
    key = name.lower()
    if key not in _PLATFORMS:
        raise KeyError(
            f"unknown FaaS platform {name!r}; available: "
            f"{', '.join(sorted(_PLATFORMS))}")
    return _PLATFORMS[key]


def list_faas_platforms() -> list[str]:
    """Names of all registered platform presets, sorted."""
    return sorted(_PLATFORMS)
