"""`FaaSBackend`: the serverless execution model on the sim clock.

Where :class:`~repro.serving.server.TritonLikeServer` models a
provisioned replica — instances exist before traffic and batch
aggressively — this backend models Functions-as-a-Service: per-function
instances spawn *on demand*, each serves one request at a time, idle
instances are reaped after a keep-alive window (scale-to-zero), and
every finished execution feeds a :class:`~repro.faas.cost.CostLedger`
in GB-seconds.  The request that triggers a spawn is bound to it and
pays the cold start (sandbox provisioning + artifact initialization);
requests arriving while all instances are busy and the concurrency
limit is reached wait in a per-function FIFO queue.

The backend speaks the same duck-type surface the scaling layer
expects of a server (``submit`` / ``queue_depth`` / ``queued_images``
/ ``busy_instances`` / ``total_instances`` / ``model_names`` /
``instance_stats`` / ``begin_drain`` / ``is_drained`` / ``responses``),
so a :class:`~repro.scale.balancer.LoadBalancer` can route a mixed
fleet — provisioned replicas plus FaaS overflow — without knowing
which is which.  ``instance_stats`` returns one *aggregate* record per
function rather than per (ephemeral) instance: reaped instances must
not take their busy-seconds with them, or the autoscaler's utilization
window would leak.

Determinism follows the dual-regime contract of
:mod:`repro.faas.platform`: construct with ``seed=None`` for the
planner regime (expected-value cold starts, no RNG) or an integer seed
for the replay regime (cold-start jitter drawn in event order from one
``numpy`` generator).  Keep-alive reap timers are scheduled as daemon
events — they fire in deterministic order but never keep a drained
simulation's control loops alive (``peek_foreground_time`` ignores
them).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from collections.abc import Callable

import numpy as np

from repro.faas.cost import CostLedger, CostModel
from repro.faas.platform import FaaSPlatformModel
from repro.serving.observability import MetricsRegistry
from repro.serving.request import Request, Response


@dataclasses.dataclass(frozen=True)
class FaaSFunctionConfig:
    """One deployed function: code, platform, and lifecycle knobs.

    ``service_time`` maps an image count to execution seconds (same
    convention as ``ModelConfig``).  ``concurrency_limit`` caps live
    instances (the platform's per-function concurrency quota);
    arrivals beyond it queue, and beyond ``max_queue_depth`` (0 =
    unbounded) are rejected.  ``keep_alive_seconds`` is how long an
    idle instance stays warm before the reaper takes it — 0 reaps
    immediately after each response (pure scale-to-zero).
    """

    name: str
    service_time: Callable[[int], float]
    platform: FaaSPlatformModel
    concurrency_limit: int = 8
    keep_alive_seconds: float = 60.0
    max_queue_depth: int = 0

    def __post_init__(self) -> None:
        if self.concurrency_limit < 1:
            raise ValueError("concurrency limit must be >= 1")
        if self.keep_alive_seconds < 0:
            raise ValueError("keep-alive must be >= 0")
        if self.max_queue_depth < 0:
            raise ValueError("max queue depth must be >= 0")


@dataclasses.dataclass
class FunctionStats:
    """Aggregate lifetime accounting for one function.

    ``busy_seconds`` / ``fault_seconds`` mirror the per-instance
    records a provisioned server exposes (the autoscaler sums both);
    FaaS sandboxes fail by vanishing rather than occupying a slot, so
    ``fault_seconds`` stays 0 here.
    """

    invocations: int = 0
    cold_starts: int = 0
    warm_starts: int = 0
    prewarms: int = 0
    reaps: int = 0
    rejected: int = 0
    busy_seconds: float = 0.0
    fault_seconds: float = 0.0
    init_seconds: float = 0.0
    peak_instances: int = 0


class _Instance:
    """One live sandbox.

    ``state`` is ``"init"`` (cold-starting with a request bound),
    ``"prewarm"`` (initializing ahead of traffic, no request),
    ``"idle"`` (warm, waiting), or ``"busy"`` (executing).
    """

    __slots__ = ("name", "state", "pinned", "idle_since", "reap_event",
                 "pinned_since")

    def __init__(self, name: str):
        self.name = name
        self.state = "init"
        self.pinned = False
        self.idle_since = 0.0
        self.pinned_since = 0.0
        self.reap_event = None


class _Function:
    """Per-function runtime state: instances, queue, stats."""

    __slots__ = ("config", "instances", "queue", "stats", "next_id",
                 "provisioned_target")

    def __init__(self, config: FaaSFunctionConfig):
        self.config = config
        self.instances: list[_Instance] = []
        self.queue: deque = deque()
        self.stats = FunctionStats()
        self.next_id = 0
        self.provisioned_target = 0


class FaaSBackend:
    """Serverless request execution with cold starts and reaping."""

    def __init__(self, sim, registry: MetricsRegistry | None = None,
                 cost_model: CostModel | None = None,
                 seed: int | None = 0):
        self.sim = sim
        self.metrics = registry if registry is not None else \
            MetricsRegistry(clock=lambda: sim.now)
        self.cost = CostLedger(cost_model if cost_model is not None
                               else CostModel())
        self._rng = None if seed is None else np.random.default_rng(seed)
        self.draining = False
        self.responses: list[Response] = []
        self._on_response: Callable[[Response], None] | None = None
        #: Optional :class:`~repro.serving.tracectx.TraceContext` for
        #: lifecycle events that belong to no request (instance reaps,
        #: prewarm spawns); see :meth:`attach_lifecycle_trace`.
        self.lifecycle_trace = None
        self._functions: dict[str, _Function] = {}
        m = self.metrics
        self._c_submitted = m.counter(
            "requests_submitted_total", "Requests accepted by model.")
        self._c_images_in = m.counter(
            "images_submitted_total", "Images accepted by model.")
        self._c_responses = m.counter(
            "responses_total", "Completed responses by model and status.")
        self._c_images_done = m.counter(
            "images_completed_total",
            "Images in completed responses by model and status.")
        self._c_drain_rejections = m.counter(
            "drain_rejections_total",
            "Requests refused because the server was draining.")
        self._h_latency = m.histogram(
            "request_latency_seconds",
            "End-to-end latency of completed requests per model.")
        self._c_cold = m.counter(
            "faas_cold_starts_total",
            "Request-blocking cold starts per function.")
        self._c_invocations = m.counter(
            "faas_invocations_total",
            "Finished invocations per function and start kind.")
        self._c_reaps = m.counter(
            "faas_reaps_total",
            "Idle instances reaped after keep-alive per function.")
        self._c_gb_seconds = m.counter(
            "faas_gb_seconds_total",
            "Billed on-demand GB-seconds per function.")
        self._c_prewarms = m.counter(
            "faas_prewarms_total",
            "Instances spawned ahead of traffic by provisioned "
            "concurrency.")
        self._c_rejections = m.counter(
            "faas_queue_rejections_total",
            "Requests refused because the function queue was full.")
        self._g_warm = m.gauge(
            "faas_warm_instances",
            "Initialized (idle or busy) instances per function.")
        self._submit_handles: dict[str, tuple] = {}
        self._respond_handles: dict[tuple[str, str], tuple] = {}
        self._fn_handles: dict[str, tuple] = {}

    # ------------------------------------------------------------------
    # Repository management
    # ------------------------------------------------------------------
    def register(self, config: FaaSFunctionConfig) -> None:
        """Deploy a function (no instances spawn until traffic does)."""
        if config.name in self._functions:
            raise ValueError(
                f"function {config.name!r} already registered")
        self._functions[config.name] = _Function(config)
        self._fn_handles[config.name] = (
            self._c_cold.labels(function=config.name),
            self._c_reaps.labels(function=config.name),
            self._c_gb_seconds.labels(function=config.name),
            self._g_warm.labels(function=config.name),
        )
        self._fn_handles[config.name][3].set(0)

    def model_names(self) -> list[str]:
        """Deployed function names (server duck-type surface)."""
        return sorted(self._functions)

    def attach_lifecycle_trace(self, trace) -> None:
        """Record requestless lifecycle events (reaps, prewarms) as
        instants on ``trace``."""
        self.lifecycle_trace = trace

    def on_response(self, callback: Callable[[Response], None]) -> None:
        """Register a completion callback (e.g. closed-loop clients)."""
        self._on_response = callback

    def function_stats(self, name: str) -> FunctionStats:
        """Aggregate lifetime stats for one function."""
        return self._functions[name].stats

    # ------------------------------------------------------------------
    # Scaling-layer surface
    # ------------------------------------------------------------------
    def queue_depth(self, model: str | None = None) -> int:
        """Requests waiting for an instance (per function or total)."""
        if model is not None:
            return len(self._functions[model].queue)
        return sum(len(fn.queue) for fn in self._functions.values())

    def queued_images(self, model: str | None = None) -> int:
        """Images in queued requests (per function or total)."""
        if model is not None:
            return sum(req.num_images
                       for req, _ in self._functions[model].queue)
        return sum(req.num_images for fn in self._functions.values()
                   for req, _ in fn.queue)

    def busy_instances(self, model: str | None = None) -> int:
        """Instances occupied by a request (executing or cold-starting
        with a request bound to them).  Requestless provisioned-
        concurrency prewarms are still initializing but serve nobody,
        so they are excluded."""
        fns = ([self._functions[model]] if model is not None
               else self._functions.values())
        return sum(1 for fn in fns for inst in fn.instances
                   if inst.state in ("init", "busy"))

    def total_instances(self, model: str | None = None) -> int:
        """Live instances, warm or initializing."""
        if model is not None:
            return len(self._functions[model].instances)
        return sum(len(fn.instances) for fn in self._functions.values())

    def warm_instances(self, model: str) -> int:
        """Initialized (idle or busy) instances of one function."""
        return sum(1 for inst in self._functions[model].instances
                   if inst.state in ("idle", "busy"))

    def instance_stats(self, model: str) -> list[FunctionStats]:
        """One aggregate record per function (see module docstring)."""
        return [self._functions[model].stats]

    def provisioned_concurrency(self, model: str) -> int:
        """Current pinned-warm floor for one function."""
        return self._functions[model].provisioned_target

    # ------------------------------------------------------------------
    # Drain protocol
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Refuse new work; finish the queues, then reap everything."""
        self.draining = True
        for fn in self._functions.values():
            fn.provisioned_target = 0
            for inst in list(fn.instances):
                # Settle (charge + clear) the pin rather than just
                # clearing it: the GB-seconds accrued since pinning
                # must land on the ledger before the instance goes.
                self._settle_pin(fn, inst)
                if inst.state == "idle":
                    self._reap(fn, inst)

    @property
    def is_drained(self) -> bool:
        """True once draining and all queues and sandboxes are empty."""
        if not self.draining:
            return False
        return all(not fn.queue and not fn.instances
                   for fn in self._functions.values())

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Accept a request at the current virtual time.

        Routes to a warm idle instance when one exists, spawns a cold
        one while under the concurrency limit, queues otherwise (and
        rejects when the bounded queue overflows).
        """
        request.arrival_time = self.sim.now
        if self.draining:
            self._c_drain_rejections.inc(model=request.model_name)
            if request.trace is not None:
                request.trace.instant("drain_reject", self.sim.now,
                                      category="serving",
                                      model=request.model_name)
            self._respond(request, status="rejected")
            return
        fn = self._functions[request.model_name]
        handles = self._submit_handles.get(request.model_name)
        if handles is None:
            handles = self._submit_handles[request.model_name] = (
                self._c_submitted.labels(model=request.model_name),
                self._c_images_in.labels(model=request.model_name),
            )
        handles[0].inc()
        handles[1].inc(request.num_images)
        idle = self._pick_idle(fn)
        if idle is not None:
            fn.stats.warm_starts += 1
            self._dispatch(fn, idle, request)
            return
        if len(fn.instances) < fn.config.concurrency_limit:
            self._spawn(fn, request)
            return
        if fn.config.max_queue_depth and \
                len(fn.queue) >= fn.config.max_queue_depth:
            fn.stats.rejected += 1
            self._c_rejections.inc(function=fn.config.name)
            self._respond(request, status="rejected")
            return
        span = None
        if request.trace is not None:
            span = request.trace.begin(
                "queue_wait", self.sim.now, category="queue",
                stage=fn.config.name)
        fn.queue.append((request, span))

    def _pick_idle(self, fn: _Function) -> _Instance | None:
        """Warmest idle instance (most recently used keeps the pool
        small: LRU instances age out through keep-alive)."""
        best = None
        for inst in fn.instances:
            if inst.state == "idle":
                if best is None or inst.idle_since > best.idle_since:
                    best = inst
        return best

    # ------------------------------------------------------------------
    # Instance lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, fn: _Function, request: Request | None,
               pinned: bool = False) -> _Instance:
        """Start a sandbox; dispatch ``request`` once initialized.

        With ``request=None`` this is a provisioned-concurrency
        prewarm: the instance initializes, pins, and waits for
        traffic without any request paying its cold start.
        """
        inst = _Instance(f"{fn.config.name}#{fn.next_id}")
        fn.next_id += 1
        if request is None:
            inst.state = "prewarm"
        inst.pinned = pinned
        if pinned:
            inst.pinned_since = self.sim.now
        fn.instances.append(inst)
        fn.stats.peak_instances = max(fn.stats.peak_instances,
                                      len(fn.instances))
        sandbox, init = fn.config.platform.sample_cold_start(self._rng)
        fn.stats.init_seconds += sandbox + init
        cold_handle, _, gb_handle, warm_handle = \
            self._fn_handles[fn.config.name]
        if request is not None:
            fn.stats.cold_starts += 1
            cold_handle.inc()
            request.stage_times["faas:cold_start_seconds"] = \
                sandbox + init
        else:
            fn.stats.prewarms += 1
            self._c_prewarms.inc(function=fn.config.name)
            if self.lifecycle_trace is not None:
                self.lifecycle_trace.instant(
                    "prewarm", self.sim.now, category="faas",
                    function=fn.config.name, instance=inst.name)
        trace = request.trace if request is not None else None
        cold_span = None
        if trace is not None:
            cold_span = trace.begin(
                "cold_start", self.sim.now, category="faas",
                function=fn.config.name, instance=inst.name,
                sandbox_seconds=sandbox)
        # Initialization (artifact fetch + load) is billed: the
        # sandbox is already running the function's code.
        init_gb = self.cost.charge_init(
            sandbox + init, fn.config.platform.memory_gb)
        gb_handle.inc(init_gb)

        def provisioned() -> None:
            if cold_span is not None:
                trace.end(cold_span, self.sim.now)
            init_span = None
            if trace is not None:
                init_span = trace.begin(
                    "init", self.sim.now, category="faas",
                    function=fn.config.name, instance=inst.name,
                    artifact_bytes=fn.config.platform.artifact_bytes)

            def initialized() -> None:
                if init_span is not None:
                    trace.end(init_span, self.sim.now)
                warm_handle.set(self.warm_instances(fn.config.name) + 1)
                if request is not None:
                    self._dispatch(fn, inst, request)
                else:
                    self._make_idle(fn, inst)

            self.sim.schedule(init, initialized)

        self.sim.schedule(sandbox, provisioned)
        return inst

    def _dispatch(self, fn: _Function, inst: _Instance,
                  request: Request) -> None:
        """Execute one request on an initialized instance."""
        if inst.reap_event is not None:
            self.sim.cancel(inst.reap_event)
            inst.reap_event = None
        inst.state = "busy"
        duration = fn.config.service_time(request.num_images)
        if duration < 0:
            raise ValueError(
                f"service time for {request.num_images} images is "
                "negative")
        start = self.sim.now
        request.stage_times[f"{inst.name}:start"] = start
        span = None
        if request.trace is not None:
            span = request.trace.begin(
                "execute", start, category="execute",
                stage=fn.config.name, instance=inst.name,
                attempt=0, batch_images=request.num_images)

        def finish() -> None:
            fn.stats.invocations += 1
            fn.stats.busy_seconds += duration
            request.stage_times[f"{inst.name}:end"] = self.sim.now
            if span is not None:
                request.trace.end(span, self.sim.now)
            cold = "faas:cold_start_seconds" in request.stage_times
            self._c_invocations.inc(
                function=fn.config.name,
                start="cold" if cold else "warm")
            gb = self.cost.charge_invocation(
                duration, fn.config.platform.memory_gb)
            self._fn_handles[fn.config.name][2].inc(gb)
            self._respond(request)
            self._make_idle(fn, inst)

        self.sim.schedule(duration, finish)

    def _make_idle(self, fn: _Function, inst: _Instance) -> None:
        """Return an instance to the warm pool, or hand it queued
        work, or (when draining / keep-alive 0) reap it."""
        if fn.queue:
            queued, qspan = fn.queue.popleft()
            if qspan is not None:
                queued.trace.end(qspan, self.sim.now)
            fn.stats.warm_starts += 1
            self._dispatch(fn, inst, queued)
            return
        inst.state = "idle"
        inst.idle_since = self.sim.now
        if self.draining:
            # Draining wins over pinning: reap unconditionally (the
            # reap settles any open pin) so is_drained can hold.
            self._reap(fn, inst)
            return
        if inst.pinned:
            return
        if fn.config.keep_alive_seconds == 0.0:
            self._reap(fn, inst)
            return
        idle_mark = inst.idle_since

        def maybe_reap() -> None:
            inst.reap_event = None
            if inst.state == "idle" and not inst.pinned and \
                    inst.idle_since == idle_mark:
                self._reap(fn, inst)

        inst.reap_event = self.sim.schedule(
            fn.config.keep_alive_seconds, maybe_reap, daemon=True)

    def _reap(self, fn: _Function, inst: _Instance) -> None:
        """Tear a warm instance down (scale-to-zero step)."""
        if inst.reap_event is not None:
            self.sim.cancel(inst.reap_event)
            inst.reap_event = None
        fn.instances.remove(inst)
        fn.stats.reaps += 1
        self._settle_pin(fn, inst)
        _, reap_handle, _, warm_handle = self._fn_handles[fn.config.name]
        reap_handle.inc()
        warm_handle.set(self.warm_instances(fn.config.name))
        if self.lifecycle_trace is not None:
            self.lifecycle_trace.instant(
                "reap", self.sim.now, category="faas",
                function=fn.config.name, instance=inst.name,
                idle_seconds=self.sim.now - inst.idle_since)

    def _settle_pin(self, fn: _Function, inst: _Instance) -> None:
        """Close out provisioned-rate accrual for an unpinned/reaped
        instance."""
        if inst.pinned:
            self.cost.charge_provisioned(
                self.sim.now - inst.pinned_since,
                fn.config.platform.memory_gb)
            inst.pinned = False
            inst.pinned_since = 0.0

    # ------------------------------------------------------------------
    # Provisioned concurrency
    # ------------------------------------------------------------------
    def set_provisioned_concurrency(self, model: str,
                                    target: int) -> None:
        """Pin ``target`` always-warm instances for one function.

        Raising the floor pins live instances first and prewarms the
        remainder (no request pays those cold starts); lowering it
        unpins the newest pins, which then age out through the normal
        keep-alive window.  Pinned time accrues on the cost ledger at
        the provisioned GB-second rate.  While the backend drains this
        is a no-op: a late policy tick must not stall the drain.
        """
        if target < 0:
            raise ValueError("provisioned concurrency must be >= 0")
        if self.draining:
            # A still-armed policy tick must not resurrect pinned
            # instances after begin_drain: they would never be
            # reaped and the drain could stall forever.
            return
        fn = self._functions[model]
        if target > fn.config.concurrency_limit:
            raise ValueError(
                "provisioned concurrency cannot exceed the "
                f"concurrency limit ({fn.config.concurrency_limit})")
        fn.provisioned_target = target
        pinned = [inst for inst in fn.instances if inst.pinned]
        if len(pinned) > target:
            for inst in pinned[target - len(pinned):]:
                self._settle_pin(fn, inst)
                if inst.state == "idle":
                    # Restart the idle clock so the unpinned instance
                    # gets a full keep-alive window before reaping.
                    self._make_idle(fn, inst)
            return
        needed = target - len(pinned)
        for inst in fn.instances:
            if needed == 0:
                break
            if not inst.pinned:
                inst.pinned = True
                inst.pinned_since = self.sim.now
                if inst.reap_event is not None:
                    self.sim.cancel(inst.reap_event)
                    inst.reap_event = None
                needed -= 1
        for _ in range(needed):
            if len(fn.instances) >= fn.config.concurrency_limit:
                break
            self._spawn(fn, None, pinned=True)

    # ------------------------------------------------------------------
    # Completion path
    # ------------------------------------------------------------------
    def _respond(self, request: Request, status: str = "ok") -> None:
        response = Response(request, self.sim.now, status=status)
        if request.trace is not None:
            request.trace.close(self.sim.now, status=status)
        self.responses.append(response)
        key = (request.model_name, status)
        handles = self._respond_handles.get(key)
        if handles is None:
            handles = self._respond_handles[key] = (
                self._c_responses.labels(model=key[0], status=status),
                self._c_images_done.labels(model=key[0], status=status),
                self._h_latency.labels(model=key[0]),
            )
        handles[0].inc()
        handles[1].inc(request.num_images)
        handles[2].observe(response.latency)
        if self._on_response is not None:
            self._on_response(response)

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    def cost_summary(self) -> dict:
        """Ledger snapshot including still-open pinned accrual.

        Open pins are priced to the current clock without mutating the
        ledger, so the summary is safe to read mid-run.
        """
        open_pinned = sum(
            (self.sim.now - inst.pinned_since) *
            fn.config.platform.memory_gb
            for fn in self._functions.values()
            for inst in fn.instances if inst.pinned)
        summary = self.cost.summary()
        summary["provisioned_gb_seconds"] += open_pinned
        summary["provisioned_usd"] = (
            summary["provisioned_gb_seconds"] *
            self.cost.model.provisioned_gb_second_price)
        summary["total_usd"] = (summary["compute_usd"] +
                                summary["invocation_usd"] +
                                summary["provisioned_usd"])
        return summary
