"""The GB-second meter: what serverless inference actually costs.

Serverless billing has three terms: a per-invocation charge, compute
priced in GB-seconds (memory allocation x billed duration, rounded up
to a billing quantum), and — when provisioned concurrency pins warm
instances — a cheaper always-on GB-second rate for the pinned pool.
:class:`CostModel` holds the prices and the arithmetic;
:class:`CostLedger` is the running meter a
:class:`~repro.faas.backend.FaaSBackend` feeds as invocations finish.

Prices default to hyperscaler-shaped magnitudes (dollars):
``$1.67e-5``/GB-s on demand, ``$4.2e-6``/GB-s provisioned, ``$2e-7``
per invocation.  The *ratios* are what the crossover analysis in
:func:`~repro.predict.whatif.compare_serverless` depends on; absolute
dollars only scale the axis.
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Prices and billing granularity for one FaaS offering."""

    gb_second_price: float = 1.6667e-5
    invocation_price: float = 2.0e-7
    provisioned_gb_second_price: float = 4.2e-6
    #: Durations are rounded up to this quantum before billing (1 ms,
    #: the industry norm since per-ms billing replaced 100 ms rounding).
    billing_quantum_seconds: float = 0.001

    def __post_init__(self) -> None:
        if self.gb_second_price < 0 or self.invocation_price < 0 or \
                self.provisioned_gb_second_price < 0:
            raise ValueError("prices must be >= 0")
        if self.billing_quantum_seconds <= 0:
            raise ValueError("billing quantum must be positive")

    # ------------------------------------------------------------------
    def billed_seconds(self, duration_seconds: float) -> float:
        """Duration rounded up to the billing quantum."""
        if duration_seconds < 0:
            raise ValueError("duration must be >= 0")
        quanta = math.ceil(duration_seconds /
                           self.billing_quantum_seconds)
        return max(1, quanta) * self.billing_quantum_seconds

    def gb_seconds(self, duration_seconds: float,
                   memory_gb: float) -> float:
        """Billable GB-seconds for one execution."""
        return self.billed_seconds(duration_seconds) * memory_gb

    def invocation_cost(self, duration_seconds: float,
                        memory_gb: float) -> float:
        """Full cost of one invocation: request charge + compute."""
        return (self.invocation_price +
                self.gb_seconds(duration_seconds, memory_gb) *
                self.gb_second_price)

    def serverless_cost_per_second(self, qps: float,
                                   duration_seconds: float,
                                   memory_gb: float) -> float:
        """Planner regime: expected $/s at a steady request rate."""
        if qps < 0:
            raise ValueError("qps must be >= 0")
        return qps * self.invocation_cost(duration_seconds, memory_gb)

    def provisioned_pool_cost_per_second(self, instances: int,
                                         memory_gb: float) -> float:
        """$/s to keep ``instances`` pinned warm (idle or not)."""
        if instances < 0:
            raise ValueError("instance count must be >= 0")
        return (instances * memory_gb *
                self.provisioned_gb_second_price)


class CostLedger:
    """Running meter over one backend's lifetime.

    The backend posts three kinds of entries: on-demand execution
    (billed GB-seconds per finished invocation, cold-start
    initialization included — the sandbox is running your code), the
    per-invocation request charge, and provisioned-concurrency
    GB-seconds accrued while instances sit pinned.
    """

    def __init__(self, model: CostModel):
        self.model = model
        self.invocations = 0
        self.gb_seconds = 0.0
        self.provisioned_gb_seconds = 0.0

    # ------------------------------------------------------------------
    def charge_invocation(self, duration_seconds: float,
                          memory_gb: float) -> float:
        """Bill one finished execution; returns its GB-seconds."""
        billed = self.model.gb_seconds(duration_seconds, memory_gb)
        self.invocations += 1
        self.gb_seconds += billed
        return billed

    def charge_init(self, duration_seconds: float,
                    memory_gb: float) -> float:
        """Bill a cold start's initialization leg; returns GB-seconds."""
        billed = self.model.gb_seconds(duration_seconds, memory_gb)
        self.gb_seconds += billed
        return billed

    def charge_provisioned(self, duration_seconds: float,
                           memory_gb: float) -> float:
        """Accrue pinned-warm time at the provisioned rate."""
        if duration_seconds < 0:
            raise ValueError("duration must be >= 0")
        billed = duration_seconds * memory_gb
        self.provisioned_gb_seconds += billed
        return billed

    # ------------------------------------------------------------------
    @property
    def compute_cost(self) -> float:
        """On-demand GB-second charges so far."""
        return self.gb_seconds * self.model.gb_second_price

    @property
    def invocation_cost(self) -> float:
        """Per-request charges so far."""
        return self.invocations * self.model.invocation_price

    @property
    def provisioned_cost(self) -> float:
        """Provisioned-concurrency charges so far."""
        return (self.provisioned_gb_seconds *
                self.model.provisioned_gb_second_price)

    @property
    def total_cost(self) -> float:
        """Everything on the meter, in dollars."""
        return (self.compute_cost + self.invocation_cost +
                self.provisioned_cost)

    def summary(self) -> dict:
        """JSON-friendly snapshot of the meter."""
        return {
            "invocations": self.invocations,
            "gb_seconds": self.gb_seconds,
            "provisioned_gb_seconds": self.provisioned_gb_seconds,
            "compute_usd": self.compute_cost,
            "invocation_usd": self.invocation_cost,
            "provisioned_usd": self.provisioned_cost,
            "total_usd": self.total_cost,
        }
