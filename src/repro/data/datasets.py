"""Dataset registry reproducing Table 2.

Each :class:`DatasetSpec` carries the statistics the characterization
consumes.  Encoding formats follow the public distributions: Weed
Detection in Soybean ships as TIFF (the encoding-format difference the
paper credits for PyTorch's per-dataset preprocessing variance), the other
classification sets as JPEG, and CRSA as raw camera frames.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.data.distributions import (
    FixedSize,
    ImageSizeDistribution,
    VariableSize,
)


class ImageFormat(str, enum.Enum):
    """On-disk encoding; drives decode cost and transfer size."""

    JPEG = "jpeg"
    TIFF = "tiff"
    RAW = "raw"

    @property
    def bytes_per_pixel(self) -> float:
        """Nominal encoded bytes per pixel (RGB).

        JPEG ~quality-85 compression; TIFF LZW-ish (near-lossless, large);
        RAW camera frames are unencoded 3 B/px.
        """
        return {ImageFormat.JPEG: 0.45,
                ImageFormat.TIFF: 2.2,
                ImageFormat.RAW: 3.0}[self]

    @property
    def decode_cost_per_byte(self) -> float:
        """Relative CPU decode work per encoded byte (JPEG = 1.0).

        JPEG needs entropy decoding + IDCT per byte; TIFF's LZW is cheap
        per byte (but there are many more bytes); RAW needs none.
        """
        return {ImageFormat.JPEG: 1.0,
                ImageFormat.TIFF: 0.25,
                ImageFormat.RAW: 0.02}[self]


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """One evaluated data source (a Table 2 row)."""

    name: str
    display_name: str
    classes: int | None
    samples: int
    size_distribution: ImageSizeDistribution
    image_format: ImageFormat
    use_case: str
    #: True for sources needing dataset-specific preprocessing before the
    #: model pipeline (CRSA: perspective transform of raw camera frames).
    dataset_specific_preprocessing: bool = False

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise ValueError("samples must be positive")
        if self.classes is not None and self.classes < 2:
            raise ValueError("classification datasets need >= 2 classes")

    @property
    def mode_size(self) -> tuple[int, int]:
        """Modal (width, height) — the Fig. 4 label."""
        return self.size_distribution.mode

    def encoded_bytes_at_mode(self) -> float:
        """Nominal encoded file size of a modal image."""
        w, h = self.mode_size
        return w * h * self.image_format.bytes_per_pixel


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="plant_village",
            display_name="Plant Village",
            classes=39, samples=43430,
            size_distribution=FixedSize(256, 256),
            image_format=ImageFormat.JPEG,
            use_case="Plant disease classification",
        ),
        DatasetSpec(
            name="weed_soybean",
            display_name="Weed Detection in Soybean",
            classes=4, samples=10635,
            size_distribution=VariableSize(233, 233, sigma=0.16),
            image_format=ImageFormat.TIFF,
            use_case="Weed detection in soybeans",
        ),
        DatasetSpec(
            name="spittle_bug",
            display_name="Sugar Cane-Spittle Bug",
            classes=2, samples=10100,
            size_distribution=VariableSize(61, 61, sigma=0.45),
            image_format=ImageFormat.JPEG,
            use_case="Pest bugs detection",
        ),
        DatasetSpec(
            name="fruits_360",
            display_name="Fruits-360",
            classes=81, samples=40998,
            size_distribution=FixedSize(100, 100),
            image_format=ImageFormat.JPEG,
            use_case="Fruits classification",
        ),
        DatasetSpec(
            name="corn_growth",
            display_name="Corn Growth Stage",
            classes=23, samples=52198,
            size_distribution=FixedSize(224, 224),
            image_format=ImageFormat.JPEG,
            use_case="Corn Growth Stage Classification, UAS Based",
        ),
        DatasetSpec(
            name="crsa",
            display_name="CRSA",
            classes=None, samples=992,
            size_distribution=FixedSize(3840, 2160),
            image_format=ImageFormat.RAW,
            use_case="Crop Residue Soil Aggregate, Ground Vehicle based",
            dataset_specific_preprocessing=True,
        ),
    )
}

#: Table 2 row order.
DATASET_ORDER: tuple[str, ...] = (
    "plant_village", "weed_soybean", "spittle_bug",
    "fruits_360", "corn_growth", "crsa",
)


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset by registry name (case-insensitive)."""
    try:
        return DATASETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None


def list_datasets() -> list[DatasetSpec]:
    """All datasets in Table 2 row order."""
    return [DATASETS[name] for name in DATASET_ORDER]


def table2_rows() -> list[dict]:
    """Regenerate Table 2."""
    rows = []
    for spec in list_datasets():
        w, h = spec.mode_size
        rows.append({
            "dataset": spec.display_name,
            "classes": spec.classes if spec.classes is not None else "-",
            "samples": spec.samples,
            "image_size": (f"{w}x{h}" if spec.size_distribution.is_uniform
                           else f"variable (mode {w}x{h})"),
            "format": spec.image_format.value,
            "use_case": spec.use_case,
        })
    return rows
