"""Batched streaming loader over synthetic datasets.

The frontend of the HARVEST pipeline "is responsible for transmitting or
locally reading input data and generating requests to the backend"
(Section 3).  :class:`DataLoader` plays that role for experiments: it
streams deterministic batches of (image, label) samples drawn from a
dataset's size distribution, optionally pre-encoded for transfer-cost
modelling.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

import numpy as np

from repro.data.datasets import DatasetSpec
from repro.data.encoding import encoded_bytes
from repro.data.synthetic import SyntheticSampler


@dataclasses.dataclass
class Sample:
    """One loaded sample."""

    image: np.ndarray  # (H, W, C) uint8
    label: int | None
    encoded_nbytes: float

    @property
    def pixels(self) -> int:
        """Pixel count of the decoded image."""
        return self.image.shape[0] * self.image.shape[1]


class DataLoader:
    """Deterministic batch iterator over a synthetic dataset.

    Parameters
    ----------
    spec:
        The dataset to stream.
    batch_size:
        Samples per batch; the final batch of an epoch may be short.
    epoch_size:
        Samples per epoch.  Defaults to the dataset's Table 2 sample
        count; experiments usually pass something much smaller.
    scale:
        Pixel-dimension scale factor forwarded to the sampler (test
        speed-ups; relative size statistics are preserved).
    """

    def __init__(self, spec: DatasetSpec, batch_size: int = 1,
                 epoch_size: int | None = None, seed: int = 0,
                 scale: float = 1.0):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.spec = spec
        self.batch_size = batch_size
        self.epoch_size = spec.samples if epoch_size is None else epoch_size
        if self.epoch_size < 1:
            raise ValueError("epoch_size must be >= 1")
        self._sampler = SyntheticSampler(spec, seed=seed, scale=scale)

    def __len__(self) -> int:
        """Number of batches per epoch."""
        return -(-self.epoch_size // self.batch_size)

    def __iter__(self) -> Iterator[list[Sample]]:
        remaining = self.epoch_size
        while remaining > 0:
            take = min(self.batch_size, remaining)
            remaining -= take
            batch = []
            for image, label in self._sampler.sample(take):
                h, w = image.shape[:2]
                batch.append(Sample(
                    image=image, label=label,
                    encoded_nbytes=encoded_bytes(w, h,
                                                 self.spec.image_format)))
            yield batch

    def size_statistics(self, n: int = 2048) -> dict[str, float]:
        """Summary stats of the size distribution (for reports)."""
        sizes = self._sampler.sample_sizes(n)
        pixels = sizes[:, 0] * sizes[:, 1]
        return {
            "mean_width": float(sizes[:, 0].mean()),
            "mean_height": float(sizes[:, 1].mean()),
            "mean_pixels": float(pixels.mean()),
            "p95_pixels": float(np.percentile(pixels, 95)),
        }
