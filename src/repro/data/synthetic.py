"""Procedural image generation.

Pixel content never influences the performance characterization, but the
functional pipeline (decode → resize → crop → normalize → model forward)
needs real arrays to chew on.  Images are generated as smoothed random
fields with a green-dominant channel balance — cheap, deterministic, and
statistically "photo-like" enough that resize/normalize behave like they
would on field imagery.

:func:`synth_crsa_frame` additionally draws a perspective-distorted ground
grid so the CRSA perspective-correction op has real structure to rectify
(tests verify straightened grid lines).
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import DatasetSpec


def _smooth(field: np.ndarray, passes: int = 2) -> np.ndarray:
    """Cheap separable box smoothing via shifted adds (no scipy needed)."""
    out = field
    for _ in range(passes):
        out = (out
               + np.roll(out, 1, axis=0) + np.roll(out, -1, axis=0)
               + np.roll(out, 1, axis=1) + np.roll(out, -1, axis=1)) / 5.0
    return out


def synth_image(width: int, height: int,
                rng: np.random.Generator,
                channels: int = 3) -> np.ndarray:
    """A synthetic field photo: ``(H, W, C)`` uint8.

    Smoothed noise per channel with vegetation-like channel gains
    (G > R > B) plus mild per-pixel texture.
    """
    if min(width, height, channels) < 1:
        raise ValueError("image dimensions must be positive")
    base = _smooth(rng.random((height, width)))
    texture = rng.random((height, width)) * 0.15
    gains = np.array([0.55, 0.85, 0.35][:channels])
    offsets = np.array([40.0, 60.0, 30.0][:channels])
    img = (base + texture)[..., None] * gains * 255.0 * 0.7 + offsets
    return np.clip(img, 0, 255).astype(np.uint8)


def synth_crsa_frame(width: int = 3840, height: int = 2160,
                     rng: np.random.Generator | None = None,
                     grid_spacing: int = 240) -> np.ndarray:
    """A raw ground-vehicle camera frame: ``(H, W, 3)`` uint8.

    Soil-toned background with a perspective-converged grid: vertical
    field rows that fan toward a vanishing point at the horizon, as an
    uncorrected downward-angled camera sees them.  The perspective
    transform in :mod:`repro.preprocessing.ops` rectifies these to
    parallel verticals.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if min(width, height) < 8:
        raise ValueError("frame too small")
    frame = synth_image(width, height, rng)
    # Soil tint: damp the green channel.
    frame = frame.astype(np.float32)
    frame[..., 1] *= 0.75
    frame[..., 0] *= 1.1

    # Rows converging toward the vanishing point (cx, -0.6*H above frame).
    cx = width / 2.0
    vp_y = -0.6 * height
    ys = np.arange(height, dtype=np.float32)
    t = (ys - vp_y) / (height - vp_y)  # 0 at vanishing point, 1 at bottom
    for ground_x in range(grid_spacing // 2, width, grid_spacing):
        xs = cx + (ground_x - cx) * t  # straight line toward the VP
        cols = np.clip(np.rint(xs).astype(np.int64), 0, width - 1)
        frame[ys.astype(np.int64), cols] = (30.0, 110.0, 40.0)
        frame[ys.astype(np.int64), np.clip(cols + 1, 0, width - 1)] = (
            30.0, 110.0, 40.0)
    return np.clip(frame, 0, 255).astype(np.uint8)


def synth_frame_sequence(spec: DatasetSpec, n: int,
                         scene_change_rate: float,
                         rng: np.random.Generator,
                         width: int = 320, height: int = 180,
                         jitter: float = 3.0) -> list[np.ndarray]:
    """Temporally correlated frames from a fixed-mount field camera.

    The CRSA raw-capture scenario: consecutive frames are jittered
    copies of the current *scene* (per-pixel sensor noise of amplitude
    ``jitter``), and with probability ``scene_change_rate`` per frame
    the scene cuts to a freshly generated one (a vehicle passing, the
    camera panning, dawn).  The expected number of distinct scenes is
    ``1 + scene_change_rate * (n - 1)``, so cache hit ratios decay
    monotonically as the rate rises.

    ``spec`` selects the frame generator: datasets with
    dataset-specific preprocessing (CRSA) get perspective-grid frames,
    others get plain field imagery.  Frames are ``(height, width, 3)``
    uint8; the defaults are a 6x-downscaled 4K capture so fingerprinting
    stays cheap in tests and the CLI.
    """
    if n < 1:
        raise ValueError("need at least one frame")
    if not 0.0 <= scene_change_rate <= 1.0:
        raise ValueError("scene_change_rate must be in [0, 1]")
    if jitter < 0:
        raise ValueError("jitter must be >= 0")

    def new_scene() -> np.ndarray:
        child = np.random.default_rng(rng.integers(2 ** 32))
        if spec.dataset_specific_preprocessing:
            return synth_crsa_frame(width, height, child).astype(
                np.float32)
        return synth_image(width, height, child).astype(np.float32)

    scene = new_scene()
    frames: list[np.ndarray] = []
    for index in range(n):
        if index > 0 and rng.random() < scene_change_rate:
            scene = new_scene()
        noisy = scene + rng.uniform(-jitter, jitter, scene.shape)
        frames.append(np.clip(noisy, 0, 255).astype(np.uint8))
    return frames


def synth_labeled_images(n: int, classes: int, image_size: int,
                         rng: np.random.Generator,
                         signal_strength: float = 1.0,
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Class-conditional images: ``((N, H, W, C) uint8, (N,) labels)``.

    Each class carries a distinct, learnable signature — a class-specific
    channel balance plus a class-frequency horizontal stripe pattern —
    over the usual smoothed-noise background.  The signatures are what a
    localized model (or a linear probe on frozen features) must pick up;
    ``signal_strength`` scales their amplitude relative to the noise
    (0 = unlearnable, 1 = clearly separable).

    This is the stand-in for a farm's labeled imagery in the
    fine-tuning experiments (the paper: "enabling landholders to easily
    train localized AI models with their own data").
    """
    if n < 1 or classes < 2 or image_size < 4:
        raise ValueError("need n >= 1, classes >= 2, image_size >= 4")
    if signal_strength < 0:
        raise ValueError("signal_strength must be >= 0")
    class_rng = np.random.default_rng(12345)  # fixed class signatures
    gains = class_rng.uniform(0.4, 1.0, size=(classes, 3))
    frequencies = class_rng.integers(1, max(2, image_size // 4),
                                     size=classes)
    phases = class_rng.uniform(0, 2 * np.pi, size=classes)

    labels = rng.integers(0, classes, size=n)
    rows = np.arange(image_size)[None, :, None, None]  # (1, H, 1, 1)
    base = rng.random((n, image_size, image_size, 1))
    texture = rng.random((n, image_size, image_size, 3)) * 0.2

    stripe = np.sin(2 * np.pi * frequencies[labels][:, None, None, None]
                    * rows / image_size + phases[labels][:, None, None,
                                                         None])
    signal = signal_strength * (0.25 * stripe
                                + 0.5 * gains[labels][:, None, None, :])
    images = (base * 0.4 + texture + signal) * 160.0 + 40.0
    return (np.clip(images, 0, 255).astype(np.uint8),
            labels.astype(np.int64))


class SyntheticSampler:
    """Draws (image, label, size) samples for a :class:`DatasetSpec`.

    Deterministic given the seed; sizes follow the dataset's Fig. 4
    distribution, labels are uniform over the class set.
    """

    def __init__(self, spec: DatasetSpec, seed: int = 0,
                 scale: float = 1.0):
        """``scale`` < 1 shrinks generated pixel dimensions (test speed)
        while preserving the *relative* size distribution."""
        if not 0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        self.spec = spec
        self.scale = scale
        self._rng = np.random.default_rng(seed)

    def sample_sizes(self, n: int) -> np.ndarray:
        """Draw n (width, height) pairs from the dataset distribution."""
        sizes = self.spec.size_distribution.sample(n, self._rng)
        if self.scale != 1.0:
            sizes = np.maximum((sizes * self.scale).astype(np.int64), 8)
        return sizes

    def sample(self, n: int) -> list[tuple[np.ndarray, int | None]]:
        """``n`` (image, label) pairs; labels None for unlabelled CRSA."""
        sizes = self.sample_sizes(n)
        out = []
        for w, h in sizes:
            if self.spec.dataset_specific_preprocessing:
                img = synth_crsa_frame(int(w), int(h), self._rng)
                label = None
            else:
                img = synth_image(int(w), int(h), self._rng)
                label = int(self._rng.integers(self.spec.classes))
            out.append((img, label))
        return out
