"""Dataset substrate: the six evaluated agricultural data sources.

The paper's datasets (Table 2) are public downloads plus one private
ground-vehicle camera feed (CRSA); none are bundled here.  Instead this
package generates *synthetic equivalents that preserve the statistics the
characterization consumes*: sample counts, class counts, the image-size
distributions of Fig. 4, encoding formats (the TIFF-vs-JPEG difference
behind the PyTorch preprocessing variance), and the CRSA feed's raw
3840×2160 frames needing perspective correction.
"""

from repro.data.distributions import (
    ImageSizeDistribution,
    FixedSize,
    VariableSize,
    density_grid,
)
from repro.data.datasets import (
    DatasetSpec,
    ImageFormat,
    DATASETS,
    get_dataset,
    list_datasets,
    table2_rows,
)
from repro.data.synthetic import (
    synth_image,
    synth_crsa_frame,
    SyntheticSampler,
)
from repro.data.encoding import (
    EncodedImage,
    encoded_bytes,
    rle_encode,
    rle_decode,
)
from repro.data.loader import DataLoader, Sample

__all__ = [
    "ImageSizeDistribution",
    "FixedSize",
    "VariableSize",
    "density_grid",
    "DatasetSpec",
    "ImageFormat",
    "DATASETS",
    "get_dataset",
    "list_datasets",
    "table2_rows",
    "synth_image",
    "synth_crsa_frame",
    "SyntheticSampler",
    "EncodedImage",
    "encoded_bytes",
    "rle_encode",
    "rle_decode",
    "DataLoader",
    "Sample",
]
