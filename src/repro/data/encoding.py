"""Image encoding: size models for JPEG/TIFF plus a real RLE codec.

The characterization needs encoded byte counts (decode cost and network
transfer scale with them), not bit-exact JPEG files.  :func:`encoded_bytes`
provides the nominal size model; :func:`rle_encode`/:func:`rle_decode` are
a real, lossless run-length codec used wherever the pipeline must actually
round-trip bytes (the serving layer's request payloads, the offline
stitching cache), keeping that code path honest without a JPEG dependency.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.data.datasets import ImageFormat


@dataclasses.dataclass(frozen=True)
class EncodedImage:
    """An encoded payload plus the metadata needed to decode it."""

    payload: bytes
    width: int
    height: int
    channels: int
    image_format: ImageFormat

    @property
    def nbytes(self) -> int:
        """Encoded payload size in bytes."""
        return len(self.payload)


def encoded_bytes(width: int, height: int,
                  image_format: ImageFormat) -> float:
    """Nominal encoded size of an RGB image in the given format."""
    if min(width, height) < 1:
        raise ValueError("image dimensions must be positive")
    return width * height * image_format.bytes_per_pixel


# ----------------------------------------------------------------------
# Real RLE codec (lossless, byte-oriented)
# ----------------------------------------------------------------------
# Format: sequence of (count: uint8 >= 1, value: uint8) pairs over the
# flattened uint8 image, preceded by a 13-byte header
# (magic 'R', width u4, height u4, channels u4, little-endian).

_MAGIC = ord("R")
_HEADER = np.dtype([("magic", "u1"), ("w", "<u4"), ("h", "<u4"),
                    ("c", "<u4")])


def rle_encode(image: np.ndarray) -> EncodedImage:
    """Losslessly encode a ``(H, W)`` or ``(H, W, C)`` uint8 image."""
    if image.dtype != np.uint8:
        raise ValueError(f"RLE codec takes uint8 images, got {image.dtype}")
    if image.ndim == 2:
        image = image[..., None]
    if image.ndim != 3:
        raise ValueError(f"expected 2D/3D image, got shape {image.shape}")
    h, w, c = image.shape
    flat = np.ascontiguousarray(image).reshape(-1)

    # Vectorized run extraction: boundaries where the value changes.
    if flat.size == 0:
        raise ValueError("cannot encode an empty image")
    change = np.flatnonzero(np.diff(flat)) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [flat.size]))
    lengths = ends - starts
    values = flat[starts]

    # Split runs longer than 255 into uint8-sized chunks.
    full, rem = np.divmod(lengths, 255)
    reps = full + (rem > 0)
    rep_values = np.repeat(values, reps)
    rep_counts = np.full(rep_values.size, 255, dtype=np.uint8)
    # The last chunk of each run carries the remainder (255 if rem == 0).
    last_idx = np.cumsum(reps) - 1
    rep_counts[last_idx] = np.where(rem > 0, rem, 255).astype(np.uint8)

    pairs = np.empty(rep_values.size * 2, dtype=np.uint8)
    pairs[0::2] = rep_counts
    pairs[1::2] = rep_values

    header = np.zeros(1, dtype=_HEADER)
    header["magic"], header["w"], header["h"], header["c"] = _MAGIC, w, h, c
    return EncodedImage(header.tobytes() + pairs.tobytes(),
                        width=w, height=h, channels=c,
                        image_format=ImageFormat.RAW)


def rle_decode(encoded: EncodedImage) -> np.ndarray:
    """Decode back to ``(H, W, C)`` uint8; validates header and length."""
    payload = encoded.payload
    if len(payload) < _HEADER.itemsize:
        raise ValueError("payload shorter than header")
    header = np.frombuffer(payload[:_HEADER.itemsize], dtype=_HEADER)[0]
    if header["magic"] != _MAGIC:
        raise ValueError("bad magic byte; not an RLE payload")
    w, h, c = int(header["w"]), int(header["h"]), int(header["c"])
    body = np.frombuffer(payload[_HEADER.itemsize:], dtype=np.uint8)
    if body.size % 2:
        raise ValueError("truncated RLE stream")
    counts = body[0::2].astype(np.int64)
    values = body[1::2]
    if counts.sum() != w * h * c:
        raise ValueError(
            f"RLE stream decodes to {counts.sum()} bytes, header says "
            f"{w * h * c}")
    flat = np.repeat(values, counts)
    return flat.reshape(h, w, c)
