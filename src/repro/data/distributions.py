"""Image-size distributions (Fig. 4).

Fig. 4 plots per-dataset 2D densities of (width, height) with the modal
size labelled: uniform-size datasets (Plant Village 256×256, Fruits-360
100×100, Corn Growth Stage 224×224, CRSA 3840×2160) collapse to a point,
while Weed Detection in Soybean (mode 233×233) and Sugar Cane-Spittle Bug
(mode 61×61) "vary significantly".

Variable sizes are modelled as a correlated log-normal around the mode,
truncated to a plausible pixel range — reproducing the figure's visual:
a dense cloud at the mode with a tail toward larger crops (object-detection
crops scale with object distance, hence the long tail).
"""

from __future__ import annotations

import abc
import dataclasses
import math

import numpy as np


class ImageSizeDistribution(abc.ABC):
    """Distribution over per-image (width, height) in pixels."""

    @property
    @abc.abstractmethod
    def mode(self) -> tuple[int, int]:
        """The most common (width, height) — the Fig. 4 label."""

    @property
    @abc.abstractmethod
    def is_uniform(self) -> bool:
        """True when every image has the same size."""

    @abc.abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` sizes; returns an ``(n, 2)`` int array of (w, h)."""

    def mean_pixels(self, n: int = 4096, seed: int = 0) -> float:
        """Monte-Carlo mean pixel count (exact for uniform sizes)."""
        sizes = self.sample(n, np.random.default_rng(seed))
        return float(np.mean(sizes[:, 0] * sizes[:, 1]))


@dataclasses.dataclass(frozen=True)
class FixedSize(ImageSizeDistribution):
    """Every image is exactly ``width × height``."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if min(self.width, self.height) < 1:
            raise ValueError("image dimensions must be positive")

    @property
    def mode(self) -> tuple[int, int]:
        return (self.width, self.height)

    @property
    def is_uniform(self) -> bool:
        return True

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise ValueError("n must be non-negative")
        return np.full((n, 2), (self.width, self.height), dtype=np.int64)

    def mean_pixels(self, n: int = 4096, seed: int = 0) -> float:
        return float(self.width * self.height)


@dataclasses.dataclass(frozen=True)
class VariableSize(ImageSizeDistribution):
    """Correlated log-normal size cloud around a modal size.

    Parameters
    ----------
    mode_width, mode_height:
        The most common size (the Fig. 4 label).
    sigma:
        Log-scale spread; ~0.35 reproduces the Weed-Soybean cloud,
        ~0.45 the wider Spittle-Bug cloud.
    correlation:
        Width/height log correlation (crops are near-square: ~0.8).
    min_side, max_side:
        Truncation bounds in pixels (Fig. 4 axes run 0..400-ish).
    """

    mode_width: int
    mode_height: int
    sigma: float = 0.35
    correlation: float = 0.8
    min_side: int = 16
    max_side: int = 420

    def __post_init__(self) -> None:
        if not 0.0 <= self.correlation <= 1.0:
            raise ValueError("correlation must be within [0, 1]")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if not (self.min_side <= self.mode_width <= self.max_side
                and self.min_side <= self.mode_height <= self.max_side):
            raise ValueError("mode must lie inside the truncation bounds")

    @property
    def mode(self) -> tuple[int, int]:
        return (self.mode_width, self.mode_height)

    @property
    def is_uniform(self) -> bool:
        return False

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise ValueError("n must be non-negative")
        # Log-normal with its *mode* at the labelled size: the density
        # mode of a multivariate log-normal exp(N(mu, Sigma)) is
        # exp(mu - Sigma·1), so mu = log(mode) + sigma^2 (1 + rho).
        mu = (np.log([self.mode_width, self.mode_height])
              + self.sigma ** 2 * (1.0 + self.correlation))
        cov = self.sigma ** 2 * np.array(
            [[1.0, self.correlation], [self.correlation, 1.0]])
        z = rng.multivariate_normal(mu, cov, size=n)
        sizes = np.exp(z)
        sizes = np.clip(np.rint(sizes), self.min_side, self.max_side)
        return sizes.astype(np.int64)


def density_grid(sizes: np.ndarray, bins: int = 40,
                 extent: tuple[int, int] = (0, 420),
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """2D histogram density of an ``(n, 2)`` size sample (Fig. 4 panel).

    Returns ``(density, w_edges, h_edges)`` with density normalized to a
    max of 1.0 (the figure's colorbar runs 0.2..1.0).
    """
    if sizes.ndim != 2 or sizes.shape[1] != 2:
        raise ValueError("sizes must be (n, 2)")
    if len(sizes) == 0:
        raise ValueError("need at least one size sample")
    hist, w_edges, h_edges = np.histogram2d(
        sizes[:, 0], sizes[:, 1], bins=bins,
        range=[list(extent), list(extent)])
    peak = hist.max()
    if peak > 0:
        hist = hist / peak
    return hist, w_edges, h_edges


def empirical_mode(sizes: np.ndarray, bin_width: int = 8) -> tuple[int, int]:
    """Estimate the modal (w, h) from samples via the densest 2D bin.

    Used by the Fig. 4 harness to print the label the paper shows
    ("233x233", "61x61").
    """
    hist, w_edges, h_edges = density_grid(
        sizes, bins=max(2, math.ceil(420 / bin_width)))
    wi, hi = np.unravel_index(np.argmax(hist), hist.shape)
    w = int((w_edges[wi] + w_edges[wi + 1]) / 2)
    h = int((h_edges[hi] + h_edges[hi + 1]) / 2)
    return (w, h)
