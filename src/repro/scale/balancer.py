"""Request load balancing across replica servers.

The frontend tier of a scaled-out HARVEST deployment: one entry point
fanning requests across replica :class:`TritonLikeServer` backends that
share a simulator clock.  Policies: round-robin (stateless) and
join-shortest-queue (queue-aware, the standard low-latency choice).
"""

from __future__ import annotations

import abc
import itertools

from repro.serving.request import Request
from repro.serving.server import TritonLikeServer


class BalancingPolicy(abc.ABC):
    """Chooses a backend index for each incoming request."""

    @abc.abstractmethod
    def choose(self, backends: list[TritonLikeServer],
               request: Request) -> int:
        """Backend index for this request."""


class RoundRobinPolicy(BalancingPolicy):
    """Cycle through backends regardless of load."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def choose(self, backends: list[TritonLikeServer],
               request: Request) -> int:
        """Cycle position modulo the backend count."""
        return next(self._counter) % len(backends)


class JoinShortestQueuePolicy(BalancingPolicy):
    """Send each request to the backend with the fewest queued images."""

    def choose(self, backends: list[TritonLikeServer],
               request: Request) -> int:
        """Index of the backend with the least queued work."""
        loads = [s.queued_images() + s.busy_instances() for s in backends]
        return loads.index(min(loads))


class LoadBalancer:
    """Fan requests across replica servers sharing one simulator.

    All backends must be constructed over the *same*
    :class:`~repro.serving.events.Simulator` so virtual time is
    consistent across the group.
    """

    def __init__(self, backends: list[TritonLikeServer],
                 policy: BalancingPolicy | None = None):
        if not backends:
            raise ValueError("need at least one backend")
        sims = {id(s.sim) for s in backends}
        if len(sims) != 1:
            raise ValueError("backends must share one simulator")
        self.backends = backends
        self.policy = policy if policy is not None else RoundRobinPolicy()
        self.routed: list[int] = []

    @property
    def sim(self):
        """The shared simulator clock."""
        return self.backends[0].sim

    def submit(self, request: Request) -> None:
        """Route one request per the policy and submit it."""
        index = self.policy.choose(self.backends, request)
        if not 0 <= index < len(self.backends):
            raise IndexError(
                f"policy chose backend {index} of {len(self.backends)}")
        self.routed.append(index)
        self.backends[index].submit(request)

    def run(self, until: float | None = None) -> list:
        """Drive the shared simulation; returns all responses."""
        self.sim.run(until=until)
        responses = []
        for backend in self.backends:
            responses.extend(backend.responses)
        return responses

    def routing_counts(self) -> list[int]:
        """Requests routed per backend (balance diagnostics)."""
        counts = [0] * len(self.backends)
        for index in self.routed:
            counts[index] += 1
        return counts
