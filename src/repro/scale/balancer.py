"""Request load balancing across replica servers.

The frontend tier of a scaled-out HARVEST deployment: one entry point
fanning requests across replica :class:`TritonLikeServer` backends that
share a simulator clock.  Policies: round-robin (stateless rotation,
resize-safe) and join-shortest-queue (queue-aware, the standard
low-latency choice, with rotating tie-breaks).

The pool is **elastic**: backends can be added live, drained (they stop
receiving routes but finish everything in flight), and released once
drained — the mechanics the :mod:`repro.scale.autoscaler` control loop
drives.  An optional :class:`~repro.scale.admission.AdmissionController`
guards the front door, turning arrivals away with ``rejected``
responses instead of letting queues grow without bound.
"""

from __future__ import annotations

import abc

from repro.scale.admission import AdmissionController
from repro.serving.observability import MetricsRegistry
from repro.serving.request import Request, Response
from repro.serving.server import TritonLikeServer


class BalancingPolicy(abc.ABC):
    """Chooses a backend index for each incoming request.

    ``backends`` is the list of *routable* (non-draining) backends at
    the moment of the call; the pool may grow or shrink between calls,
    so policies must not assume a stable length or stable indices.
    """

    @abc.abstractmethod
    def choose(self, backends: list[TritonLikeServer],
               request: Request) -> int:
        """Backend index for this request."""


class RoundRobinPolicy(BalancingPolicy):
    """Cycle through backends regardless of load.

    The rotation is anchored on backend *identity*, not on a global
    counter modulo the current pool size: after a resize the next pick
    is simply the backend after the previously chosen one, so scaling
    events neither repeat nor starve a backend.  (The old counter%len
    scheme permuted the rotation on every resize — e.g. adding a fourth
    backend right after a full cycle of three sent two consecutive
    requests to the same backend while the newcomer idled.)
    """

    def __init__(self) -> None:
        self._last: TritonLikeServer | None = None
        #: Pool position of the previous pick, used to re-anchor the
        #: rotation when that backend has since been removed.
        self._position = 0

    def choose(self, backends: list[TritonLikeServer],
               request: Request) -> int:
        """The backend after the previously chosen one (wrapping)."""
        if self._last is None:
            index = 0
        else:
            try:
                index = (backends.index(self._last) + 1) % len(backends)
            except ValueError:  # previous pick was removed from the pool
                index = self._position % len(backends)
        self._last = backends[index]
        self._position = index
        return index


class JoinShortestQueuePolicy(BalancingPolicy):
    """Send each request to the backend with the fewest queued images.

    Ties rotate instead of always resolving to the lowest index, so a
    pool of equally idle backends shares load evenly rather than
    hammering backend 0.
    """

    def __init__(self) -> None:
        self._rotation = 0

    def choose(self, backends: list[TritonLikeServer],
               request: Request) -> int:
        """Index of the backend with the least queued work."""
        loads = [s.queued_images() + s.busy_instances() for s in backends]
        least = min(loads)
        candidates = [i for i, load in enumerate(loads) if load == least]
        index = candidates[self._rotation % len(candidates)]
        self._rotation += 1
        return index


class LoadBalancer:
    """Fan requests across an elastic pool of replica servers.

    All backends must be constructed over the *same*
    :class:`~repro.serving.events.Simulator` so virtual time is
    consistent across the group.  ``registry`` (front-door metrics:
    routing, admission, pool size) defaults to a fresh
    :class:`MetricsRegistry` on the shared clock; pass the backends'
    shared registry to get one combined scrape.  ``admission`` gates
    :meth:`submit` (see :mod:`repro.scale.admission`).
    """

    def __init__(self, backends: list[TritonLikeServer],
                 policy: BalancingPolicy | None = None,
                 registry: MetricsRegistry | None = None,
                 admission: AdmissionController | None = None,
                 cache=None):
        if not backends:
            raise ValueError("need at least one backend")
        sims = {id(s.sim) for s in backends}
        if len(sims) != 1:
            raise ValueError("backends must share one simulator")
        self.backends = list(backends)
        self.policy = policy if policy is not None else RoundRobinPolicy()
        self.admission = admission
        #: Optional :class:`~repro.cache.tiers.CacheHierarchy` consulted
        #: (non-mutating peek at the cloud tensor tier) to flag arrivals
        #: the cache will serve, so admission control can count them
        #: outside the token bucket (see
        #: :attr:`~repro.scale.admission.AdmissionConfig.exempt_cache_hits`).
        self.cache = cache
        self.routed: list[int] = []
        #: Responses already handed out by :meth:`run`/:meth:`collect`.
        self.completed: list[Response] = []
        self._draining: set[int] = set()
        #: Next unread index into each attached backend's response log.
        self._cursors: dict[int, int] = {
            id(b): len(b.responses) for b in backends}
        self._counts: dict[int, int] = {id(b): 0 for b in backends}
        #: Balancer-made responses (admission rejections) and responses
        #: harvested from released backends, awaiting the next collect.
        self._pending: list[Response] = []
        sim = backends[0].sim
        self.metrics = (registry if registry is not None
                        else MetricsRegistry(clock=lambda: sim.now))
        m = self.metrics
        # Label-free metrics bind their single series once; the shed
        # counter keeps a small per-reason handle cache (reasons come
        # from the admission policy, a handful at most).
        self._c_routed = m.counter(
            "balancer_routed_total",
            "Requests routed to backends.").labels()
        self._c_admitted = m.counter(
            "admission_admitted_total",
            "Requests admitted at the balancer front door.").labels()
        self._c_shed = m.counter(
            "admission_rejected_total",
            "Requests shed at the front door, by reason.")
        self._shed_handles: dict[str, object] = {}
        self._g_active = m.gauge(
            "balancer_active_backends",
            "Backends receiving routes.").labels()
        self._g_draining = m.gauge(
            "balancer_draining_backends",
            "Backends draining in-flight work before release.").labels()
        self._update_pool_gauges()

    @property
    def sim(self):
        """The shared simulator clock."""
        return self.backends[0].sim

    # ------------------------------------------------------------------
    # Elastic pool management
    # ------------------------------------------------------------------
    @property
    def active_backends(self) -> list[TritonLikeServer]:
        """Backends currently receiving new routes (not draining)."""
        return [b for b in self.backends if id(b) not in self._draining]

    @property
    def draining_backends(self) -> list[TritonLikeServer]:
        """Backends finishing in-flight work before release."""
        return [b for b in self.backends if id(b) in self._draining]

    def _update_pool_gauges(self) -> None:
        self._g_active.set(len(self.active_backends))
        self._g_draining.set(len(self._draining))

    def add_backend(self, backend: TritonLikeServer) -> None:
        """Attach a new replica; it starts receiving routes at once."""
        if any(b is backend for b in self.backends):
            raise ValueError("backend is already attached")
        if id(backend.sim) != id(self.sim):
            raise ValueError("backends must share one simulator")
        if backend.draining:
            raise ValueError("cannot attach a draining backend")
        self.backends.append(backend)
        self._cursors[id(backend)] = len(backend.responses)
        self._counts[id(backend)] = 0
        self._update_pool_gauges()

    def drain_backend(self, backend: TritonLikeServer) -> None:
        """Stop routing to ``backend``; it finishes in-flight work.

        The backend stays attached (its remaining responses are still
        collected) until :meth:`release_backend` detaches it.  At least
        one backend must remain active.
        """
        if not any(b is backend for b in self.backends):
            raise ValueError("backend is not attached")
        if id(backend) in self._draining:
            return  # already draining
        if len(self.active_backends) <= 1:
            raise ValueError("cannot drain the last active backend")
        self._draining.add(id(backend))
        backend.begin_drain()
        self._update_pool_gauges()

    def release_backend(self, backend: TritonLikeServer) -> None:
        """Detach a fully drained backend from the pool.

        Its not-yet-collected responses are harvested first, so nothing
        a drained replica completed is ever lost.
        """
        if not any(b is backend for b in self.backends):
            raise ValueError("backend is not attached")
        if id(backend) not in self._draining:
            raise ValueError("release requires a draining backend")
        if not backend.is_drained:
            raise RuntimeError(
                "backend still has in-flight work; drain must finish "
                "before release")
        key = id(backend)
        self._pending.extend(backend.responses[self._cursors[key]:])
        self.backends = [b for b in self.backends if b is not backend]
        self._draining.discard(key)
        del self._cursors[key]
        del self._counts[key]
        self._update_pool_gauges()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def queue_depth(self) -> int:
        """Requests waiting behind the balancer (all attached backends)."""
        return sum(b.queue_depth() for b in self.backends)

    def submit(self, request: Request) -> None:
        """Route one request per the policy and submit it.

        With an admission controller set, a shed request is answered
        immediately with a ``rejected`` response (surfaced by the next
        :meth:`run`/:meth:`collect`) and never reaches a backend.
        """
        if self.admission is not None:
            cache_hit = False
            if self.cache is not None and request.cache_key is not None:
                from repro.cache.tiers import CLOUD_TENSOR

                cache_hit = self.cache.peek(CLOUD_TENSOR,
                                            request.cache_key)
            decision = self.admission.admit(self.sim.now,
                                            self.queue_depth(),
                                            trace=request.trace,
                                            cache_hit=cache_hit)
            if not decision.admitted:
                shed = self._shed_handles.get(decision.reason)
                if shed is None:
                    shed = self._shed_handles[decision.reason] = (
                        self._c_shed.labels(reason=decision.reason))
                shed.inc()
                request.arrival_time = self.sim.now
                if request.trace is not None:
                    request.trace.close(self.sim.now, status="rejected")
                self._pending.append(
                    Response(request, self.sim.now, status="rejected"))
                return
            self._c_admitted.inc()
        active = self.active_backends
        index = self.policy.choose(active, request)
        if not 0 <= index < len(active):
            raise IndexError(
                f"policy chose backend {index} of {len(active)}")
        backend = active[index]
        if request.trace is not None:
            request.trace.instant("route", self.sim.now,
                                  category="balancer", backend=index,
                                  active_backends=len(active))
        self.routed.append(self.backends.index(backend))
        self._counts[id(backend)] += 1
        self._c_routed.inc()
        backend.submit(request)

    def run(self, until: float | None = None) -> list[Response]:
        """Drive the shared simulation; returns *newly* completed
        responses.

        Successive calls with growing ``until`` horizons each return
        only the responses completed since the previous call (merged
        across backends in completion order), so callers can
        concatenate returns without double-counting.  The cumulative
        log lives in :attr:`completed` / :meth:`all_responses`.
        """
        self.sim.run(until=until)
        return self.collect()

    def collect(self) -> list[Response]:
        """Harvest responses completed since the previous collection."""
        fresh = self._pending
        self._pending = []
        for backend in self.backends:
            key = id(backend)
            cursor = self._cursors[key]
            fresh.extend(backend.responses[cursor:])
            self._cursors[key] = len(backend.responses)
        fresh.sort(key=lambda r: (r.completion_time,
                                  r.request.request_id))
        self.completed.extend(fresh)
        return fresh

    def all_responses(self) -> list[Response]:
        """Every response collected so far, plus any still unharvested."""
        self.collect()
        return list(self.completed)

    def routing_counts(self) -> list[int]:
        """Requests routed per attached backend (balance diagnostics).

        Aligned with the current :attr:`backends` list; counts for
        released backends leave with them.
        """
        return [self._counts[id(b)] for b in self.backends]
