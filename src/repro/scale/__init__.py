"""Scale-out substrate: multi-GPU parallelism and load balancing.

Section 3: "This backend architecture is also prepared for future
scale-out through different parallelism strategies."  Table 1's cloud
nodes carry two GPUs each (the paper uses one).  This package models the
scale-out the paper anticipates:

* :mod:`repro.scale.parallel` — data-parallel replica groups (the second
  node GPU, multi-node batches) with a communication-overhead efficiency
  law, plus batch sharding;
* :mod:`repro.scale.balancer` — request load balancing across replica
  servers on the discrete-event simulator (round-robin,
  join-shortest-queue).
"""

from repro.scale.parallel import (
    DataParallelGroup,
    ScalingPoint,
    shard_batch,
)
from repro.scale.balancer import (
    LoadBalancer,
    RoundRobinPolicy,
    JoinShortestQueuePolicy,
)

__all__ = [
    "DataParallelGroup",
    "ScalingPoint",
    "shard_batch",
    "LoadBalancer",
    "RoundRobinPolicy",
    "JoinShortestQueuePolicy",
]
