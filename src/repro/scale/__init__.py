"""Scale-out substrate: multi-GPU parallelism and load balancing.

Section 3: "This backend architecture is also prepared for future
scale-out through different parallelism strategies."  Table 1's cloud
nodes carry two GPUs each (the paper uses one).  This package models the
scale-out the paper anticipates:

* :mod:`repro.scale.parallel` — data-parallel replica groups (the second
  node GPU, multi-node batches) with a communication-overhead efficiency
  law, plus batch sharding;
* :mod:`repro.scale.balancer` — request load balancing across an
  elastic pool of replica servers on the discrete-event simulator
  (round-robin, join-shortest-queue; live add/drain/release);
* :mod:`repro.scale.admission` — front-door admission control (token
  -bucket rate limiting + queue-length shedding);
* :mod:`repro.scale.autoscaler` — the closed control loop: watch the
  observability signals, resize the replica pool against a p95 SLO,
  drain gracefully on scale-in.
"""

from repro.scale.parallel import (
    DataParallelGroup,
    ScalingPoint,
    shard_batch,
)
from repro.scale.balancer import (
    LoadBalancer,
    RoundRobinPolicy,
    JoinShortestQueuePolicy,
)
from repro.scale.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from repro.scale.autoscaler import (
    Autoscaler,
    AutoscalerConfig,
    ScaleEvent,
    replica_ceiling,
)

__all__ = [
    "DataParallelGroup",
    "ScalingPoint",
    "shard_batch",
    "LoadBalancer",
    "RoundRobinPolicy",
    "JoinShortestQueuePolicy",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "TokenBucket",
    "Autoscaler",
    "AutoscalerConfig",
    "ScaleEvent",
    "replica_ceiling",
]
