"""Admission control at the load-balancer front door.

An open-loop arrival stream does not care whether the cluster keeps up;
without admission control an overloaded balancer just grows its queues
without bound and every request's latency diverges ("Beyond Inference":
the serving tier, not the model, becomes the bottleneck).  This module
implements the two standard front-door defenses:

* a **token bucket** rate limit — sustained arrivals above
  ``rate_per_second`` are shed, while bursts up to ``burst`` tokens pass
  untouched (survey uploads are bursty; see
  :func:`repro.serving.traces.burst_trace`);
* **queue-length shedding** — once the backlog behind the balancer
  exceeds ``max_queued_requests``, new arrivals are turned away
  immediately with a ``rejected`` response instead of joining a queue
  that already violates the latency SLO.

Both operate on the simulator clock and are fully deterministic.  The
:class:`~repro.scale.balancer.LoadBalancer` consults the controller on
every :meth:`~repro.scale.balancer.LoadBalancer.submit`.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class AdmissionConfig:
    """Front-door admission policy.

    ``rate_per_second`` of 0 disables the rate limit;
    ``max_queued_requests`` of 0 disables queue shedding.  With both
    disabled the controller admits everything (a useful ablation).
    """

    rate_per_second: float = 0.0
    #: Bucket capacity: how many requests may arrive back-to-back
    #: before the rate limit bites.
    burst: int = 1
    max_queued_requests: int = 0
    #: Count cache hits outside the token bucket: a request the cache
    #: hierarchy will answer without inference does not consume the
    #: work budget the bucket meters.  Queue-length shedding still
    #: applies (a hit still occupies the front door briefly).
    exempt_cache_hits: bool = False

    def __post_init__(self) -> None:
        if self.rate_per_second < 0:
            raise ValueError("rate_per_second must be >= 0 (0 = off)")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.max_queued_requests < 0:
            raise ValueError(
                "max_queued_requests must be >= 0 (0 = off)")


@dataclasses.dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict for one arrival."""

    admitted: bool
    #: "ok" when admitted; "rate" (token bucket empty) or "queue"
    #: (backlog past the shed threshold) when rejected.
    reason: str


class TokenBucket:
    """A deterministic token bucket on a caller-supplied clock.

    Tokens refill continuously at ``rate`` per second up to ``burst``;
    each admitted request takes one token.  Refill is computed lazily
    from the elapsed virtual time, so no timer events are needed.
    """

    def __init__(self, rate: float, burst: int):
        if rate <= 0:
            raise ValueError("token refill rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._last_refill = 0.0

    def available(self, now: float) -> float:
        """Tokens available at virtual time ``now`` (refills lazily)."""
        elapsed = max(0.0, now - self._last_refill)
        self._tokens = min(float(self.burst),
                           self._tokens + elapsed * self.rate)
        self._last_refill = max(self._last_refill, now)
        return self._tokens

    def try_take(self, now: float) -> bool:
        """Take one token if available; False when the bucket is dry."""
        if self.available(now) < 1.0:
            return False
        self._tokens -= 1.0
        return True


class AdmissionController:
    """Applies an :class:`AdmissionConfig` to an arrival stream.

    The balancer passes the current virtual time and its live backlog;
    the queue check runs *before* the rate limit so a shed request does
    not also burn a token (tokens meter work the cluster will actually
    accept).
    """

    def __init__(self, config: AdmissionConfig):
        self.config = config
        self._bucket = (TokenBucket(config.rate_per_second, config.burst)
                        if config.rate_per_second > 0 else None)

    def admit(self, now: float, queued_requests: int,
              trace=None, cache_hit: bool = False) -> AdmissionDecision:
        """Decide one arrival given the backlog behind the balancer.

        With a :class:`~repro.serving.tracectx.TraceContext` passed, the
        verdict is recorded as an instant ``admission`` event (shed
        attempts stay visible in the trace even though they never reach
        a backend).  ``cache_hit`` marks arrivals the cache hierarchy
        will answer without inference; with
        :attr:`AdmissionConfig.exempt_cache_hits` set they bypass the
        token bucket (no token consumed), so cached traffic never
        starves the budget metering real backend work.
        """
        exempt = cache_hit and self.config.exempt_cache_hits
        limit = self.config.max_queued_requests
        if limit and queued_requests >= limit:
            decision = AdmissionDecision(False, "queue")
        elif (self._bucket is not None and not exempt
                and not self._bucket.try_take(now)):
            decision = AdmissionDecision(False, "rate")
        else:
            decision = AdmissionDecision(True, "ok")
        if trace is not None:
            trace.instant("admission", now, category="admission",
                          admitted=decision.admitted,
                          reason=decision.reason,
                          queued_requests=queued_requests,
                          cache_exempt=exempt)
        return decision
