"""Closed-loop replica autoscaling over the load balancer.

The observability layer (:mod:`repro.serving.observability`) measures
queue depth, latency, and utilization *while they happen*; this module
closes the loop: a :class:`Autoscaler` runs as a periodic control task
on the simulator clock, watches those signals over a
:class:`~repro.scale.balancer.LoadBalancer`, and resizes the replica
pool against a p95 latency SLO —

* **scale-out** when the SLO is breached or queues grow for
  ``breach_intervals`` consecutive evaluation ticks (a new replica from
  ``replica_factory`` joins the pool immediately);
* **scale-in** when the pool has been calm for ``idle_intervals``
  ticks: the newest replica is *drained* — it stops receiving routes
  but finishes every in-flight batch — and only released from the pool
  once :attr:`~repro.serving.server.TritonLikeServer.is_drained`, so
  scale-in never loses a request.

The p95 signal is read the way a production controller would read it:
windowed deltas of the ``request_latency_seconds`` histogram buckets
(per tick, across every attached backend's registry), not a walk over
completed response objects.  The replica ceiling should come from the
capacity planner (:func:`replica_ceiling`): the autoscaler reacts to
load, the planner bounds what reacting is allowed to cost.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Callable

from repro.predict.capacity import DeploymentPlan
from repro.scale.balancer import LoadBalancer
from repro.serving.observability import Histogram, MetricsRegistry
from repro.serving.server import TritonLikeServer


def replica_ceiling(plan: DeploymentPlan,
                    safety_factor: float = 1.0) -> int:
    """Max-replica bound for the autoscaler from a capacity plan.

    The planner already answers "how many devices hold this workload's
    peak within the SLO"; the autoscaler must not provision past that
    answer times a ``safety_factor`` (>= 1) of slack.  Raises on an
    infeasible plan — no replica count will meet the SLO, so bounding a
    scale-out loop with it would be meaningless.
    """
    if safety_factor < 1.0:
        raise ValueError("safety_factor must be >= 1")
    if not plan.meets_slo or plan.devices < 1:
        raise ValueError(
            f"plan for {plan.model!r} on {plan.platform!r} is "
            "infeasible; cannot derive a replica ceiling")
    return max(1, math.ceil(plan.devices * safety_factor))


@dataclasses.dataclass(frozen=True)
class AutoscalerConfig:
    """Control-loop policy knobs.

    Breach = windowed p95 above ``slo_p95_seconds`` *or* queued
    requests per active replica above ``scale_out_queue_depth``; calm =
    p95 under ``scale_in_p95_margin`` of the SLO (or no traffic), pool
    utilization under ``scale_in_utilization``, and a near-empty queue.
    Sustained breach scales out, sustained calm drains the newest
    replica; ``cooldown_seconds`` separates consecutive actions so one
    burst cannot thrash the pool.
    """

    slo_p95_seconds: float
    interval: float = 0.25
    min_replicas: int = 1
    max_replicas: int = 8
    breach_intervals: int = 2
    idle_intervals: int = 4
    scale_out_queue_depth: float = 8.0
    scale_in_utilization: float = 0.3
    scale_in_p95_margin: float = 0.7
    cooldown_seconds: float = 1.0
    #: Minimum completions in a tick window for the p95 estimate to be
    #: trusted (tiny windows make noisy quantiles).
    min_window_samples: int = 5

    def __post_init__(self) -> None:
        if self.slo_p95_seconds <= 0:
            raise ValueError("SLO must be positive")
        if self.interval <= 0:
            raise ValueError("evaluation interval must be positive")
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.breach_intervals < 1 or self.idle_intervals < 1:
            raise ValueError("streak lengths must be >= 1")
        if self.scale_out_queue_depth <= 0:
            raise ValueError("scale_out_queue_depth must be positive")
        if not 0 < self.scale_in_utilization < 1:
            raise ValueError("scale_in_utilization must be in (0, 1)")
        if not 0 < self.scale_in_p95_margin <= 1:
            raise ValueError("scale_in_p95_margin must be in (0, 1]")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown must be >= 0")
        if self.min_window_samples < 1:
            raise ValueError("min_window_samples must be >= 1")


@dataclasses.dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler action, with the signals that triggered it."""

    time: float
    #: "scale_out" (replica added), "drain" (replica stops receiving
    #: routes), or "release" (drained replica left the pool).
    action: str
    #: Active replicas *after* the action.
    replicas: int
    reason: str
    #: Windowed p95 at decision time (None: too few samples).
    p95_seconds: float | None
    queue_per_replica: float
    utilization: float


class Autoscaler:
    """The simulator-clock control loop resizing a balancer's pool.

    ``replica_factory`` builds one fresh backend on the balancer's
    simulator per scale-out (the caller wires model configs and shares
    the metrics registry as desired).  ``registry`` (control-plane
    metrics: event counters, replica/p95 gauges) defaults to the
    balancer's own registry, so one scrape shows data plane and control
    plane together.
    """

    def __init__(self, balancer: LoadBalancer,
                 replica_factory: Callable[[], TritonLikeServer],
                 config: AutoscalerConfig,
                 registry: MetricsRegistry | None = None):
        self.balancer = balancer
        self.replica_factory = replica_factory
        self.config = config
        self.events: list[ScaleEvent] = []
        self._running = False
        self._breach_streak = 0
        self._idle_streak = 0
        self._slo_alert_pending = False
        self._last_action_time = -math.inf
        #: Per-registry cumulative latency-bucket snapshot from the
        #: previous tick (keyed by registry identity so backends sharing
        #: one registry are not double counted).
        self._snapshots: dict[int, list[int]] = {}
        #: Per-backend cumulative occupied-seconds at the previous tick.
        self._busy_snapshots: dict[int, float] = {}
        self._last_window_start = 0.0
        m = registry if registry is not None else balancer.metrics
        self._c_events = m.counter(
            "autoscale_events_total", "Autoscaler actions by kind.")
        self._g_replicas = m.gauge(
            "autoscale_replicas", "Active replicas under the balancer.")
        self._g_p95 = m.gauge(
            "autoscale_window_p95_seconds",
            "Windowed p95 latency the autoscaler last acted on.")
        self._g_replicas.set(len(balancer.active_backends))

    # ------------------------------------------------------------------
    # Observability signals
    # ------------------------------------------------------------------
    def _latency_histograms(self) -> dict[int, Histogram]:
        """The latency histogram of each distinct backend registry."""
        out: dict[int, Histogram] = {}
        for backend in self.balancer.backends:
            metric = backend.metrics.get("request_latency_seconds")
            if isinstance(metric, Histogram):
                out[id(backend.metrics)] = metric
        return out

    @staticmethod
    def _bucket_totals(histogram: Histogram) -> list[int]:
        """Cumulative per-bucket counts summed across label sets."""
        totals = [0] * (len(histogram.buckets) + 1)
        for _, series in histogram.items():
            for i, count in enumerate(series.bucket_counts):
                totals[i] += count
        return totals

    def window_p95(self) -> float | None:
        """p95 latency over completions since the previous tick.

        Estimated from histogram bucket deltas the Prometheus way:
        the upper bound of the bucket containing the 95th percentile
        (conservative — never under-reports a breach).  None when the
        window holds fewer than ``min_window_samples`` completions.
        """
        deltas: list[int] | None = None
        bounds: tuple[float, ...] = ()
        fresh: dict[int, list[int]] = {}
        for key, histogram in self._latency_histograms().items():
            totals = self._bucket_totals(histogram)
            fresh[key] = totals
            previous = self._snapshots.get(key,
                                           [0] * len(totals))
            window = [t - p for t, p in zip(totals, previous)]
            if deltas is None:
                deltas = window
                bounds = histogram.buckets
            else:
                deltas = [a + b for a, b in zip(deltas, window)]
        self._snapshots = fresh
        if deltas is None:
            return None
        total = sum(deltas)
        if total < self.config.min_window_samples:
            return None
        threshold = 0.95 * total
        running = 0
        for bound, count in zip((*bounds, float("inf")), deltas):
            running += count
            if running >= threshold:
                return bound
        return float("inf")  # pragma: no cover - loop always returns

    def queue_per_replica(self) -> float:
        """Queued requests per active replica (the growth signal)."""
        active = self.balancer.active_backends
        queued = sum(b.queue_depth() for b in active)
        return queued / len(active) if active else 0.0

    @staticmethod
    def _occupied_seconds(backend: TritonLikeServer) -> float:
        """Cumulative busy + fault-occupied seconds across instances."""
        return sum(stats.busy_seconds + stats.fault_seconds
                   for model in backend.model_names()
                   for stats in backend.instance_stats(model))

    def utilization(self) -> float:
        """Occupied fraction of the active pool since the last tick.

        Windowed from the instances' cumulative busy/fault seconds
        (fault-detection windows count as occupied, matching
        :meth:`~repro.serving.instance.InstanceStats.utilization`)
        rather than sampled instantaneously — a single tick catching a
        momentarily busy instance must not veto a whole scale-in.
        """
        now = self.balancer.sim.now
        elapsed = now - self._last_window_start
        self._last_window_start = now
        active = self.balancer.active_backends
        fresh = {id(b): self._occupied_seconds(b) for b in active}
        # A backend first seen this window contributes everything it
        # has accumulated so far (it was created within the window).
        occupied = sum(total - self._busy_snapshots.get(key, 0.0)
                       for key, total in fresh.items())
        self._busy_snapshots = fresh
        instances = sum(b.total_instances() for b in active)
        if elapsed <= 0 or instances == 0:
            return 0.0
        return min(1.0, occupied / (elapsed * instances))

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the control loop at the current virtual time."""
        if self._running:
            raise RuntimeError("autoscaler already started")
        self._running = True
        # Baseline the signal windows so the first tick only covers
        # activity after start().
        self.window_p95()
        self.utilization()
        self.balancer.sim.schedule(self.config.interval, self._tick,
                                   daemon=True)

    def stop(self) -> None:
        """Stop the loop after the current tick."""
        self._running = False

    def notify_slo_alert(self, alert=None) -> None:
        """Feed an SLO burn-rate alert in as a scale-out signal.

        Wire via ``monitor.on_alert(autoscaler.notify_slo_alert)``.  A
        :class:`~repro.serving.slo.BurnAlert` already encodes a
        *sustained* multi-window budget burn, so the next tick treats it
        as a full breach streak rather than a single breached interval —
        the pool grows one cooldown sooner than the raw p95 path would
        allow.
        """
        self._slo_alert_pending = True

    def _record(self, action: str, reason: str,
                p95: float | None, queue: float, util: float) -> None:
        active = len(self.balancer.active_backends)
        self.events.append(ScaleEvent(
            time=self.balancer.sim.now, action=action, replicas=active,
            reason=reason, p95_seconds=p95, queue_per_replica=queue,
            utilization=util))
        self._c_events.inc(action=action)
        self._g_replicas.set(active)

    def _release_drained(self, p95: float | None, queue: float,
                         util: float) -> None:
        for backend in list(self.balancer.draining_backends):
            if backend.is_drained:
                self.balancer.release_backend(backend)
                self._record("release", "drain complete", p95, queue,
                             util)

    def _tick(self) -> None:
        if not self._running:
            return
        cfg = self.config
        p95 = self.window_p95()
        queue = self.queue_per_replica()
        util = self.utilization()
        if p95 is not None:
            self._g_p95.set(p95)
        self._release_drained(p95, queue, util)

        slo_breach = p95 is not None and p95 > cfg.slo_p95_seconds
        queue_breach = queue > cfg.scale_out_queue_depth
        burn_alerted = self._slo_alert_pending
        self._slo_alert_pending = False
        if slo_breach or queue_breach or burn_alerted:
            self._breach_streak += 1
            if burn_alerted:
                # A multi-window burn alert already proves sustained
                # breach; don't make it wait out the streak again.
                self._breach_streak = max(self._breach_streak,
                                          cfg.breach_intervals)
            self._idle_streak = 0
        else:
            self._breach_streak = 0
            calm_latency = (p95 is None
                            or p95 <= cfg.scale_in_p95_margin
                            * cfg.slo_p95_seconds)
            # Calm queues: well under the breach threshold (a quarter),
            # not strictly empty — batching always holds a few requests.
            calm_queue = queue <= cfg.scale_out_queue_depth / 4
            if (calm_latency and util <= cfg.scale_in_utilization
                    and calm_queue):
                self._idle_streak += 1
            else:
                self._idle_streak = 0

        now = self.balancer.sim.now
        cooled = now - self._last_action_time >= cfg.cooldown_seconds
        active = len(self.balancer.active_backends)
        if (self._breach_streak >= cfg.breach_intervals and cooled
                and active < cfg.max_replicas):
            self.balancer.add_backend(self.replica_factory())
            reason = ("p95 breach" if slo_breach
                      else "queue growth" if queue_breach
                      else "slo burn-rate")
            self._record("scale_out", reason, p95, queue, util)
            self._last_action_time = now
            self._breach_streak = 0
        elif (self._idle_streak >= cfg.idle_intervals and cooled
                and active > cfg.min_replicas):
            victim = self.balancer.active_backends[-1]
            self.balancer.drain_backend(victim)
            self._record("drain", "sustained calm", p95, queue, util)
            self._last_action_time = now
            self._idle_streak = 0

        # Re-arm only while the simulation still has *workload* events
        # pending: when only other control loops' daemon ticks remain,
        # every in-flight batch has finished, so finish any pending
        # drains and let the run end (sampler discipline).
        if self.balancer.sim.peek_foreground_time() is not None:
            self.balancer.sim.schedule(cfg.interval, self._tick,
                                       daemon=True)
        else:
            self._release_drained(p95, queue, util)
            self._running = False


# ----------------------------------------------------------------------
# Serverless: provisioned-concurrency floor control
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class FaaSPolicyConfig:
    """Knobs for :class:`FaaSConcurrencyPolicy`.

    The policy raises a function's provisioned-concurrency floor by
    ``step`` on every pending SLO burn alert (cold-start storms burn
    the latency budget, and pinned-warm instances are the serverless
    remedy) and decays it back one ``step`` after ``hold_seconds`` of
    calm — paying the provisioned GB-second rate only while the alerts
    say it buys latency.
    """

    interval: float = 0.25
    min_provisioned: int = 0
    max_provisioned: int = 4
    step: int = 1
    hold_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("evaluation interval must be positive")
        if self.min_provisioned < 0:
            raise ValueError("min provisioned must be >= 0")
        if self.max_provisioned < self.min_provisioned:
            raise ValueError("max provisioned must be >= min")
        if self.step < 1:
            raise ValueError("step must be >= 1")
        if self.hold_seconds < 0:
            raise ValueError("hold_seconds must be >= 0")


@dataclasses.dataclass(frozen=True)
class FaaSPolicyEvent:
    """One provisioned-concurrency change and why it happened."""

    time: float
    #: "provision" (floor raised) or "release" (floor decayed).
    action: str
    #: Provisioned floor *after* the action.
    provisioned: int
    reason: str


class FaaSConcurrencyPolicy:
    """SLO-burn-driven provisioned concurrency for one function.

    The replica :class:`Autoscaler` answers breaches by adding servers;
    on a :class:`~repro.faas.backend.FaaSBackend` the equivalent lever
    is the provisioned-concurrency floor — pinned always-warm
    instances that requests hit without a cold start.  Wire
    ``monitor.on_alert(policy.notify_slo_alert)`` exactly as with the
    replica autoscaler; the policy runs as a periodic daemon tick on
    the backend's simulator and follows the same sampler discipline
    (re-arms only while foreground work pends).
    """

    def __init__(self, backend, function: str,
                 config: FaaSPolicyConfig | None = None,
                 registry: MetricsRegistry | None = None):
        self.backend = backend
        self.function = function
        self.config = config if config is not None else FaaSPolicyConfig()
        self.events: list[FaaSPolicyEvent] = []
        self._running = False
        self._alert_pending = False
        self._last_alert_time: float | None = None
        metrics = registry if registry is not None else backend.metrics
        self._c_events = metrics.counter(
            "faas_policy_events_total",
            "Provisioned-concurrency changes by action.")
        self._g_provisioned = metrics.gauge(
            "faas_provisioned_concurrency",
            "Current pinned-warm floor per function.")

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the control loop at the current virtual time."""
        if self._running:
            raise RuntimeError("policy already started")
        self._running = True
        floor = self.config.min_provisioned
        if self.backend.provisioned_concurrency(self.function) < floor:
            self.backend.set_provisioned_concurrency(self.function,
                                                     floor)
        self._g_provisioned.labels(function=self.function).set(
            self.backend.provisioned_concurrency(self.function))
        self.backend.sim.schedule(self.config.interval, self._tick,
                                  daemon=True)

    def stop(self) -> None:
        """Stop the loop after the current tick."""
        self._running = False

    def notify_slo_alert(self, alert=None) -> None:
        """Feed an SLO burn-rate alert in as a provision signal."""
        self._alert_pending = True

    # ------------------------------------------------------------------
    def _record(self, action: str, provisioned: int,
                reason: str) -> None:
        self.events.append(FaaSPolicyEvent(
            time=self.backend.sim.now, action=action,
            provisioned=provisioned, reason=reason))
        self._c_events.inc(action=action)
        self._g_provisioned.labels(function=self.function).set(
            provisioned)

    def _tick(self) -> None:
        if not self._running:
            return
        cfg = self.config
        now = self.backend.sim.now
        current = self.backend.provisioned_concurrency(self.function)
        alerted = self._alert_pending
        self._alert_pending = False
        if alerted:
            self._last_alert_time = now
            target = min(cfg.max_provisioned, current + cfg.step)
            if target != current:
                self.backend.set_provisioned_concurrency(
                    self.function, target)
                self._record("provision", target, "slo burn-rate")
        elif (current > cfg.min_provisioned
                and (self._last_alert_time is None
                     or now - self._last_alert_time
                     >= cfg.hold_seconds)):
            target = max(cfg.min_provisioned, current - cfg.step)
            self.backend.set_provisioned_concurrency(self.function,
                                                     target)
            self._record("release", target, "sustained calm")
        if self.backend.sim.peek_foreground_time() is not None:
            self.backend.sim.schedule(cfg.interval, self._tick,
                                      daemon=True)
        else:
            self._running = False
