"""Data-parallel replica groups.

Inference data parallelism is embarrassingly parallel per image, but a
replica group still pays per-dispatch costs: batch scatter, result
gather, and scheduler fan-out.  The standard efficiency law used here,

    throughput(N) = N · throughput(1) · 1 / (1 + c · (N − 1)),

with a small per-replica coordination coefficient ``c``, reproduces the
near-linear scaling observed for classification serving (c ≈ 0.01-0.03)
while preventing the model from claiming free linear speedup forever.

Not to be confused with :mod:`repro.sweep`, which is *host-process*
parallelism: this module models how a simulated deployment scales when
you add accelerator replicas (the parallelism lives inside the
simulation), while ``repro.sweep`` fans whole deterministic simulations
across the machine's CPU cores to make running many of them faster
(the parallelism is invisible to each simulation).  Nothing here
changes results; nothing there changes the model.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.engine.latency import LatencyModel
from repro.hardware.platform import PlatformSpec
from repro.models.graph import ModelGraph


def shard_batch(batch: np.ndarray, replicas: int) -> list[np.ndarray]:
    """Split a ``(N, ...)`` batch across replicas as evenly as possible.

    Shard sizes differ by at most one; empty shards are not produced
    (fewer shards than replicas when N < replicas).
    """
    if replicas < 1:
        raise ValueError("need at least one replica")
    if batch.ndim < 1 or batch.shape[0] < 1:
        raise ValueError("batch must have a leading sample axis")
    n = batch.shape[0]
    counts = [n // replicas + (1 if i < n % replicas else 0)
              for i in range(replicas)]
    shards = []
    start = 0
    for count in counts:
        if count == 0:
            continue
        shards.append(batch[start:start + count])
        start += count
    return shards


@dataclasses.dataclass(frozen=True)
class ScalingPoint:
    """Throughput of a replica group at one size."""

    replicas: int
    batch_per_replica: int
    throughput: float
    scaling_efficiency: float
    latency_seconds: float


class DataParallelGroup:
    """A group of identical engine replicas serving one model.

    Parameters
    ----------
    graph / platform:
        The replicated model and the device each replica runs on.
    coordination_overhead:
        The per-extra-replica coefficient ``c`` of the efficiency law.
    """

    def __init__(self, graph: ModelGraph, platform: PlatformSpec,
                 coordination_overhead: float = 0.02):
        if coordination_overhead < 0:
            raise ValueError("coordination overhead must be >= 0")
        self.graph = graph
        self.platform = platform
        self.coordination_overhead = coordination_overhead
        self.latency_model = LatencyModel(graph, platform)

    def efficiency(self, replicas: int) -> float:
        """Fraction of linear scaling retained at ``replicas``."""
        if replicas < 1:
            raise ValueError("need at least one replica")
        return 1.0 / (1.0 + self.coordination_overhead * (replicas - 1))

    def point(self, replicas: int, batch_per_replica: int) -> ScalingPoint:
        """Group throughput when each replica serves its own batches."""
        single = self.latency_model.throughput(batch_per_replica)
        eff = self.efficiency(replicas)
        return ScalingPoint(
            replicas=replicas,
            batch_per_replica=batch_per_replica,
            throughput=replicas * single * eff,
            scaling_efficiency=eff,
            latency_seconds=self.latency_model.latency(batch_per_replica),
        )

    def scaling_curve(self, max_replicas: int,
                      batch_per_replica: int = 64) -> list[ScalingPoint]:
        """The strong-scaling series (the scale-out preview)."""
        if max_replicas < 1:
            raise ValueError("need at least one replica")
        return [self.point(n, batch_per_replica)
                for n in range(1, max_replicas + 1)]

    def split_batch_latency(self, total_batch: int,
                            replicas: int) -> float:
        """Latency of one large batch scattered across the group.

        The group waits for the slowest shard (the largest one), plus the
        scatter/gather coordination term.
        """
        if total_batch < 1:
            raise ValueError("batch must be >= 1")
        largest_shard = -(-total_batch // replicas)
        base = self.latency_model.latency(largest_shard)
        return base * (1.0 + self.coordination_overhead * (replicas - 1))
