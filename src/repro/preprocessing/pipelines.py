"""Preprocessing pipeline composition.

"Each model family is paired with its own preprocessing method, and in
some cases, the dataset itself may require task-specific preprocessing"
(Section 3).  A :class:`PreprocessPipeline` is an executable op sequence
plus the metadata the cost model needs (input pixels in, output pixels
out, op inventory).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro.preprocessing import ops

#: torchvision's ImageNet statistics — what the evaluated checkpoints use.
IMAGENET_MEAN = np.array([0.485, 0.456, 0.406], dtype=np.float32)
IMAGENET_STD = np.array([0.229, 0.224, 0.225], dtype=np.float32)


@dataclasses.dataclass(frozen=True)
class PipelineStep:
    """One named op in a pipeline."""

    name: str
    fn: Callable[[np.ndarray], np.ndarray]


@dataclasses.dataclass(frozen=True)
class PreprocessPipeline:
    """An executable preprocessing pipeline.

    ``output_size`` is the square model-input side (224/96/32 in Fig. 7);
    ``dataset_specific`` marks pipelines that include a dataset-level
    stage (CRSA's perspective correction) before the model stage.
    """

    name: str
    steps: tuple[PipelineStep, ...]
    output_size: int
    dataset_specific: bool = False

    def __call__(self, image: np.ndarray) -> np.ndarray:
        """Run the pipeline: ``(H, W, C)`` uint8 → ``(C, s, s)`` float32."""
        out = image
        for step in self.steps:
            out = step.fn(out)
        return out

    @property
    def op_names(self) -> tuple[str, ...]:
        """Ordered op names in the pipeline."""
        return tuple(step.name for step in self.steps)


def model_pipeline(output_size: int,
                   resize_ratio: float = 1.143) -> PreprocessPipeline:
    """The standard vision-model pipeline: resize → crop → normalize → CHW.

    ``resize_ratio`` mirrors torchvision's 256/224 convention: resize the
    short side to ``ratio × output_size`` then center-crop.
    """
    if output_size < 1:
        raise ValueError("output_size must be positive")
    resize_to = max(output_size, int(round(output_size * resize_ratio)))

    def do_resize(img: np.ndarray) -> np.ndarray:
        h, w = img.shape[:2]
        scale = resize_to / min(h, w)
        return ops.resize_bilinear(img, max(1, round(h * scale)),
                                   max(1, round(w * scale)))

    steps = (
        PipelineStep("resize", do_resize),
        PipelineStep("center_crop",
                     lambda img: ops.center_crop(img, output_size,
                                                 output_size)),
        PipelineStep("normalize",
                     lambda img: ops.normalize(img, IMAGENET_MEAN,
                                               IMAGENET_STD)),
        PipelineStep("to_chw", ops.to_chw),
    )
    return PreprocessPipeline(f"model_{output_size}", steps, output_size)


def crsa_pipeline(output_size: int,
                  frame_hw: tuple[int, int] = (2160, 3840),
                  ) -> PreprocessPipeline:
    """The CRSA pipeline: perspective-correct the raw frame, then the
    standard model stage.

    The perspective op dominates cost on CPU ("OpenCV, employed
    specifically for the CRSA dataset with heavy CPU-bound operations,
    demonstrates poor performance in real-time scenarios").
    """
    h, w = frame_hw
    homography = ops.ground_plane_homography(w, h)

    def rectify(img: np.ndarray) -> np.ndarray:
        ih, iw = img.shape[:2]
        if (ih, iw) == (h, w):
            hom = homography
        else:  # scaled test frames: recompute for the actual size
            hom = ops.ground_plane_homography(iw, ih)
        return ops.warp_perspective(img, hom, ih, iw)

    base = model_pipeline(output_size)
    steps = (PipelineStep("perspective", rectify), *base.steps)
    return PreprocessPipeline(f"crsa_{output_size}", steps, output_size,
                              dataset_specific=True)
