"""Vectorized NumPy implementations of every preprocessing op.

All ops take ``(H, W, C)`` float or uint8 arrays and are loop-free over
pixels (gather-based bilinear sampling), per the HPC guides.  The
perspective pathway is real: :func:`solve_homography` solves the 8-DOF
direct linear transform from four point correspondences and
:func:`warp_perspective` inverse-maps through it with bilinear sampling —
the op the CRSA ground-vehicle feed needs (Section 3.2).
"""

from __future__ import annotations

import numpy as np

Array = np.ndarray


class _GridCache:
    """Bounded FIFO cache for sampling-coordinate grids.

    A preprocessing pipeline resizes (or warps) a stream of same-shaped
    frames, recomputing identical target-coordinate meshes per frame;
    those meshes depend only on the geometry, so they are cached keyed
    by it.  Entries are marked read-only — downstream math never writes
    into them.  The bound keeps a long multi-resolution sweep from
    pinning every geometry it ever saw.
    """

    def __init__(self, maxsize: int = 8):
        self.maxsize = maxsize
        self._entries: dict[tuple, tuple[Array, ...]] = {}

    def get(self, key: tuple, build) -> tuple[Array, ...]:
        grids = self._entries.get(key)
        if grids is None:
            grids = build()
            for g in grids:
                g.setflags(write=False)
            if len(self._entries) >= self.maxsize:
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = grids
        return grids


_RESIZE_GRIDS = _GridCache()
_WARP_COORDS = _GridCache()


def _as_float(image: Array) -> Array:
    if image.dtype == np.uint8:
        return image.astype(np.float32)
    return image


def _bilinear_gather(image: Array, xs: Array, ys: Array) -> Array:
    """Sample ``image`` at float coordinates (vectorized bilinear).

    ``xs``/``ys`` are same-shaped float arrays of source coordinates;
    out-of-bounds samples clamp to the edge.
    """
    h, w = image.shape[:2]
    x0 = np.clip(np.floor(xs).astype(np.int64), 0, w - 1)
    y0 = np.clip(np.floor(ys).astype(np.int64), 0, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    y1 = np.minimum(y0 + 1, h - 1)
    fx = np.clip(xs - x0, 0.0, 1.0)[..., None]
    fy = np.clip(ys - y0, 0.0, 1.0)[..., None]

    img = _as_float(image)
    top = img[y0, x0] * (1 - fx) + img[y0, x1] * fx
    bottom = img[y1, x0] * (1 - fx) + img[y1, x1] * fx
    return top * (1 - fy) + bottom * fy


def resize_bilinear(image: Array, out_h: int, out_w: int) -> Array:
    """Bilinear resize of ``(H, W, C)`` to ``(out_h, out_w, C)`` float32.

    Uses the half-pixel-centers convention (matches torchvision's
    ``antialias=False`` bilinear for upscaling).
    """
    if image.ndim != 3:
        raise ValueError(f"expected (H, W, C), got shape {image.shape}")
    if min(out_h, out_w) < 1:
        raise ValueError("output size must be positive")
    h, w = image.shape[:2]

    def build() -> tuple[Array, Array]:
        scale_y, scale_x = h / out_h, w / out_w
        ys = (np.arange(out_h, dtype=np.float32) + 0.5) * scale_y - 0.5
        xs = (np.arange(out_w, dtype=np.float32) + 0.5) * scale_x - 0.5
        return tuple(np.meshgrid(xs, ys))

    grid_x, grid_y = _RESIZE_GRIDS.get((h, w, out_h, out_w), build)
    return _bilinear_gather(image, grid_x, grid_y).astype(np.float32)


def center_crop(image: Array, crop_h: int, crop_w: int) -> Array:
    """Center crop; the image must be at least the crop size."""
    h, w = image.shape[:2]
    if crop_h > h or crop_w > w:
        raise ValueError(
            f"crop {crop_h}x{crop_w} exceeds image {h}x{w}")
    top = (h - crop_h) // 2
    left = (w - crop_w) // 2
    return image[top:top + crop_h, left:left + crop_w]


def normalize(image: Array, mean: Array, std: Array) -> Array:
    """Scale uint8 [0,255] to [0,1] then per-channel standardize."""
    mean = np.asarray(mean, dtype=np.float32)
    std = np.asarray(std, dtype=np.float32)
    if np.any(std <= 0):
        raise ValueError("std must be positive")
    c = image.shape[-1]
    if mean.shape != (c,) or std.shape != (c,):
        raise ValueError(
            f"mean/std must have shape ({c},), got {mean.shape}/{std.shape}")
    scaled = _as_float(image) / 255.0
    return ((scaled - mean) / std).astype(np.float32)


def to_chw(image: Array) -> Array:
    """``(H, W, C)`` → ``(C, H, W)`` (the model input layout)."""
    if image.ndim != 3:
        raise ValueError(f"expected (H, W, C), got shape {image.shape}")
    return np.ascontiguousarray(image.transpose(2, 0, 1))


# ----------------------------------------------------------------------
# Perspective transform (the CRSA dataset-specific op)
# ----------------------------------------------------------------------

def solve_homography(src: Array, dst: Array) -> Array:
    """3×3 homography mapping 4 source points to 4 destination points.

    Direct linear transform: stack the 8 linear constraints with h33 = 1
    and solve the 8×8 system.  Raises for degenerate (collinear) inputs.
    """
    src = np.asarray(src, dtype=np.float64)
    dst = np.asarray(dst, dtype=np.float64)
    if src.shape != (4, 2) or dst.shape != (4, 2):
        raise ValueError("need exactly four (x, y) point pairs")
    a = np.zeros((8, 8))
    b = np.zeros(8)
    for i, ((x, y), (u, v)) in enumerate(zip(src, dst)):
        a[2 * i] = [x, y, 1, 0, 0, 0, -u * x, -u * y]
        b[2 * i] = u
        a[2 * i + 1] = [0, 0, 0, x, y, 1, -v * x, -v * y]
        b[2 * i + 1] = v
    try:
        h = np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise ValueError(f"degenerate point configuration: {exc}") from exc
    return np.append(h, 1.0).reshape(3, 3)


def warp_perspective(image: Array, homography: Array,
                     out_h: int, out_w: int) -> Array:
    """Warp ``image`` through ``homography`` (dst→src inverse mapping).

    ``homography`` maps *source* to *destination* coordinates (the
    :func:`solve_homography` convention); sampling inverts it.
    """
    homography = np.asarray(homography, dtype=np.float64)
    if homography.shape != (3, 3):
        raise ValueError("homography must be 3x3")
    if min(out_h, out_w) < 1:
        raise ValueError("output size must be positive")
    inv = np.linalg.inv(homography)

    def build() -> tuple[Array]:
        xs = np.arange(out_w, dtype=np.float64)
        ys = np.arange(out_h, dtype=np.float64)
        grid_x, grid_y = np.meshgrid(xs, ys)
        ones = np.ones_like(grid_x)
        return (np.stack([grid_x, grid_y, ones], axis=0).reshape(3, -1),)

    (coords,) = _WARP_COORDS.get((out_h, out_w), build)
    mapped = inv @ coords
    denom = mapped[2]
    with np.errstate(divide="ignore", invalid="ignore"):
        src_x = (mapped[0] / denom).reshape(out_h, out_w)
        src_y = (mapped[1] / denom).reshape(out_h, out_w)
    src_x = np.nan_to_num(src_x, nan=-1.0)
    src_y = np.nan_to_num(src_y, nan=-1.0)
    out = _bilinear_gather(image, src_x, src_y)
    # Zero out samples falling outside the source frame.
    h, w = image.shape[:2]
    inside = ((src_x >= -0.5) & (src_x <= w - 0.5)
              & (src_y >= -0.5) & (src_y <= h - 0.5))
    out *= inside[..., None]
    return out.astype(np.float32)


def ground_plane_homography(width: int, height: int,
                            horizon_fraction: float = 0.35,
                            top_squeeze: float = 0.5) -> Array:
    """The rectifying homography for a forward-tilted vehicle camera.

    Maps the trapezoidal ground region (rows converging toward the
    vanishing point, as produced by
    :func:`repro.data.synthetic.synth_crsa_frame`) to a rectangle —
    the CRSA dataset-specific correction.  ``top_squeeze`` is the
    fraction of the frame width the ground plane spans at the horizon
    row (``horizon_fraction`` from the top).
    """
    if not 0.0 < horizon_fraction < 1.0:
        raise ValueError("horizon_fraction must be in (0, 1)")
    if not 0.0 < top_squeeze <= 1.0:
        raise ValueError("top_squeeze must be in (0, 1]")
    cx = width / 2.0
    y_top = height * horizon_fraction
    half_top = width * top_squeeze / 2.0
    src = np.array([
        [cx - half_top, y_top], [cx + half_top, y_top],
        [width - 1.0, height - 1.0], [0.0, height - 1.0],
    ])
    dst = np.array([
        [0.0, 0.0], [width - 1.0, 0.0],
        [width - 1.0, height - 1.0], [0.0, height - 1.0],
    ])
    return solve_homography(src, dst)
