"""Per-platform preprocessing cost parameters.

The Fig. 7 comparison is driven by four rates per platform — CPU decode,
CPU transform, GPU decode, GPU transform — plus fixed per-image/per-batch
overheads.  The values below are calibrated so the reproduced figure
matches the paper's *shape and magnitudes*: on the A100, DALI peaks around
12k images/s on small-image datasets (the Fig. 7a throughput axis) while
the PyTorch CPU baseline sits in the hundreds, and OpenCV-on-CRSA lands in
the hundreds of milliseconds per frame; V100 lacks the A100's hardware
JPEG engine (≈4× slower GPU decode); the Jetson's ARM cores and small GPU
scale everything down further.

Absolute bar heights for Fig. 7 are not printed in the paper, so these are
order-of-magnitude calibrations; EXPERIMENTS.md records what the model
produces next to what the figure shows.
"""

from __future__ import annotations

import dataclasses

from repro.hardware.platform import PlatformSpec


@dataclasses.dataclass(frozen=True)
class PlatformCostParams:
    """Preprocessing service rates for one platform."""

    platform_name: str
    #: CPU JPEG-equivalent decode rate, bytes/s per core.
    cpu_decode_bps: float
    #: CPU transform rate (resize/normalize/warp), pixels/s per core.
    cpu_transform_pps: float
    #: GPU decode rate (nvJPEG-style), bytes/s.
    gpu_decode_bps: float
    #: GPU transform rate, pixels/s.
    gpu_transform_pps: float
    #: Fixed per-image dispatch cost of CPU frameworks, seconds.
    cpu_per_image_overhead_s: float
    #: Fixed per-batch cost of the GPU pipeline (launch + schedule), seconds.
    gpu_per_batch_overhead_s: float

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, float) and value <= 0:
                raise ValueError(f"{field.name} must be positive")


COST_PARAMS: dict[str, PlatformCostParams] = {
    "a100": PlatformCostParams(
        platform_name="A100",
        cpu_decode_bps=200e6,       # one Xeon core, libjpeg-turbo class
        cpu_transform_pps=60e6,
        gpu_decode_bps=8.0e9,       # A100 hardware JPEG engine
        gpu_transform_pps=2.4e9,
        cpu_per_image_overhead_s=0.3e-3,
        gpu_per_batch_overhead_s=4.0e-3,
    ),
    "v100": PlatformCostParams(
        platform_name="V100",
        cpu_decode_bps=180e6,
        cpu_transform_pps=55e6,
        gpu_decode_bps=0.5e9,       # CUDA-kernel JPEG decode only
        gpu_transform_pps=0.3e9,
        cpu_per_image_overhead_s=0.3e-3,
        gpu_per_batch_overhead_s=8.0e-3,
    ),
    "jetson": PlatformCostParams(
        platform_name="Jetson",
        cpu_decode_bps=80e6,        # ARM cores
        cpu_transform_pps=25e6,
        gpu_decode_bps=0.15e9,
        gpu_transform_pps=0.07e9,
        cpu_per_image_overhead_s=0.6e-3,
        gpu_per_batch_overhead_s=6.0e-3,
    ),
}


def cost_params_for(platform: "PlatformSpec | str") -> PlatformCostParams:
    """Cost parameters for a platform (by spec or name)."""
    name = platform if isinstance(platform, str) else platform.name
    try:
        return COST_PARAMS[name.lower()]
    except KeyError:
        raise KeyError(
            f"no preprocessing cost parameters for platform {name!r}; "
            f"available: {sorted(COST_PARAMS)}") from None
