"""Preprocessing framework models: the five Fig. 7 configurations.

"Preprocessing is handled via Torchvision, OpenCV, GPU-accelerated
frameworks such as NVIDIA DALI, or custom Python scripts" (Section 3).
Fig. 7 compares: ``DALI 224@BS64``, ``DALI 96@BS64``, ``DALI 32@BS64``,
``PyTorch@BS1``, and ``CV2@BS1``.

Each framework combines a *functional* path (:meth:`run` executes the real
ops from :mod:`repro.preprocessing.ops`) with a *performance* path
(:meth:`estimate` prices the same work on a target platform using
:mod:`repro.preprocessing.cost`).  The cost decomposition is the paper's:
per-image time = decode (∝ encoded bytes, format-weighted) + transform
(∝ input pixels read + output pixels written) + fixed overhead, with the
CRSA perspective warp adding a CPU-only surcharge.
"""

from __future__ import annotations

import abc
import dataclasses
import enum

import numpy as np

from repro.data.datasets import DatasetSpec, ImageFormat
from repro.hardware.platform import PlatformSpec
from repro.preprocessing.cost import cost_params_for
from repro.preprocessing.pipelines import (
    PreprocessPipeline,
    crsa_pipeline,
    model_pipeline,
)

#: Output pixels are written once as float32 plus read once by the
#: normalize stage — weight 2 relative to one input-pixel read.
_OUT_PIXEL_WEIGHT = 2.0
#: Perspective warp: inverse-map + bilinear gather per input pixel is
#: ~2.5× the cost of a plain resize read.
_WARP_PIXEL_WEIGHT = 2.5


class FrameworkKind(str, enum.Enum):
    """Which processor a preprocessing framework runs on."""

    CPU = "cpu"
    GPU = "gpu"


@dataclasses.dataclass(frozen=True)
class PreprocessEstimate:
    """Performance estimate for one (framework, dataset, platform) cell."""

    framework: str
    dataset: str
    platform: str
    batch_size: int
    output_size: int
    per_image_seconds: float
    #: Device memory resident while the instance serves (buffers, queues).
    memory_bytes: float

    @property
    def batch_latency_seconds(self) -> float:
        """Latency of one batch request (the Fig. 7 upper panels)."""
        return self.per_image_seconds * self.batch_size

    @property
    def throughput(self) -> float:
        """Images/second (the Fig. 7 lower panels)."""
        return 1.0 / self.per_image_seconds


class PreprocessFramework(abc.ABC):
    """A preprocessing engine instance configuration."""

    name: str
    kind: FrameworkKind
    default_batch_size: int

    def __init__(self, output_size: int = 224):
        if output_size < 1:
            raise ValueError("output_size must be positive")
        self.output_size = output_size

    # -- functional path ------------------------------------------------
    def pipeline_for(self, dataset: DatasetSpec) -> PreprocessPipeline:
        """The executable pipeline this framework runs for a dataset."""
        if dataset.dataset_specific_preprocessing and self.supports_warp:
            return crsa_pipeline(self.output_size)
        return model_pipeline(self.output_size)

    def run(self, images: list[np.ndarray],
            dataset: DatasetSpec) -> np.ndarray:
        """Actually preprocess a batch: list of (H, W, C) → (N, C, s, s)."""
        if not images:
            raise ValueError("empty batch")
        pipeline = self.pipeline_for(dataset)
        return np.stack([pipeline(img) for img in images])

    @property
    def supports_warp(self) -> bool:
        """Whether the dataset-specific perspective stage is available.

        GPU acceleration of the CPU-bound CRSA path is the paper's listed
        future work, so only the CPU frameworks run it today.
        """
        return self.kind is FrameworkKind.CPU

    # -- performance path ------------------------------------------------
    @abc.abstractmethod
    def estimate(self, dataset: DatasetSpec, platform: PlatformSpec,
                 batch_size: int | None = None) -> PreprocessEstimate:
        """Price a batch on a platform."""

    def _mean_input_stats(self, dataset: DatasetSpec) -> tuple[float, float]:
        """(mean input pixels, mean encoded bytes) per image."""
        pixels = dataset.size_distribution.mean_pixels()
        return pixels, pixels * dataset.image_format.bytes_per_pixel

    def _decode_work_bytes(self, dataset: DatasetSpec) -> float:
        """Format-weighted decode work in JPEG-equivalent bytes."""
        _, enc = self._mean_input_stats(dataset)
        return enc * dataset.image_format.decode_cost_per_byte

    def _transform_pixels(self, dataset: DatasetSpec,
                          warped: bool) -> float:
        """Pixel-work units for the transform stage."""
        in_px, _ = self._mean_input_stats(dataset)
        work = in_px + _OUT_PIXEL_WEIGHT * self.output_size ** 2
        if warped and dataset.dataset_specific_preprocessing:
            work += _WARP_PIXEL_WEIGHT * in_px
        return work


class PyTorchCPU(PreprocessFramework):
    """Torchvision-style CPU baseline, batch size 1.

    The paper: "PyTorch serves as the CPU-based baseline, exhibiting
    varying performance across datasets—likely attributable to differences
    in image encoding formats (e.g., TIFF vs. JPEG)."  The variance comes
    through :meth:`_decode_work_bytes`: TIFF images carry ~5× the encoded
    bytes at ~1/4 the per-byte decode cost, so the two formats price
    differently per pixel.
    """

    name = "PyTorch"
    kind = FrameworkKind.CPU
    default_batch_size = 1

    #: The torchvision baseline does not run the perspective stage (plain
    #: model pipeline); OpenCV is the CPU framework used for CRSA.
    supports_warp = False

    def estimate(self, dataset: DatasetSpec, platform: PlatformSpec,
                 batch_size: int | None = None) -> PreprocessEstimate:
        batch = self.default_batch_size if batch_size is None else batch_size
        if batch < 1:
            raise ValueError("batch_size must be >= 1")
        params = cost_params_for(platform)
        per_image = (
            params.cpu_per_image_overhead_s
            + self._decode_work_bytes(dataset) / params.cpu_decode_bps
            + self._transform_pixels(dataset, warped=False)
            / params.cpu_transform_pps
        )
        in_px, enc = self._mean_input_stats(dataset)
        memory = batch * (enc + 3 * in_px  # decoded uint8
                          + 4 * 3 * self.output_size ** 2)  # float32 out
        return PreprocessEstimate(self.name, dataset.name, platform.name,
                                  batch, self.output_size, per_image,
                                  memory)


class OpenCVCPU(PreprocessFramework):
    """OpenCV CPU pipeline, batch size 1 — runs the CRSA perspective warp.

    "OpenCV, employed specifically for the CRSA dataset with heavy
    CPU-bound operations, demonstrates poor performance in real-time
    scenarios and is therefore excluded from further evaluation."
    """

    name = "CV2"
    kind = FrameworkKind.CPU
    default_batch_size = 1

    def estimate(self, dataset: DatasetSpec, platform: PlatformSpec,
                 batch_size: int | None = None) -> PreprocessEstimate:
        batch = self.default_batch_size if batch_size is None else batch_size
        if batch < 1:
            raise ValueError("batch_size must be >= 1")
        params = cost_params_for(platform)
        per_image = (
            params.cpu_per_image_overhead_s
            + self._decode_work_bytes(dataset) / params.cpu_decode_bps
            + self._transform_pixels(dataset, warped=True)
            / params.cpu_transform_pps
        )
        in_px, enc = self._mean_input_stats(dataset)
        # The warp materializes a float32 copy of the full frame.
        warp_copy = (12 * in_px if dataset.dataset_specific_preprocessing
                     else 0)
        memory = batch * (enc + 3 * in_px + warp_copy
                          + 4 * 3 * self.output_size ** 2)
        return PreprocessEstimate(self.name, dataset.name, platform.name,
                                  batch, self.output_size, per_image,
                                  memory)


class DALI(PreprocessFramework):
    """DALI-style GPU-accelerated pipeline, batch size 64.

    Fig. 7's "numerical indicators 224, 96, and 32 represent output
    resolutions ... Since image loading and decoding costs remain
    constant, smaller output images (e.g., DALI 32) achieve faster
    preprocessing speeds."
    """

    name = "DALI"
    kind = FrameworkKind.GPU
    default_batch_size = 64

    #: Pipeline queue depth: buffers for in-flight batches (DALI's
    #: ``prefetch_queue_depth`` default of 2, doubled for the separated
    #: decode/transform stages).
    QUEUE_DEPTH = 4

    def __init__(self, output_size: int = 224):
        super().__init__(output_size)
        self.name = f"DALI {output_size}"

    def estimate(self, dataset: DatasetSpec, platform: PlatformSpec,
                 batch_size: int | None = None) -> PreprocessEstimate:
        batch = self.default_batch_size if batch_size is None else batch_size
        if batch < 1:
            raise ValueError("batch_size must be >= 1")
        params = cost_params_for(platform)
        per_image = (
            params.gpu_per_batch_overhead_s / batch
            + self._decode_work_bytes(dataset) / params.gpu_decode_bps
            + self._transform_pixels(dataset, warped=False)
            / params.gpu_transform_pps
        )
        in_px, enc = self._mean_input_stats(dataset)
        per_image_buffers = enc + 3 * in_px + 4 * 3 * self.output_size ** 2
        memory = (self.QUEUE_DEPTH * batch * per_image_buffers
                  + 256e6)  # nvJPEG + pipeline workspaces
        return PreprocessEstimate(self.name, dataset.name, platform.name,
                                  batch, self.output_size, per_image,
                                  memory)


class DALIWarp(DALI):
    """DALI pipeline extended with a GPU perspective warp.

    The paper's stated future work: "GPU-accelerated optimization for
    CPU-bound frameworks remains planned as future work."  This framework
    implements it: the CRSA perspective correction runs as a GPU kernel
    (inverse map + bilinear gather — embarrassingly parallel per output
    pixel), removing the CPU bottleneck that made CV2 "unsuitable for
    real-time scenarios".  The ablation bench compares the two.
    """

    supports_warp = True

    def __init__(self, output_size: int = 224):
        super().__init__(output_size)
        self.name = f"DALI+warp {output_size}"

    def estimate(self, dataset: DatasetSpec, platform: PlatformSpec,
                 batch_size: int | None = None) -> PreprocessEstimate:
        base = super().estimate(dataset, platform, batch_size)
        if not dataset.dataset_specific_preprocessing:
            return base
        params = cost_params_for(platform)
        in_px, _ = self._mean_input_stats(dataset)
        warp_seconds = _WARP_PIXEL_WEIGHT * in_px / params.gpu_transform_pps
        per_image = base.per_image_seconds + warp_seconds
        # The warp double-buffers the full frame on device.
        extra = self.QUEUE_DEPTH * base.batch_size * 3 * in_px
        return PreprocessEstimate(
            self.name, base.dataset, base.platform, base.batch_size,
            base.output_size, per_image, base.memory_bytes + extra)


def framework_catalog(model_input_size: int = 224,
                      ) -> list[PreprocessFramework]:
    """The five Fig. 7 framework configurations, in legend order.

    ``model_input_size`` sets the output size of the CPU baselines (they
    always produce model input; DALI is swept over 224/96/32).
    """
    return [
        DALI(224),
        DALI(96),
        DALI(32),
        PyTorchCPU(model_input_size),
        OpenCVCPU(model_input_size),
    ]
