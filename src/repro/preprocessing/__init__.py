"""Preprocessing substrate: real image ops + framework cost models.

Section 3.2: "Models require preprocessing consistent with their
training-time distribution ... For vision models, such preprocessing often
includes image decoding, resizing, cropping, and pixel-wise normalization"
and "certain data sources also require task-specific preprocessing", e.g.
the CRSA camera stream's perspective transformation.

Two layers:

* :mod:`repro.preprocessing.ops` — functional, fully vectorized NumPy
  implementations of every op (bilinear resize, center crop, normalize,
  perspective warp via a real homography solve);
* :mod:`repro.preprocessing.frameworks` — the performance models for the
  frameworks the paper compares in Fig. 7 (PyTorch CPU baseline, OpenCV
  CPU for CRSA, DALI-style GPU acceleration at output sizes 224/96/32).
"""

from repro.preprocessing.ops import (
    resize_bilinear,
    center_crop,
    normalize,
    to_chw,
    solve_homography,
    warp_perspective,
)
from repro.preprocessing.pipelines import (
    PreprocessPipeline,
    model_pipeline,
    crsa_pipeline,
    IMAGENET_MEAN,
    IMAGENET_STD,
)
from repro.preprocessing.cost import (
    PlatformCostParams,
    COST_PARAMS,
    cost_params_for,
)
from repro.preprocessing.frameworks import (
    FrameworkKind,
    PreprocessFramework,
    PyTorchCPU,
    OpenCVCPU,
    DALI,
    DALIWarp,
    framework_catalog,
    PreprocessEstimate,
)

__all__ = [
    "resize_bilinear",
    "center_crop",
    "normalize",
    "to_chw",
    "solve_homography",
    "warp_perspective",
    "PreprocessPipeline",
    "model_pipeline",
    "crsa_pipeline",
    "IMAGENET_MEAN",
    "IMAGENET_STD",
    "PlatformCostParams",
    "COST_PARAMS",
    "cost_params_for",
    "FrameworkKind",
    "PreprocessFramework",
    "PyTorchCPU",
    "OpenCVCPU",
    "DALI",
    "DALIWarp",
    "framework_catalog",
    "PreprocessEstimate",
]
