"""Latency and throughput accounting for serving runs."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.serving.request import Response


@dataclasses.dataclass(frozen=True)
class LatencyStats:
    """Summary of a set of completed requests."""

    count: int
    images: int
    mean_latency: float
    p50_latency: float
    p95_latency: float
    p99_latency: float
    max_latency: float
    duration: float
    throughput_rps: float      # requests / second
    throughput_ips: float      # images / second
    mean_queue_delay: float

    @classmethod
    def empty(cls) -> "LatencyStats":
        return cls(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def summarize_responses(responses: list[Response],
                        warmup_fraction: float = 0.0) -> LatencyStats:
    """Aggregate responses into :class:`LatencyStats`.

    ``warmup_fraction`` drops the earliest completions (cold queues bias
    throughput measurements; standard benchmarking practice).  The
    measurement window then starts at the warmup *boundary* — the last
    dropped completion — not at the kept requests' earliest arrival:
    kept requests typically arrived before the cut, and anchoring the
    window on those arrivals stretches the duration and deflates the
    very throughput the warmup cut was meant to stabilize.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    if not responses:
        return LatencyStats.empty()
    ordered = sorted(responses, key=lambda r: r.completion_time)
    skip = int(len(ordered) * warmup_fraction)
    kept = ordered[skip:]
    if not kept:
        return LatencyStats.empty()

    latencies = np.array([r.latency for r in kept])
    queue_delays = np.array([r.queue_delay for r in kept])
    images = sum(r.request.num_images for r in kept)
    if skip:
        start = ordered[skip - 1].completion_time
    else:
        start = min(r.request.arrival_time for r in kept)
    end = max(r.completion_time for r in kept)
    duration = max(end - start, 1e-12)
    return LatencyStats(
        count=len(kept),
        images=images,
        mean_latency=float(latencies.mean()),
        p50_latency=float(np.percentile(latencies, 50)),
        p95_latency=float(np.percentile(latencies, 95)),
        p99_latency=float(np.percentile(latencies, 99)),
        max_latency=float(latencies.max()),
        duration=duration,
        throughput_rps=len(kept) / duration,
        throughput_ips=images / duration,
        mean_queue_delay=float(queue_delays.mean()),
    )
