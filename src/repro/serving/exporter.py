"""Prometheus-style metrics export for serving runs.

Triton exposes a ``/metrics`` endpoint; operations teams alert on it.
:func:`export_metrics` renders the same class of counters/gauges from a
:class:`~repro.serving.server.TritonLikeServer` in the Prometheus text
exposition format (parse-able by the real toolchain), and
:func:`parse_metrics` reads it back — used by tests and the monitoring
example.  :func:`export_registry` renders the live
:class:`~repro.serving.observability.MetricsRegistry` the serving layer
emits into — including histogram bucket series — and
``export_metrics`` appends it, so one scrape carries both the summary
and the live-instrumented views.
"""

from __future__ import annotations

from repro.serving.metrics import summarize_responses
from repro.serving.observability import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.serving.server import TritonLikeServer


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format spec.

    Backslash, double quote, and newline are the three characters the
    format requires escaping inside quoted label values.
    """
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """Escape HELP text (backslash and newline only; quotes are fine)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _line(name: str, labels: dict[str, str], value: float) -> str:
    if labels:
        rendered = ",".join(f'{k}="{_escape_label(v)}"'
                            for k, v in sorted(labels.items()))
        return f"{name}{{{rendered}}} {value:g}"
    return f"{name} {value:g}"


def _bound_label(bound: float) -> str:
    return "+Inf" if bound == float("inf") else f"{bound:g}"


def export_registry(registry: MetricsRegistry,
                    prefix: str = "harvest") -> str:
    """Render a :class:`MetricsRegistry` as exposition text.

    Counters and gauges render one sample per label set; histograms
    render the full Prometheus triplet — cumulative ``_bucket{le=...}``
    series ending in ``+Inf``, ``_sum``, and ``_count``.
    """
    lines: list[str] = []
    for metric in registry.collect():
        name = f"{prefix}_{metric.name}"
        if metric.help:
            lines.append(f"# HELP {name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for key, value in metric.items():
                lines.append(_line(name, dict(key), value))
        elif isinstance(metric, Histogram):
            for key, series in metric.items():
                labels = dict(key)
                exemplars = series.exemplars
                for index, (bound, cumulative) in enumerate(
                        metric.cumulative_buckets(**labels)):
                    line = _line(
                        f"{name}_bucket",
                        {**labels, "le": _bound_label(bound)},
                        cumulative)
                    if exemplars is not None:
                        exemplar = exemplars.get(index)
                        if exemplar is not None:
                            value, trace_id, stamp = exemplar
                            line += (
                                f' # {{trace_id='
                                f'"{_escape_label(trace_id)}"}} '
                                f"{value:g} {stamp:g}")
                    lines.append(line)
                lines.append(_line(f"{name}_sum", labels, series.sum))
                lines.append(_line(f"{name}_count", labels,
                                   series.count))
    return "\n".join(lines) + "\n" if lines else ""


def export_metrics(server: TritonLikeServer,
                   prefix: str = "harvest") -> str:
    """Render the server's state as Prometheus exposition text."""
    lines: list[str] = [
        f"# HELP {prefix}_request_total Completed requests by status.",
        f"# TYPE {prefix}_request_total counter",
    ]
    by_status: dict[str, int] = {}
    for response in server.responses:
        by_status[response.status] = by_status.get(response.status, 0) + 1
    for status, count in sorted(by_status.items()):
        lines.append(_line(f"{prefix}_request_total",
                           {"status": status}, count))

    lines += [
        f"# HELP {prefix}_queue_images Images currently queued per model.",
        f"# TYPE {prefix}_queue_images gauge",
    ]
    for model in server.model_names():
        lines.append(_line(f"{prefix}_queue_images", {"model": model},
                           server.queued_images(model)))

    lines += [
        f"# HELP {prefix}_instance_busy_seconds_total Busy time per "
        "instance.",
        f"# TYPE {prefix}_instance_busy_seconds_total counter",
        f"# HELP {prefix}_instance_batches_total Batches served per "
        "instance.",
        f"# TYPE {prefix}_instance_batches_total counter",
        f"# HELP {prefix}_instance_failures_total Injected/observed "
        "execution failures per instance.",
        f"# TYPE {prefix}_instance_failures_total counter",
    ]
    for model in server.model_names():
        for index, stats in enumerate(server.instance_stats(model)):
            labels = {"model": model, "instance": str(index)}
            lines.append(_line(f"{prefix}_instance_busy_seconds_total",
                               labels, stats.busy_seconds))
            lines.append(_line(f"{prefix}_instance_batches_total",
                               labels, stats.batches_served))
            lines.append(_line(f"{prefix}_instance_failures_total",
                               labels, stats.failures))

    ok = [r for r in server.responses if r.ok]
    if ok:
        summary = summarize_responses(ok)
        lines += [
            f"# HELP {prefix}_latency_seconds Request latency quantiles.",
            f"# TYPE {prefix}_latency_seconds gauge",
            _line(f"{prefix}_latency_seconds", {"quantile": "0.5"},
                  summary.p50_latency),
            _line(f"{prefix}_latency_seconds", {"quantile": "0.95"},
                  summary.p95_latency),
            _line(f"{prefix}_latency_seconds", {"quantile": "0.99"},
                  summary.p99_latency),
            f"# HELP {prefix}_throughput_images Images per second over "
            "the run.",
            f"# TYPE {prefix}_throughput_images gauge",
            _line(f"{prefix}_throughput_images", {},
                  summary.throughput_ips),
        ]
    text = "\n".join(lines) + "\n"
    return text + export_registry(server.metrics, prefix=prefix)


def _parse_labels(line: str, i: int,
                  ) -> tuple[list[tuple[str, str]], int]:
    """Parse a ``key="value",...}`` block starting just past its ``{``.

    Returns ``(labels, index just past the closing brace)``, honoring
    escapes inside quoted values: a naive split on ``,`` or strip of
    ``"`` corrupts any value containing those characters, so this
    walker undoes exactly the escapes :func:`_escape_label` writes
    (``\\\\``, ``\\"``, ``\\n``).  Scanning for the *unquoted* closing
    brace is what lets a value legally contain ``}`` or the exemplar
    marker text itself.
    """
    labels: list[tuple[str, str]] = []
    if i < len(line) and line[i] == "}":
        return labels, i + 1
    while True:
        eq = line.index("=", i)
        key = line[i:eq]
        if line[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {line!r}")
        i = eq + 2
        value: list[str] = []
        while True:
            ch = line[i]
            if ch == "\\":
                nxt = line[i + 1]
                value.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
                i += 2
            elif ch == '"':
                i += 1
                break
            else:
                value.append(ch)
                i += 1
        labels.append((key, "".join(value)))
        if i >= len(line):
            raise ValueError(f"unterminated label block in {line!r}")
        if line[i] == "}":
            return labels, i + 1
        if line[i] != ",":
            raise ValueError(f"malformed label block in {line!r}")
        i += 1


def _parse_sample(line: str) -> tuple[
        str, tuple[tuple[str, str], ...], float,
        tuple[tuple[tuple[str, str], ...], float, float | None] | None]:
    """Split one sample line into (name, labels, value, exemplar).

    Handles the optional OpenMetrics exemplar suffix
    ``# {trace_id="..."} value timestamp`` — the reason the value can
    no longer be read with a right-partition on the last space.
    ``exemplar`` is ``(labels, value, timestamp_or_None)`` or ``None``.
    """
    brace = line.find("{")
    space = line.find(" ")
    if brace != -1 and (space == -1 or brace < space):
        name = line[:brace]
        try:
            labels, i = _parse_labels(line, brace + 1)
        except (IndexError, KeyError, ValueError) as exc:
            raise ValueError(
                f"malformed label block in {line!r}") from exc
        rest = line[i:]
    elif space != -1:
        name, labels, rest = line[:space], [], line[space:]
    else:
        raise ValueError(f"bad metric line {line!r}")
    fields = rest.strip().split(None, 1)
    if not fields:
        raise ValueError(f"bad metric line {line!r}")
    try:
        value = float(fields[0])
    except ValueError as exc:
        raise ValueError(f"bad metric line {line!r}") from exc
    exemplar = None
    if len(fields) > 1:
        suffix = fields[1].strip()
        if not suffix.startswith("#"):
            raise ValueError(f"bad metric line {line!r}")
        ex_brace = suffix.find("{")
        if ex_brace == -1 or suffix[1:ex_brace].strip():
            raise ValueError(f"malformed exemplar in {line!r}")
        try:
            ex_labels, j = _parse_labels(suffix, ex_brace + 1)
        except (IndexError, KeyError, ValueError) as exc:
            raise ValueError(
                f"malformed exemplar in {line!r}") from exc
        ex_fields = suffix[j:].split()
        if not 1 <= len(ex_fields) <= 2:
            raise ValueError(f"malformed exemplar in {line!r}")
        try:
            ex_value = float(ex_fields[0])
            ex_stamp = (float(ex_fields[1])
                        if len(ex_fields) == 2 else None)
        except ValueError as exc:
            raise ValueError(
                f"malformed exemplar in {line!r}") from exc
        exemplar = (tuple(sorted(ex_labels)), ex_value, ex_stamp)
    return name, tuple(sorted(labels)), value, exemplar


def parse_metrics(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]],
                                     float]:
    """Parse exposition text back to {(metric, labels): value}.

    Round-trips :func:`export_registry` output exactly, including label
    values containing quotes, backslashes, commas, braces, or newlines;
    ignores comments and OpenMetrics exemplar suffixes (see
    :func:`parse_exemplars` for those).
    """
    out: dict = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name, labels, value, _ = _parse_sample(line)
        out[(name, labels)] = value
    return out


def parse_exemplars(text: str) -> dict[
        tuple[str, tuple[tuple[str, str], ...]],
        dict]:
    """Extract OpenMetrics exemplars from exposition text.

    Returns ``{(metric, labels): {"labels": {...}, "value": v,
    "timestamp": t}}`` for every sample line carrying a
    ``# {trace_id="..."} value timestamp`` suffix — the read side of
    the exemplars :func:`export_registry` renders for histograms with
    :meth:`~repro.serving.observability.Histogram.enable_exemplars`.
    """
    out: dict = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name, labels, _, exemplar = _parse_sample(line)
        if exemplar is None:
            continue
        ex_labels, ex_value, ex_stamp = exemplar
        out[(name, labels)] = {
            "labels": dict(ex_labels),
            "value": ex_value,
            "timestamp": ex_stamp,
        }
    return out
