"""Arrival-trace generation and replay.

Farm inference demand is not Poisson-at-a-constant-rate: scouting flights
land batches of imagery mid-morning, ground vehicles stream during field
hours, and nights are quiet.  This module generates such traces
(deterministic, seeded) and replays them into a server or load balancer:

* :func:`diurnal_trace` — a field-hours demand curve (a half-sine arc
  over daylight) sampled as a non-homogeneous Poisson process via
  thinning;
* :func:`burst_trace` — idle background load with survey-upload bursts
  (the offline scenario's arrival pattern seen from the cluster);
* :func:`step_trace` — a flat base rate with one sustained step to a
  higher rate (the canonical autoscaler test input: the controller must
  scale out under the step and drain back after it);
* :class:`TraceReplayer` — schedules a trace against any ``submit``-able
  target on the simulator clock.

Trace generation is version 2: thinning draws its exponential gaps and
acceptance uniforms in NumPy blocks (a million-arrival trace generates
in well under a second) instead of two scalar draws per candidate.  The
sampled distribution is identical but the per-seed realization differs
from v1, so generated trace names carry a ``/v2`` suffix.
"""

from __future__ import annotations

import dataclasses
import itertools
import math

import numpy as np

from repro.serving.request import Request
from repro.serving.tracectx import TraceContext


@dataclasses.dataclass(frozen=True)
class ArrivalTrace:
    """A sequence of request arrival times (seconds from start)."""

    name: str
    arrival_times: tuple[float, ...]
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(
                f"trace duration must be positive, got {self.duration}"
                " (mean_rate and rate_histogram divide by it)")
        times = self.arrival_times
        if times:
            arr = np.asarray(times, dtype=float)
            if arr.size > 1 and bool(np.any(np.diff(arr) < 0)):
                raise ValueError("arrival times must be nondecreasing")
            if float(arr[-1]) > self.duration:
                raise ValueError(
                    "arrivals extend past the trace duration")

    def __len__(self) -> int:
        return len(self.arrival_times)

    @property
    def mean_rate(self) -> float:
        """Average arrivals per second over the trace."""
        return len(self.arrival_times) / self.duration

    def rate_histogram(self, bins: int = 24) -> list[float]:
        """Requests/second per time bin (for reports and tests)."""
        if bins < 1:
            raise ValueError("bins must be >= 1")
        edges = np.linspace(0.0, self.duration, bins + 1)
        counts, _ = np.histogram(self.arrival_times, bins=edges)
        width = self.duration / bins
        return [float(c) / width for c in counts]


#: Candidate block size for vectorized thinning (draws per RNG call).
_THINNING_BLOCK = 16384


def _thinning(rate_fn, peak_rate: float, duration: float,
              rng: np.random.Generator,
              block: int = _THINNING_BLOCK) -> list[float]:
    """Sample a non-homogeneous Poisson process by thinning.

    Candidates come from a homogeneous process at ``peak_rate`` and are
    accepted with probability ``rate_fn(t) / peak_rate``; ``rate_fn``
    must evaluate elementwise on an ndarray (and tolerate times past
    ``duration`` — the last block overshoots).  Gaps and acceptance
    uniforms are drawn one block at a time instead of two scalar draws
    per candidate, which is what makes million-arrival traces cheap.
    """
    if peak_rate <= 0:
        raise ValueError("peak rate must be positive")
    chunks: list[np.ndarray] = []
    t = 0.0
    while t < duration:
        gaps = rng.exponential(1.0 / peak_rate, size=block)
        candidates = t + np.cumsum(gaps)
        accepted = rng.random(block) * peak_rate < rate_fn(candidates)
        t = float(candidates[-1])
        keep = candidates[accepted & (candidates < duration)]
        if keep.size:
            chunks.append(keep)
    if not chunks:
        return []
    return np.concatenate(chunks).tolist()


def diurnal_trace(duration: float = 86400.0, peak_rate: float = 50.0,
                  base_rate: float = 0.5,
                  daylight: tuple[float, float] = (6 * 3600, 20 * 3600),
                  seed: int = 0) -> ArrivalTrace:
    """Field-hours demand: a half-sine arc between dawn and dusk.

    The rate rises from ``base_rate`` at dawn along ``sin(pi * phase)``
    to ``peak_rate`` requests/s at solar noon and falls back to
    ``base_rate`` overnight.
    """
    if peak_rate <= base_rate:
        raise ValueError("peak rate must exceed the base rate")
    dawn, dusk = daylight
    if not 0 <= dawn < dusk <= duration:
        raise ValueError("daylight window must fit inside the trace")

    def rate(t: np.ndarray) -> np.ndarray:
        phase = np.clip((t - dawn) / (dusk - dawn), 0.0, 1.0)
        bump = (peak_rate - base_rate) * np.sin(math.pi * phase)
        return base_rate + np.where((t >= dawn) & (t <= dusk), bump,
                                    0.0)

    rng = np.random.default_rng(seed)
    times = _thinning(rate, peak_rate, duration, rng)
    return ArrivalTrace("diurnal/v2", tuple(times), duration)


def sparse_diurnal_trace(duration: float = 86400.0,
                         peak_rate: float = 2.0,
                         night_rate: float = 0.01,
                         daylight: tuple[float, float] | None = None,
                         seed: int = 0) -> ArrivalTrace:
    """Scale-to-zero demand: a daylight arc over a near-idle night.

    :func:`diurnal_trace` keeps a base rate busy enough that a warm
    pool never drains; this variant drops to a configurable
    ``night_rate`` floor — requests/s overnight, possibly 0 — so
    inter-arrival gaps at night stretch past any realistic keep-alive
    window.  That is exactly the regime where serverless cold starts
    and scale-to-zero economics show (see ``docs/serverless.md``).

    ``daylight`` defaults to ``(0.25, 0.8)`` of the duration, so a
    shortened trace keeps the same day shape instead of pinning dawn
    at six o'clock of a day it no longer contains.
    """
    if peak_rate <= 0:
        raise ValueError("peak rate must be positive")
    if night_rate < 0:
        raise ValueError("nighttime floor must be >= 0")
    if night_rate > peak_rate:
        raise ValueError(
            f"nighttime floor ({night_rate}) cannot exceed the peak "
            f"rate ({peak_rate})")
    if daylight is None:
        daylight = (0.25 * duration, 0.8 * duration)
    dawn, dusk = daylight
    if not 0 <= dawn < dusk <= duration:
        raise ValueError("daylight window must fit inside the trace")

    def rate(t: np.ndarray) -> np.ndarray:
        phase = np.clip((t - dawn) / (dusk - dawn), 0.0, 1.0)
        bump = (peak_rate - night_rate) * np.sin(math.pi * phase)
        return night_rate + np.where((t >= dawn) & (t <= dusk), bump,
                                     0.0)

    rng = np.random.default_rng(seed)
    times = _thinning(rate, peak_rate, duration, rng)
    return ArrivalTrace("sparse_diurnal/v2", tuple(times), duration)


def burst_trace(duration: float = 3600.0, background_rate: float = 1.0,
                bursts: int = 4, burst_rate: float = 200.0,
                burst_seconds: float = 30.0,
                seed: int = 0) -> ArrivalTrace:
    """Survey-upload pattern: quiet background plus dense bursts."""
    if bursts < 0 or burst_seconds <= 0:
        raise ValueError("bad burst parameters")
    if burst_seconds > duration:
        raise ValueError(
            f"burst_seconds ({burst_seconds}) cannot exceed the trace "
            f"duration ({duration}); burst starts would be negative")
    if background_rate < 0 or burst_rate <= 0:
        raise ValueError("rates must be nonnegative (burst positive)")
    rng = np.random.default_rng(seed)
    starts = np.sort(rng.uniform(0, duration - burst_seconds,
                                 size=bursts))

    def rate(t: np.ndarray) -> np.ndarray:
        if starts.size == 0:
            return np.full(np.shape(t), float(background_rate))
        # Burst spans share one length, so if any burst covers t the
        # nearest start at or before t does — one searchsorted pass.
        idx = np.searchsorted(starts, t, side="right") - 1
        prev = starts[np.maximum(idx, 0)]
        in_burst = (idx >= 0) & (t < prev + burst_seconds)
        return np.where(in_burst, float(burst_rate),
                        float(background_rate))

    # The thinning envelope must dominate the rate everywhere: between
    # bursts the rate is background_rate, which a nightly-upload
    # pattern can set *above* burst_rate — clipping the envelope at
    # burst_rate silently under-sampled that background.
    peak = max(background_rate, burst_rate)
    times = _thinning(rate, peak, duration, rng)
    return ArrivalTrace("burst/v2", tuple(times), duration)


def step_trace(duration: float = 60.0, base_rate: float = 5.0,
               step_rate: float = 100.0, step_start: float = 10.0,
               step_end: float = 30.0, seed: int = 0) -> ArrivalTrace:
    """Step load: ``base_rate`` with one sustained burst window.

    Arrivals follow a seeded Poisson process at ``base_rate`` outside
    ``[step_start, step_end)`` and ``step_rate`` inside it —
    deterministic for a given seed, which the autoscaler CLI and tests
    rely on for byte-identical replays.
    """
    if base_rate <= 0 or step_rate <= 0:
        raise ValueError("rates must be positive")
    if not 0 <= step_start < step_end <= duration:
        raise ValueError("step window must fit inside the trace")

    def rate(t: np.ndarray) -> np.ndarray:
        return np.where((t >= step_start) & (t < step_end),
                        float(step_rate), float(base_rate))

    rng = np.random.default_rng(seed)
    peak = max(base_rate, step_rate)
    times = _thinning(rate, peak, duration, rng)
    return ArrivalTrace("step/v2", tuple(times), duration)


class TraceReplayer:
    """Schedules a trace's requests against a serving target.

    ``target`` is anything with ``submit(request)`` and a ``sim``
    attribute (:class:`TritonLikeServer`,
    :class:`~repro.scale.balancer.LoadBalancer`, or
    :class:`~repro.continuum.pipeline.ContinuumReplayer`).

    With ``trace=True`` each submitted request carries a fresh
    :class:`~repro.serving.tracectx.TraceContext` (replayer-local ids,
    byte-identical across replays) collected in ``traces``.  Leave it
    off when the target opens its own contexts (the continuum replayer
    does).
    """

    def __init__(self, target, model_name: str,
                 images_per_request: int = 1,
                 time_scale: float = 1.0, trace: bool = False):
        if images_per_request < 1:
            raise ValueError("images_per_request must be >= 1")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.target = target
        self.model_name = model_name
        self.images_per_request = images_per_request
        self.time_scale = time_scale
        self.trace = trace
        self.traces: list[TraceContext] = []
        self._next_trace_id = itertools.count(1)
        self.submitted = 0

    def schedule(self, trace: ArrivalTrace):
        """Arm every arrival on the simulator (scaled by time_scale).

        Batched injection: the whole trace registers as one
        :class:`~repro.serving.events.EventStream` instead of one
        ``schedule_at`` call (heap entry + Event) per arrival, so a
        million-arrival trace arms in one call and holds no heap
        state.  Returns the stream handle (None for an empty trace).
        """
        times = np.asarray(trace.arrival_times, dtype=float)
        if self.time_scale != 1.0:
            times = times * self.time_scale
        if times.size == 0:
            return None
        return self.target.sim.add_stream(times, self._submit_indexed)

    def _submit_indexed(self, index: int) -> None:
        """Stream callback: the arrival index is implicit in order."""
        self._submit_one()

    def _submit_one(self) -> None:
        self.submitted += 1
        request = Request(self.model_name,
                          num_images=self.images_per_request)
        if self.trace:
            ctx = TraceContext(next(self._next_trace_id),
                               start=self.target.sim.now)
            ctx.baggage["model"] = self.model_name
            request.trace = ctx
            self.traces.append(ctx)
        self.target.submit(request)
