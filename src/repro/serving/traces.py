"""Arrival-trace generation and replay.

Farm inference demand is not Poisson-at-a-constant-rate: scouting flights
land batches of imagery mid-morning, ground vehicles stream during field
hours, and nights are quiet.  This module generates such traces
(deterministic, seeded) and replays them into a server or load balancer:

* :func:`diurnal_trace` — a field-hours demand curve (cosine bump over
  daylight) sampled as a non-homogeneous Poisson process via thinning;
* :func:`burst_trace` — idle background load with survey-upload bursts
  (the offline scenario's arrival pattern seen from the cluster);
* :func:`step_trace` — a flat base rate with one sustained step to a
  higher rate (the canonical autoscaler test input: the controller must
  scale out under the step and drain back after it);
* :class:`TraceReplayer` — schedules a trace against any ``submit``-able
  target on the simulator clock.
"""

from __future__ import annotations

import dataclasses
import itertools
import math

import numpy as np

from repro.serving.request import Request
from repro.serving.tracectx import TraceContext


@dataclasses.dataclass(frozen=True)
class ArrivalTrace:
    """A sequence of request arrival times (seconds from start)."""

    name: str
    arrival_times: tuple[float, ...]
    duration: float

    def __post_init__(self) -> None:
        times = self.arrival_times
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("arrival times must be nondecreasing")
        if times and times[-1] > self.duration:
            raise ValueError("arrivals extend past the trace duration")

    def __len__(self) -> int:
        return len(self.arrival_times)

    @property
    def mean_rate(self) -> float:
        """Average arrivals per second over the trace."""
        return len(self.arrival_times) / self.duration

    def rate_histogram(self, bins: int = 24) -> list[float]:
        """Requests/second per time bin (for reports and tests)."""
        if bins < 1:
            raise ValueError("bins must be >= 1")
        edges = np.linspace(0.0, self.duration, bins + 1)
        counts, _ = np.histogram(self.arrival_times, bins=edges)
        width = self.duration / bins
        return [float(c) / width for c in counts]


def _thinning(rate_fn, peak_rate: float, duration: float,
              rng: np.random.Generator) -> list[float]:
    """Sample a non-homogeneous Poisson process by thinning."""
    times = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / peak_rate)
        if t >= duration:
            break
        if rng.random() < rate_fn(t) / peak_rate:
            times.append(t)
    return times


def diurnal_trace(duration: float = 86400.0, peak_rate: float = 50.0,
                  base_rate: float = 0.5,
                  daylight: tuple[float, float] = (6 * 3600, 20 * 3600),
                  seed: int = 0) -> ArrivalTrace:
    """Field-hours demand: a cosine bump between dawn and dusk.

    ``peak_rate`` requests/s at solar noon, ``base_rate`` overnight.
    """
    if peak_rate <= base_rate:
        raise ValueError("peak rate must exceed the base rate")
    dawn, dusk = daylight
    if not 0 <= dawn < dusk <= duration:
        raise ValueError("daylight window must fit inside the trace")

    def rate(t: float) -> float:
        if not dawn <= t <= dusk:
            return base_rate
        phase = (t - dawn) / (dusk - dawn)  # 0..1 across daylight
        return base_rate + (peak_rate - base_rate) * \
            math.sin(math.pi * phase)

    rng = np.random.default_rng(seed)
    times = _thinning(rate, peak_rate, duration, rng)
    return ArrivalTrace("diurnal", tuple(times), duration)


def burst_trace(duration: float = 3600.0, background_rate: float = 1.0,
                bursts: int = 4, burst_rate: float = 200.0,
                burst_seconds: float = 30.0,
                seed: int = 0) -> ArrivalTrace:
    """Survey-upload pattern: quiet background plus dense bursts."""
    if bursts < 0 or burst_seconds <= 0:
        raise ValueError("bad burst parameters")
    rng = np.random.default_rng(seed)
    starts = np.sort(rng.uniform(0, duration - burst_seconds,
                                 size=bursts))

    def rate(t: float) -> float:
        for s in starts:
            if s <= t < s + burst_seconds:
                return burst_rate
        return background_rate

    times = _thinning(rate, burst_rate, duration, rng)
    return ArrivalTrace("burst", tuple(times), duration)


def step_trace(duration: float = 60.0, base_rate: float = 5.0,
               step_rate: float = 100.0, step_start: float = 10.0,
               step_end: float = 30.0, seed: int = 0) -> ArrivalTrace:
    """Step load: ``base_rate`` with one sustained burst window.

    Arrivals follow a seeded Poisson process at ``base_rate`` outside
    ``[step_start, step_end)`` and ``step_rate`` inside it —
    deterministic for a given seed, which the autoscaler CLI and tests
    rely on for byte-identical replays.
    """
    if base_rate <= 0 or step_rate <= 0:
        raise ValueError("rates must be positive")
    if not 0 <= step_start < step_end <= duration:
        raise ValueError("step window must fit inside the trace")

    def rate(t: float) -> float:
        return step_rate if step_start <= t < step_end else base_rate

    rng = np.random.default_rng(seed)
    peak = max(base_rate, step_rate)
    times = _thinning(rate, peak, duration, rng)
    return ArrivalTrace("step", tuple(times), duration)


class TraceReplayer:
    """Schedules a trace's requests against a serving target.

    ``target`` is anything with ``submit(request)`` and a ``sim``
    attribute (:class:`TritonLikeServer`,
    :class:`~repro.scale.balancer.LoadBalancer`, or
    :class:`~repro.continuum.pipeline.ContinuumReplayer`).

    With ``trace=True`` each submitted request carries a fresh
    :class:`~repro.serving.tracectx.TraceContext` (replayer-local ids,
    byte-identical across replays) collected in ``traces``.  Leave it
    off when the target opens its own contexts (the continuum replayer
    does).
    """

    def __init__(self, target, model_name: str,
                 images_per_request: int = 1,
                 time_scale: float = 1.0, trace: bool = False):
        if images_per_request < 1:
            raise ValueError("images_per_request must be >= 1")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.target = target
        self.model_name = model_name
        self.images_per_request = images_per_request
        self.time_scale = time_scale
        self.trace = trace
        self.traces: list[TraceContext] = []
        self._next_trace_id = itertools.count(1)
        self.submitted = 0

    def schedule(self, trace: ArrivalTrace) -> None:
        """Arm every arrival on the simulator (scaled by time_scale)."""
        for t in trace.arrival_times:
            self.target.sim.schedule_at(
                t * self.time_scale, self._submit_one)

    def _submit_one(self) -> None:
        self.submitted += 1
        request = Request(self.model_name,
                          num_images=self.images_per_request)
        if self.trace:
            ctx = TraceContext(next(self._next_trace_id),
                               start=self.target.sim.now)
            ctx.baggage["model"] = self.model_name
            request.trace = ctx
            self.traces.append(ctx)
        self.target.submit(request)
