"""Fault injection for the serving substrate.

Field deployments fail in ways benchmarks don't: a backend instance
crashes mid-batch (driver resets on the thermally-stressed Jetson,
preempted cloud jobs).  :class:`FaultModel` injects such failures
deterministically into backend executions; the server detects them after
a timeout and retries the affected requests up to a retry budget, after
which they complete with ``status="failed"``.

Used by the failure-injection tests and the resilience ablation: what
does a 1% instance-failure rate cost in tail latency and goodput?
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass
class FaultModel:
    """Per-execution failure process.

    Parameters
    ----------
    failure_probability:
        Chance that one batch execution fails.
    detect_seconds:
        Time until the scheduler notices (health-check interval); the
        batch occupies the instance for this long before failing.
    seed:
        Deterministic stream — simulations stay reproducible.
    """

    failure_probability: float
    detect_seconds: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_probability <= 1.0:
            raise ValueError("failure probability must be in [0, 1]")
        if self.detect_seconds < 0:
            raise ValueError("detection time must be >= 0")
        self._rng = np.random.default_rng(self.seed)
        self.injected = 0

    def draw_failure(self) -> bool:
        """Whether the next execution fails."""
        failed = bool(self._rng.random() < self.failure_probability)
        if failed:
            self.injected += 1
        return failed
