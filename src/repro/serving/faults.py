"""Fault injection for the serving substrate.

Field deployments fail in ways benchmarks don't: a backend instance
crashes mid-batch (driver resets on the thermally-stressed Jetson,
preempted cloud jobs).  :class:`FaultModel` injects such failures
deterministically into backend executions; the server detects them after
a timeout and retries the affected requests up to a retry budget, after
which they complete with ``status="failed"``.

:class:`LinkOutageModel` injects *connectivity* failures: alternating
up/down windows on a continuum link (a rural LTE cell dropping out, a
farm AP rebooting).  The continuum's
:class:`~repro.continuum.uplink.StoreAndForward` buffer consumes the
windows so outages degrade to delayed delivery.

Used by the failure-injection tests and the resilience ablation: what
does a 1% instance-failure rate cost in tail latency and goodput?
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass
class FaultModel:
    """Per-execution failure process.

    Parameters
    ----------
    failure_probability:
        Chance that one batch execution fails.
    detect_seconds:
        Time until the scheduler notices (health-check interval); the
        batch occupies the instance for this long before failing.
    seed:
        Deterministic stream — simulations stay reproducible.
    """

    failure_probability: float
    detect_seconds: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_probability <= 1.0:
            raise ValueError("failure probability must be in [0, 1]")
        if self.detect_seconds < 0:
            raise ValueError("detection time must be >= 0")
        self._rng = np.random.default_rng(self.seed)
        self.injected = 0

    def draw_failure(self) -> bool:
        """Whether the next execution fails."""
        failed = bool(self._rng.random() < self.failure_probability)
        if failed:
            self.injected += 1
        return failed


@dataclasses.dataclass
class LinkOutageModel:
    """Alternating up/down windows for a continuum link.

    Two construction modes:

    * **Explicit** — pass ``windows`` as ``(start, end)`` pairs (the
      deterministic CLI/scenario form).
    * **Sampled** — leave ``windows`` empty and give mean up/down
      durations; :meth:`windows_until` draws alternating exponential
      intervals from the seeded stream (same seed, same outages).

    Consumed by :class:`~repro.continuum.uplink.StoreAndForward`, which
    buffers transfers submitted inside a window and drains them at the
    window's end.
    """

    windows: tuple[tuple[float, float], ...] = ()
    mean_up_seconds: float = 60.0
    mean_down_seconds: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mean_up_seconds <= 0 or self.mean_down_seconds <= 0:
            raise ValueError("mean up/down durations must be positive")
        for start, end in self.windows:
            if not 0 <= start < end:
                raise ValueError(
                    f"bad outage window ({start}, {end})")

    def windows_until(self, horizon: float
                      ) -> list[tuple[float, float]]:
        """Outage windows intersecting ``[0, horizon)``, in order."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.windows:
            return [(start, min(end, horizon))
                    for start, end in self.windows if start < horizon]
        rng = np.random.default_rng(self.seed)
        out: list[tuple[float, float]] = []
        t = 0.0
        while True:
            t += float(rng.exponential(self.mean_up_seconds))
            if t >= horizon:
                return out
            down = float(rng.exponential(self.mean_down_seconds))
            out.append((t, min(t + down, horizon)))
            t += down
