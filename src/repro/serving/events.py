"""Discrete-event simulation core.

A minimal, deterministic event loop: events are (time, sequence, handle)
tuples on a heap; ties in time break by insertion order, so runs are fully
reproducible.  The virtual clock only moves when events fire — simulating
hours of serving takes milliseconds of wall time.

Hot-path design (this is the innermost loop of every serving replay):

* heap entries are plain ``(time, seq, event)`` tuples — ``seq`` is
  unique, so heap comparisons resolve in C on the first two fields and
  never call into Python-level ordering methods;
* cancellation flips a flag on the :class:`Event` handle (O(1), no
  auxiliary set) and the loop discards flagged entries lazily as they
  pop, so cancel-heavy replays hold no per-cancel state;
* same-timestamp events are dispatched as one batch: the clock is
  assigned once and the ``until`` horizon is checked once per distinct
  timestamp instead of once per event;
* bulk arrival injection goes through :class:`EventStream`: a sorted
  time array merged with the heap inside :meth:`Simulator.run`, so a
  million-arrival trace costs one stream registration and a per-arrival
  callback — no per-arrival :class:`Event` allocation and no
  million-entry heap.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Sequence

#: :attr:`Event.state` values.
_PENDING, _FIRED, _CANCELLED = 0, 1, 2

#: Relative tolerance for :meth:`Simulator.schedule_at` round-off: a
#: target a few ULPs before ``now`` (float noise from ``t - now`` after
#: cumulative-sum arithmetic) clamps to "fire now" instead of raising.
_PAST_TOLERANCE = 1e-9


class Event:
    """A scheduled callback (ordered by time, then insertion sequence).

    The handle :meth:`Simulator.schedule` returns; hold it to
    :meth:`~Simulator.cancel` the callback later.  ``cancelled`` and
    ``fired`` report the lifecycle state.
    """

    __slots__ = ("time", "seq", "callback", "daemon", "state")

    def __init__(self, time: float, seq: int,
                 callback: Callable[[], None],
                 cancelled: bool = False, daemon: bool = False):
        self.time = time
        self.seq = seq
        self.callback = callback
        #: Daemon events (periodic control loops: samplers, autoscalers,
        #: SLO monitors) never count as pending *work* — see
        #: :meth:`Simulator.peek_foreground_time`.
        self.daemon = daemon
        self.state = _CANCELLED if cancelled else _PENDING

    @property
    def cancelled(self) -> bool:
        """Whether the event was cancelled before firing."""
        return self.state == _CANCELLED

    @property
    def fired(self) -> bool:
        """Whether the callback has already run."""
        return self.state == _FIRED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = ("pending", "fired", "cancelled")[self.state]
        return (f"Event(time={self.time!r}, seq={self.seq}, "
                f"daemon={self.daemon}, {status})")


class EventStream:
    """A sorted batch of same-callback firings, merged into the loop.

    Scheduling a long arrival trace as individual events costs one heap
    entry, one :class:`Event`, and two O(log n) heap operations per
    arrival.  A stream holds the whole sorted time array instead; the
    run loop fires ``callback(index)`` at each time with nothing but an
    index increment and a peek at the heap top, so replaying a
    million-arrival trace is cheap enough to leave to Python.

    Handles returned by :meth:`Simulator.add_stream`.  ``jump(index)``
    skips the cursor forward (the hybrid fluid engine hands a
    saturated stretch of arrivals to the flow integrator and resumes
    the stream past it); :meth:`cancel` retires the stream outright.
    """

    __slots__ = ("times", "callback", "daemon", "index", "cancelled",
                 "_sim")

    def __init__(self, sim: "Simulator", times: Sequence[float],
                 callback: Callable[[int], None], daemon: bool = False):
        # ndarray fast path: tolist() yields Python floats in C, and
        # list indexing in the drain loop beats ndarray scalar access.
        tolist = getattr(times, "tolist", None)
        self.times: list[float] = (tolist() if tolist is not None
                                   else [float(t) for t in times])
        self.callback = callback
        self.daemon = daemon
        self.index = 0
        self.cancelled = False
        self._sim = sim

    @property
    def remaining(self) -> int:
        """Firings still pending on this stream."""
        if self.cancelled:
            return 0
        return len(self.times) - self.index

    def peek_time(self) -> float | None:
        """Time of the next pending firing, or None when exhausted."""
        if self.cancelled or self.index >= len(self.times):
            return None
        return self.times[self.index]

    def jump(self, index: int) -> None:
        """Skip the cursor forward to ``index`` (never backward).

        The skipped entries simply never fire; foreground-pending
        accounting is adjusted so drained-ness stays exact.
        """
        if index < self.index:
            raise ValueError(
                f"stream cursor cannot move backward "
                f"({self.index} -> {index})")
        index = min(index, len(self.times))
        if not self.daemon and not self.cancelled:
            self._sim._foreground_pending -= index - self.index
        self.index = index

    def cancel(self) -> None:
        """Retire the stream; pending firings never run."""
        if not self.cancelled:
            if not self.daemon:
                self._sim._foreground_pending -= self.remaining
            self.cancelled = True


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.schedule(0.5, lambda: print(sim.now))
        sim.run()
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        #: Current virtual time in seconds.  A plain attribute, not a
        #: property: the clock is read on every metric touch and span
        #: open/close, so the descriptor call would be pure hot-path
        #: overhead.  Treat as read-only; only :meth:`run` advances it.
        self.now = 0.0
        #: Pending non-daemon events (kept exact so the common
        #: "is the workload drained" probe is O(1)).
        self._foreground_pending = 0
        #: Shadow heap of non-daemon entries so *which* foreground event
        #: is next is also cheap: same lazy-deletion discipline as the
        #: main heap, pruned as fired/cancelled entries surface.
        self._fg_heap: list[tuple[float, int, Event]] = []
        #: Same-timestamp events popped but not yet fired this dispatch
        #: round; peeks must still see them (a callback that asks "is
        #: there work" mid-batch would otherwise miss its same-time
        #: siblings).
        self._dispatching: list[Event] = []
        #: Registered :class:`EventStream` sources (exhausted streams
        #: are pruned lazily as the run loop passes over them).
        self._streams: list[EventStream] = []
        self.events_processed = 0
        #: Optional :class:`~repro.serving.profiler.SimProfiler`; when
        #: attached (and enabled) :meth:`run` brackets the whole loop
        #: in a ``("sim", "run")`` scope.  Checked once per ``run()``
        #: call, never inside the dispatch loop.
        self.profiler = None

    def schedule(self, delay: float, callback: Callable[[], None],
                 daemon: bool = False) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        ``daemon`` marks the event as a control-loop tick rather than
        workload progress; daemon events fire normally but are invisible
        to :meth:`peek_foreground_time`, so periodic loops re-arming
        "while the simulation has work" cannot keep each other alive
        after the real work has drained.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        event = Event(self.now + delay, seq, callback, daemon=daemon)
        entry = (event.time, seq, event)
        heapq.heappush(self._heap, entry)
        if not daemon:
            self._foreground_pending += 1
            heapq.heappush(self._fg_heap, entry)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None],
                    daemon: bool = False) -> Event:
        """Schedule ``callback`` at an absolute virtual time.

        Targets a hair *before* ``now`` — within a few ULPs, the float
        round-off a cumulative-sum arrival trace accumulates — clamp to
        "fire immediately" instead of raising; genuinely past targets
        still raise.
        """
        delay = time - self.now
        if delay < 0 and -delay <= _PAST_TOLERANCE * max(1.0, abs(self.now)):
            delay = 0.0
        return self.schedule(delay, callback, daemon=daemon)

    def add_stream(self, times: Sequence[float],
                   callback: Callable[[int], None],
                   daemon: bool = False) -> EventStream:
        """Register a sorted bulk source: ``callback(i)`` at ``times[i]``.

        ``times`` must be nondecreasing and start at or after ``now``
        (the same few-ULP round-off tolerance as :meth:`schedule_at`
        applies: a first entry a hair in the past clamps to "fire
        now").  Stream firings interleave with heap events in exact
        time order; at an exact tie the heap event fires first, and
        ties between streams resolve by registration order.  Compared
        with one :meth:`schedule_at` call per entry this allocates no
        per-entry :class:`Event` and keeps the heap small — the
        injection path for million-arrival traces.
        """
        stream = EventStream(self, times, callback, daemon=daemon)
        ts = stream.times
        if any(b < a for a, b in zip(ts, ts[1:])):
            raise ValueError("stream times must be nondecreasing")
        if ts:
            behind = self.now - ts[0]
            if behind > 0:
                if behind > _PAST_TOLERANCE * max(1.0, abs(self.now)):
                    raise ValueError(
                        f"cannot stream into the past "
                        f"(first time {ts[0]} < now {self.now})")
                ts[0] = self.now
        if not daemon:
            self._foreground_pending += len(ts)
        self._streams.append(stream)
        return stream

    def _earliest_stream(self) -> EventStream | None:
        """The live stream with the earliest head (pruning dead ones)."""
        if not self._streams:
            return None
        best = None
        best_time = 0.0
        live = []
        for stream in self._streams:
            head = stream.peek_time()
            if head is None:
                continue
            live.append(stream)
            if best is None or head < best_time:
                best, best_time = stream, head
        if len(live) != len(self._streams):
            self._streams = live
        return best

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already fired).

        O(1): flips the handle's state flag; the heap entry is discarded
        lazily when it reaches the top.  No per-cancel bookkeeping
        outlives the event, so cancel-heavy replays stay bounded.
        """
        if event.state == _PENDING:
            event.state = _CANCELLED
            if not event.daemon:
                self._foreground_pending -= 1

    def run(self, until: float | None = None,
            max_events: int = 10_000_000) -> None:
        """Process events until the heap drains or ``until`` is reached.

        ``max_events`` guards against runaway self-scheduling loops
        (stream firings count toward the budget too).
        """
        profiler = self.profiler
        if profiler is not None and profiler.enabled:
            with profiler.scope("sim", "run"):
                self._run(until, max_events)
            return
        self._run(until, max_events)

    def _run(self, until: float | None, max_events: int) -> None:
        heap = self._heap
        processed = 0
        while True:
            stream = self._earliest_stream() if self._streams else None
            if not heap and stream is None:
                break
            if stream is not None and (
                    not heap or stream.times[stream.index] < heap[0][0]):
                processed = self._drain_stream(stream, until,
                                               max_events, processed)
                if processed < 0:  # hit the ``until`` horizon
                    return
                continue
            time = heap[0][0]
            if until is not None and time > until:
                self.now = until
                return
            # Batch-dispatch every event sharing this timestamp: one
            # clock assignment + horizon check per distinct time.  A
            # callback scheduling *new* same-time events is still
            # ordered correctly — they carry higher seqs, stay on the
            # heap, and drain in the next round at the same timestamp.
            batch = self._dispatching
            while heap and heap[0][0] == time:
                batch.append(heapq.heappop(heap)[2])
            self.now = time
            for index, event in enumerate(batch):
                if event.state:  # cancelled (possibly mid-batch)
                    continue
                if processed >= max_events:
                    # Re-queue the unfired tail so the simulator state
                    # stays consistent for post-mortem inspection.
                    for tail in batch[index:]:
                        if not tail.state:
                            heapq.heappush(heap,
                                           (tail.time, tail.seq, tail))
                    del batch[:]
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events; "
                        "likely a self-scheduling loop")
                event.state = _FIRED
                if not event.daemon:
                    self._foreground_pending -= 1
                event.callback()
                processed += 1
                self.events_processed += 1
            del batch[:]
            # Fired events surface at the shadow heap's top in the same
            # time order they were dispatched, so this prune is
            # amortized O(1) per event and keeps the shadow heap sized
            # by *pending* work, not total history.
            fg = self._fg_heap
            while fg and fg[0][2].state:
                heapq.heappop(fg)
        if until is not None:
            self.now = max(self.now, until)

    def _drain_stream(self, stream: EventStream, until: float | None,
                      max_events: int, processed: int) -> int:
        """Fire ``stream`` entries until something else must run first.

        Returns the updated processed-event count, or ``-1`` when the
        ``until`` horizon was reached (the caller returns).  The inner
        loop is the bulk-arrival hot path: per firing it costs one list
        index, one heap-top peek, and the callback — a callback may
        schedule heap events, cancel or jump this stream, or register
        new streams, so every guard is re-checked each iteration.
        """
        heap = self._heap
        times = stream.times
        n = len(times)
        multi = len(self._streams) > 1
        while True:
            i = stream.index
            if i >= n or stream.cancelled:
                break
            t = times[i]
            if heap and heap[0][0] <= t:
                break  # tie rule: heap events fire first
            if multi or len(self._streams) > 1:
                multi = True
                other = min((s.peek_time() for s in self._streams
                             if s is not stream
                             and s.peek_time() is not None),
                            default=None)
                if other is not None and other < t:
                    break
            if until is not None and t > until:
                self.now = until
                return -1
            if processed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; "
                    "likely a self-scheduling loop")
            if t > self.now:
                self.now = t
            stream.index = i + 1
            if not stream.daemon:
                self._foreground_pending -= 1
            stream.callback(i)
            processed += 1
            self.events_processed += 1
        return processed

    def peek_time(self) -> float | None:
        """Time of the next pending event or stream firing, or None."""
        heap = self._heap
        while heap and heap[0][2].state:
            heapq.heappop(heap)
        for event in self._dispatching:
            if not event.state:
                return self.now
        best = heap[0][0] if heap else None
        if self._streams:
            stream = self._earliest_stream()
            if stream is not None:
                head = stream.peek_time()
                if best is None or head < best:
                    best = head
        return best

    def peek_foreground_time(self) -> float | None:
        """Time of the next pending *non-daemon* event, or None.

        This is the "is there still work" question a periodic control
        loop must ask before re-arming itself: with two or more loops
        running, :meth:`peek_time` always sees the other loop's next
        tick and the loops would keep the simulation alive forever.
        The no-work answer — the one that ends every replay — is O(1)
        off the foreground-pending counter; the next-time answer is an
        amortized-O(1) peek at the shadow foreground heap.
        """
        if self._foreground_pending == 0:
            return None
        for event in self._dispatching:
            if not event.state and not event.daemon:
                return self.now
        fg = self._fg_heap
        while fg and fg[0][2].state:
            heapq.heappop(fg)
        best = fg[0][0] if fg else None
        for stream in self._streams:
            if stream.daemon:
                continue
            head = stream.peek_time()
            if head is not None and (best is None or head < best):
                best = head
        return best
