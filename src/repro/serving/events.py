"""Discrete-event simulation core.

A minimal, deterministic event loop: events are (time, sequence, callback)
tuples on a heap; ties in time break by insertion order, so runs are fully
reproducible.  The virtual clock only moves when events fire — simulating
hours of serving takes milliseconds of wall time.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from collections.abc import Callable


@dataclasses.dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback (ordered by time, then insertion sequence)."""

    time: float
    seq: int
    callback: Callable[[], None] = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(default=False, compare=False)
    #: Daemon events (periodic control loops: samplers, autoscalers,
    #: SLO monitors) never count as pending *work* — see
    #: :meth:`Simulator.peek_foreground_time`.
    daemon: bool = dataclasses.field(default=False, compare=False)


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.schedule(0.5, lambda: print(sim.now))
        sim.run()
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._cancelled: set[int] = set()
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None],
                 daemon: bool = False) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        ``daemon`` marks the event as a control-loop tick rather than
        workload progress; daemon events fire normally but are invisible
        to :meth:`peek_foreground_time`, so periodic loops re-arming
        "while the simulation has work" cannot keep each other alive
        after the real work has drained.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + delay, next(self._seq), callback,
                      daemon=daemon)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None],
                    daemon: bool = False) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        return self.schedule(time - self._now, callback, daemon=daemon)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already fired)."""
        self._cancelled.add(event.seq)

    def run(self, until: float | None = None,
            max_events: int = 10_000_000) -> None:
        """Process events until the heap drains or ``until`` is reached.

        ``max_events`` guards against runaway self-scheduling loops.
        """
        processed = 0
        while self._heap:
            if processed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; "
                    "likely a self-scheduling loop")
            event = heapq.heappop(self._heap)
            if event.seq in self._cancelled:
                self._cancelled.discard(event.seq)
                continue
            if until is not None and event.time > until:
                heapq.heappush(self._heap, event)  # leave it for later
                self._now = until
                return
            self._now = event.time
            event.callback()
            processed += 1
            self.events_processed += 1
        if until is not None:
            self._now = max(self._now, until)

    def peek_time(self) -> float | None:
        """Time of the next pending event, or None when idle."""
        while self._heap and self._heap[0].seq in self._cancelled:
            self._cancelled.discard(heapq.heappop(self._heap).seq)
        return self._heap[0].time if self._heap else None

    def peek_foreground_time(self) -> float | None:
        """Time of the next pending *non-daemon* event, or None.

        This is the "is there still work" question a periodic control
        loop must ask before re-arming itself: with two or more loops
        running, :meth:`peek_time` always sees the other loop's next
        tick and the loops would keep the simulation alive forever.
        """
        best: float | None = None
        for event in self._heap:
            if event.daemon or event.seq in self._cancelled:
                continue
            if best is None or event.time < best:
                best = event.time
        return best
