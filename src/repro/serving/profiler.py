"""Sim-time / wall-clock profiler with folded-stack and speedscope export.

``SimProfiler`` attributes cost to a component hierarchy (server →
batcher → instance → kernel; continuum legs; fluid vs DES regime;
control loops) along two axes at once:

* **sim-time** — seconds of simulated time a component accounts for.
  Deterministic: two identical runs produce byte-identical sim-time
  profiles, so CLI output and CI checks use this axis.
* **wall-clock** — host seconds the *simulator itself* spent inside a
  component, measured with ``time.perf_counter``.  Nondeterministic by
  nature; exported only on request.

Two attribution styles compose:

* ``with profiler.scope("regime", "fluid"):`` — a nested scoped timer.
  Scopes stack: a scope's *self* cost is its elapsed cost minus the
  cost of scopes opened inside it, so a parent never double-counts its
  children (standard flamegraph semantics).
* ``profiler.record(("serve", "vit_tiny", "execute"), sim_seconds=d)``
  — event-driven attribution at an **absolute** path, independent of
  whatever scopes happen to be open.  Discrete-event components use
  this because their cost is known at completion time, not bracketed
  by a Python call.

The zero-cost-when-disabled contract: every instrumentation site in
the serving stack guards on ``profiler is not None``, and a disabled
profiler's ``scope``/``record`` are O(1) early returns, so scrapes and
Chrome traces stay byte-identical with the profiler off (gated by the
BENCH_profile overhead benchmark).

Exports: ``folded()`` (collapsed flamegraph dict), ``render_folded``
(``a;b;c <int microseconds>`` text for ``flamegraph.pl`` and friends),
``render_tree`` (aligned terminal tree), and ``speedscope`` /
``export_speedscope`` (the speedscope.app "sampled" JSON schema).
"""

from __future__ import annotations

import json
import time
from typing import Callable, Iterable, Sequence

__all__ = ["SimProfiler", "ProfileScope"]

#: Valid weight axes for the export helpers.
_WEIGHTS = ("sim", "wall")


class _Node:
    """Accumulated self-cost of one path in the hierarchy."""

    __slots__ = ("sim", "wall", "count")

    def __init__(self) -> None:
        self.sim = 0.0
        self.wall = 0.0
        self.count = 0


class ProfileScope:
    """One active scoped timer; use via ``SimProfiler.scope``."""

    __slots__ = ("_profiler", "_path", "_wall0", "_sim0",
                 "child_wall", "child_sim")

    def __init__(self, profiler: "SimProfiler",
                 path: tuple[str, ...]) -> None:
        self._profiler = profiler
        self._path = path
        self._wall0 = 0.0
        self._sim0 = 0.0
        self.child_wall = 0.0
        self.child_sim = 0.0

    def __enter__(self) -> "ProfileScope":
        prof = self._profiler
        prof._stack.append(self)
        self._sim0 = prof._clock()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self._wall0
        prof = self._profiler
        sim = prof._clock() - self._sim0
        stack = prof._stack
        stack.pop()
        if stack:
            parent = stack[-1]
            parent.child_wall += wall
            parent.child_sim += sim
        node = prof._node(self._path)
        node.sim += sim - self.child_sim
        node.wall += wall - self.child_wall
        node.count += 1


class _NullScope:
    """Shared no-op scope returned while the profiler is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SCOPE = _NullScope()


def _zero_clock() -> float:
    """Clock restored on unpickled profilers (no simulator to read)."""
    return 0.0


class SimProfiler:
    """Hierarchical sim-time + wall-clock cost attribution.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current sim time (pass
        ``lambda: sim.now``).  Defaults to a constant 0 clock, which
        turns scopes into pure wall-clock timers.
    enabled:
        Start enabled (default) or disabled.  A disabled profiler's
        methods are O(1) no-ops, so it can stay attached permanently.
    """

    def __init__(self, clock: Callable[[], float] | None = None,
                 enabled: bool = True) -> None:
        self._clock = clock if clock is not None else lambda: 0.0
        self.enabled = bool(enabled)
        self._nodes: dict[tuple[str, ...], _Node] = {}
        self._stack: list[ProfileScope] = []

    # -- recording ---------------------------------------------------
    def scope(self, *names: str):
        """Context manager timing a nested scope.

        The scope's path is the enclosing scope's path extended by
        ``names`` (absolute when no scope is open).
        """
        if not self.enabled:
            return _NULL_SCOPE
        if not names:
            raise ValueError("scope requires at least one name")
        base = self._stack[-1]._path if self._stack else ()
        return ProfileScope(self, base + names)

    def record(self, path: Sequence[str], sim_seconds: float = 0.0,
               wall_seconds: float = 0.0, count: int = 1) -> None:
        """Attribute cost to an absolute ``path``, ignoring open scopes.

        Event-driven components (batcher picks, instance completions,
        continuum legs) call this when a cost becomes known.
        """
        if not self.enabled:
            return
        node = self._node(tuple(path))
        node.sim += sim_seconds
        node.wall += wall_seconds
        node.count += count

    def _node(self, path: tuple[str, ...]) -> _Node:
        node = self._nodes.get(path)
        if node is None:
            if not path or not all(
                    isinstance(p, str) and p for p in path):
                raise ValueError(
                    f"profile path must be non-empty strings: {path!r}")
            node = self._nodes[path] = _Node()
        return node

    def reset(self) -> None:
        """Drop all accumulated nodes (open scopes stay valid)."""
        self._nodes.clear()

    def merge(self, other: "SimProfiler") -> "SimProfiler":
        """Fold another profiler's accumulated nodes into this one.

        Self-costs and counts add per path — the folded profile of N
        merged shards equals the profile one process would have
        accumulated running them back to back, so
        :meth:`render_folded` over a merged profiler is deterministic
        on the sim axis regardless of merge order or worker count.
        (Wall costs add too, but wall time never reproduces exactly.)
        ``other`` must not have open scopes.
        """
        if other._stack:
            raise ValueError(
                "cannot merge a profiler with open scopes")
        for path, theirs in other._nodes.items():
            node = self._node(path)
            node.sim += theirs.sim
            node.wall += theirs.wall
            node.count += theirs.count
        return self

    # A profiler rides along when a sweep shard returns its results to
    # the parent process; the clock holds a reference into the shard's
    # simulator and freezes at 0 on the other side (recorded costs are
    # preserved — merge folds state, it never re-records).
    def __getstate__(self) -> dict:
        if self._stack:
            raise ValueError(
                "cannot pickle a profiler with open scopes")
        state = self.__dict__.copy()
        state["_clock"] = None
        state["_stack"] = []
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self._clock is None:
            self._clock = _zero_clock

    # -- reading -----------------------------------------------------
    def nodes(self) -> dict[tuple[str, ...], tuple[float, float, int]]:
        """``{path: (sim_self, wall_self, count)}`` snapshot."""
        return {path: (n.sim, n.wall, n.count)
                for path, n in sorted(self._nodes.items())}

    def total(self, weight: str = "sim") -> float:
        """Sum of self-costs over every node, in seconds."""
        _check_weight(weight)
        if weight == "sim":
            return sum(n.sim for n in self._nodes.values())
        return sum(n.wall for n in self._nodes.values())

    def folded(self, weight: str = "sim") -> dict[str, float]:
        """Collapsed stacks: ``{"a;b;c": self_seconds}``, sorted."""
        _check_weight(weight)
        out: dict[str, float] = {}
        for path, node in sorted(self._nodes.items()):
            out[";".join(path)] = (node.sim if weight == "sim"
                                   else node.wall)
        return out

    # -- rendering ---------------------------------------------------
    def render_folded(self, weight: str = "sim") -> str:
        """Collapsed-flamegraph text: one ``stack <int us>`` per line.

        Integer microseconds keep the format exact and deterministic
        (for ``weight="sim"``); zero-weight stacks are kept so the
        node set itself is visible.
        """
        lines = [f"{stack} {round(seconds * 1e6):d}"
                 for stack, seconds in self.folded(weight).items()]
        return "\n".join(lines) + ("\n" if lines else "")

    def render_tree(self, weight: str = "sim",
                    include_wall: bool = False) -> str:
        """Aligned tree of total/self cost per node.

        Totals include descendants; self is the node's own cost.
        Deterministic for ``weight="sim"`` — wall columns are opt-in
        via ``include_wall`` because they never reproduce exactly.
        """
        _check_weight(weight)
        totals: dict[tuple[str, ...], list[float]] = {}
        for path, node in self._nodes.items():
            weight_value = node.sim if weight == "sim" else node.wall
            wall_value = node.wall
            for depth in range(1, len(path) + 1):
                entry = totals.setdefault(path[:depth], [0.0, 0.0, 0.0, 0])
                entry[0] += weight_value
                entry[1] += wall_value
            entry = totals[path]
            entry[2] += weight_value
            entry[3] += node.count
        if not totals:
            return "(profiler is empty)\n"
        unit = "sim-s" if weight == "sim" else "wall-s"
        header = f"{'component':<40} {unit + ' total':>12} {'self':>12} {'count':>7}"
        if include_wall:
            header += f" {'wall total':>12}"
        lines = [header, "-" * len(header)]
        for path in sorted(totals):
            total_w, total_wall, self_w, count = totals[path]
            label = "  " * (len(path) - 1) + path[-1]
            row = (f"{label:<40} {total_w:>12.6f} {self_w:>12.6f} "
                   f"{count:>7d}")
            if include_wall:
                row += f" {total_wall:>12.6f}"
            lines.append(row)
        return "\n".join(lines) + "\n"

    def speedscope(self, name: str = "harvest-profile",
                   weight: str = "sim") -> dict:
        """The profile as a speedscope.app "sampled" document.

        Each folded stack becomes one sample whose weight is its self
        cost in microseconds; open https://speedscope.app and drop the
        exported file on it.
        """
        _check_weight(weight)
        frames: list[dict] = []
        frame_index: dict[str, int] = {}
        samples: list[list[int]] = []
        weights: list[float] = []
        for path, node in sorted(self._nodes.items()):
            stack = []
            for part in path:
                idx = frame_index.get(part)
                if idx is None:
                    idx = frame_index[part] = len(frames)
                    frames.append({"name": part})
                stack.append(idx)
            samples.append(stack)
            weights.append(
                round((node.sim if weight == "sim" else node.wall)
                      * 1e6))
        end = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [{
                "type": "sampled",
                "name": f"{name} ({weight})",
                "unit": "microseconds",
                "startValue": 0,
                "endValue": end,
                "samples": samples,
                "weights": weights,
            }],
            "name": name,
            "exporter": "repro.serving.profiler",
        }

    def export_speedscope(self, name: str = "harvest-profile",
                          weight: str = "sim") -> str:
        """``speedscope()`` serialized as stable JSON text."""
        return json.dumps(self.speedscope(name, weight),
                          sort_keys=True,
                          separators=(",", ":")) + "\n"


def _check_weight(weight: str) -> None:
    if weight not in _WEIGHTS:
        raise ValueError(
            f"unknown weight {weight!r}; expected one of {_WEIGHTS}")
