"""Load generators for the serving experiments.

* :class:`OpenLoopClient` — Poisson arrivals at a fixed rate, the online
  -inference streaming pattern (Section 2.2.1): requests arrive whether or
  not the server keeps up, so queues grow when the offered load exceeds
  capacity.
* :class:`ClosedLoopClient` — a fixed number of in-flight requests, each
  reissued on completion: the offline batch-processing pattern
  (Section 2.2.2) and the standard way to measure peak throughput.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.serving.request import Request, Response
from repro.serving.server import TritonLikeServer
from repro.serving.tracectx import TraceContext


class OpenLoopClient:
    """Poisson-arrival request stream.

    With ``trace=True`` every issued request carries a fresh
    :class:`~repro.serving.tracectx.TraceContext` (ids from a
    client-local counter, so runs replay byte-identically); the serving
    layers add their spans and the contexts accumulate in ``traces``.
    """

    def __init__(self, server: TritonLikeServer, model_name: str,
                 rate_per_second: float, num_requests: int,
                 images_per_request: int = 1, seed: int = 0,
                 trace: bool = False):
        if rate_per_second <= 0:
            raise ValueError("arrival rate must be positive")
        if num_requests < 1:
            raise ValueError("need at least one request")
        self.server = server
        self.model_name = model_name
        self.images_per_request = images_per_request
        self.trace = trace
        self.traces: list[TraceContext] = []
        self._next_trace_id = itertools.count(1)
        self._c_issued = server.metrics.counter(
            "client_requests_issued_total",
            "Requests issued by load generators, by client kind.",
            ).labels(client="open_loop", model=model_name)
        rng = np.random.default_rng(seed)
        gaps = rng.exponential(1.0 / rate_per_second, size=num_requests)
        self.arrival_times = np.cumsum(gaps)

    def start(self) -> None:
        """Schedule every arrival on the server's simulator."""
        for t in self.arrival_times:
            self.server.sim.schedule_at(float(t), self._issue)

    def _issue(self) -> None:
        self._c_issued.inc()
        request = Request(self.model_name,
                          num_images=self.images_per_request)
        if self.trace:
            ctx = TraceContext(next(self._next_trace_id),
                               start=self.server.sim.now)
            ctx.baggage["model"] = self.model_name
            request.trace = ctx
            self.traces.append(ctx)
        self.server.submit(request)


class ClosedLoopClient:
    """Fixed-concurrency request loop."""

    def __init__(self, server: TritonLikeServer, model_name: str,
                 concurrency: int, num_requests: int,
                 images_per_request: int = 1):
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if num_requests < concurrency:
            raise ValueError("num_requests must cover the initial window")
        self.server = server
        self.model_name = model_name
        self.concurrency = concurrency
        self.images_per_request = images_per_request
        self._remaining = num_requests
        self.completed: list[Response] = []
        self._c_issued = server.metrics.counter(
            "client_requests_issued_total",
            "Requests issued by load generators, by client kind.",
            ).labels(client="closed_loop", model=model_name)

    def start(self) -> None:
        """Prime the window and chain re-issues on completions."""
        self.server.on_response(self._handle_response)
        for _ in range(self.concurrency):
            self._issue()

    def _issue(self) -> None:
        if self._remaining <= 0:
            return
        self._remaining -= 1
        self._c_issued.inc()
        self.server.submit(Request(self.model_name,
                                   num_images=self.images_per_request))

    def _handle_response(self, response: Response) -> None:
        if response.request.model_name == self.model_name:
            self.completed.append(response)
            self._issue()
