"""Serving substrate: a Triton-like server on a discrete-event simulator.

"Backend request orchestration is currently provided by the NVIDIA Triton
Server" (Section 3).  The experiments depend on Triton's *scheduling
semantics* — dynamic batching, request queueing, concurrent backend
instances, and frontend/backend decoupling — rather than its
implementation, so this package reproduces those semantics exactly on a
deterministic discrete-event core:

* :mod:`repro.serving.events` — the simulator (event heap, virtual clock);
* :mod:`repro.serving.request` — request/response types;
* :mod:`repro.serving.batcher` — Triton's dynamic batcher (max batch,
  max queue delay, preferred sizes);
* :mod:`repro.serving.instance` — backend instances wrapping a service
  -time model (an engine or a preprocessing framework);
* :mod:`repro.serving.server` — the frontend: model repository, ensemble
  routing (preprocess → infer), submission API;
* :mod:`repro.serving.client` — open-loop (Poisson) and closed-loop load
  generators;
* :mod:`repro.serving.fluid` — hybrid fluid/DES replay: a regime
  controller that fast-forwards deep-saturation stretches with a
  vectorized Lindley recursion and hands queue state back losslessly;
* :mod:`repro.serving.metrics` — latency percentiles and throughput
  accounting;
* :mod:`repro.serving.observability` — live Prometheus-style registry
  (counters/gauges/histograms on the simulator clock) and the
  time-series sampler driving queue-depth/utilization timelines;
* :mod:`repro.serving.tracectx` — distributed-tracing contexts carried
  by requests across continuum and serving layers;
* :mod:`repro.serving.trace_export` — Chrome/Perfetto trace-event JSON
  export, critical-path analysis over those contexts, and the
  exemplar-joined tail-latency attribution report;
* :mod:`repro.serving.profiler` — sim-time/wall-clock cost attribution
  across the component hierarchy with folded-stack and speedscope
  export;
* :mod:`repro.serving.slo` — error budgets and multi-window burn-rate
  alerting over the registry's latency histograms.
"""

from repro.serving.events import Simulator, Event
from repro.serving.request import Request, Response
from repro.serving.batcher import (
    BatcherConfig,
    DynamicBatcher,
    QueueFullError,
)
from repro.serving.instance import BackendInstance, ServiceTimeFn
from repro.serving.server import (
    EnsembleConfig,
    ModelConfig,
    TritonLikeServer,
)
from repro.serving.client import (
    OpenLoopClient,
    ClosedLoopClient,
)
from repro.serving.fluid import (
    FluidConfig,
    FluidInterval,
    HybridReplayer,
    render_regime_timeline,
)
from repro.serving.metrics import LatencyStats, summarize_responses
from repro.serving.faults import FaultModel
from repro.serving.repository import ModelRepository, RepositoryEntry
from repro.serving.traces import (
    ArrivalTrace,
    TraceReplayer,
    burst_trace,
    diurnal_trace,
)
from repro.serving.exporter import (
    export_metrics,
    export_registry,
    parse_exemplars,
    parse_metrics,
)
from repro.serving.observability import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SamplePoint,
    TimeSeriesSampler,
)
from repro.serving.tracing import (
    RequestTrace,
    Span,
    render_gantt,
    stage_breakdown,
    trace_of,
)
from repro.serving.profiler import ProfileScope, SimProfiler
from repro.serving.tracectx import SpanPool, SpanRecord, TraceContext
from repro.serving.trace_export import (
    critical_path,
    critical_path_summary,
    explain_tail,
    export_chrome_trace,
    render_attribution,
    render_critical_path,
    validate_chrome_trace,
)
from repro.serving.slo import BurnAlert, SLOConfig, SLOMonitor

__all__ = [
    "Simulator",
    "Event",
    "Request",
    "Response",
    "BatcherConfig",
    "DynamicBatcher",
    "QueueFullError",
    "BackendInstance",
    "ServiceTimeFn",
    "EnsembleConfig",
    "ModelConfig",
    "TritonLikeServer",
    "OpenLoopClient",
    "ClosedLoopClient",
    "FluidConfig",
    "FluidInterval",
    "HybridReplayer",
    "render_regime_timeline",
    "LatencyStats",
    "summarize_responses",
    "FaultModel",
    "ModelRepository",
    "RepositoryEntry",
    "ArrivalTrace",
    "TraceReplayer",
    "burst_trace",
    "diurnal_trace",
    "export_metrics",
    "export_registry",
    "parse_exemplars",
    "parse_metrics",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SamplePoint",
    "TimeSeriesSampler",
    "RequestTrace",
    "Span",
    "render_gantt",
    "stage_breakdown",
    "trace_of",
    "ProfileScope",
    "SimProfiler",
    "SpanPool",
    "SpanRecord",
    "TraceContext",
    "critical_path",
    "critical_path_summary",
    "explain_tail",
    "export_chrome_trace",
    "render_attribution",
    "render_critical_path",
    "validate_chrome_trace",
    "BurnAlert",
    "SLOConfig",
    "SLOMonitor",
]
