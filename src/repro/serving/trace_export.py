"""Chrome/Perfetto trace-event export and critical-path analysis.

Two consumers for the spans :mod:`repro.serving.tracectx` accumulates:

* :func:`export_chrome_trace` — the Chrome trace-event JSON format
  (``chrome://tracing``, https://ui.perfetto.dev): one process, one
  timeline row (tid) per request, a complete-event (``"ph": "X"``) per
  span and an instant-event (``"ph": "i"``) per decision mark.  The
  output is deterministic and byte-identical across runs: timestamps
  come from the simulator clock, ids from per-run counters, and the
  JSON is serialized with sorted keys and fixed separators.
* :func:`critical_path` / :func:`critical_path_summary` — walks each
  trace's span DAG and attributes every instant of the request's
  lifetime to the span that bounds it (latest-started covering span;
  uncovered time books to ``untracked``), then reports which stage
  bounds the p50/p95/p99 request — the paper's "where did the 16.7 ms
  go" question, answered per quantile.
"""

from __future__ import annotations

import json
import math

from repro.serving.tracectx import SpanRecord, TraceContext

#: Seconds -> trace-event microseconds, rounded to nanoseconds so float
#: formatting stays stable and readable.
def _us(seconds: float) -> float:
    value = round(seconds * 1e6, 3)
    return value if value % 1 else int(value)


def chrome_trace_events(traces: list[TraceContext],
                        process_name: str = "harvest-continuum",
                        ) -> list[dict]:
    """The ``traceEvents`` list for a set of traces.

    Each trace renders on its own thread row (``tid`` = trace id);
    unclosed spans (work still in flight when the simulation stopped)
    are skipped.  Event order is deterministic: metadata first, then
    traces in input order, spans in creation order.
    """
    events: list[dict] = [{
        "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
        "args": {"name": process_name},
    }]
    for trace in traces:
        label = f"request {trace.trace_id}"
        model = trace.baggage.get("model")
        if model:
            label += f" {model}"
        if trace.status:
            label += f" [{trace.status}]"
        events.append({
            "ph": "M", "pid": 1, "tid": trace.trace_id,
            "name": "thread_name", "args": {"name": label},
        })
        for span in trace.spans:
            if span.end is None:
                continue
            args = dict(span.args)
            if span.duration == 0 and not _is_interval(span):
                # Decision marks (admission, route, batch_dispatch, ...)
                # render as thread-scoped instants.
                events.append({
                    "ph": "i", "s": "t", "pid": 1,
                    "tid": trace.trace_id, "ts": _us(span.start),
                    "name": span.name, "cat": span.category,
                    "args": args,
                })
                continue
            events.append({
                "ph": "X", "pid": 1, "tid": trace.trace_id,
                "ts": _us(span.start), "dur": _us(span.duration),
                "name": span.name, "cat": span.category,
                "args": args,
            })
    return events


#: Span names that are true intervals even when they collapse to zero
#: duration (e.g. a batch dispatched the instant it was enqueued).
_INTERVAL_NAMES = frozenset({
    "request", "queue_wait", "execute", "uplink", "downlink",
    "edge_preprocess", "edge_inference", "cache_hit",
})


def _is_interval(span: SpanRecord) -> bool:
    return span.name in _INTERVAL_NAMES


def export_chrome_trace(traces: list[TraceContext],
                        process_name: str = "harvest-continuum") -> str:
    """Serialize traces as deterministic Chrome trace-event JSON."""
    payload = {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(traces,
                                           process_name=process_name),
    }
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")) + "\n"


def validate_chrome_trace(text: str) -> dict:
    """Schema-check trace-event JSON; returns the parsed payload.

    Raises :class:`ValueError` on anything Perfetto would refuse:
    missing ``traceEvents``, unknown phase codes, negative or missing
    timestamps/durations, or metadata events without a name.  Used by
    the CI gate after the ``repro trace`` smoke run.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or \
            not isinstance(payload.get("traceEvents"), list):
        raise ValueError("payload must be an object with a "
                         "'traceEvents' list")
    for index, event in enumerate(payload["traceEvents"]):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        phase = event.get("ph")
        if phase not in ("M", "X", "i", "I"):
            raise ValueError(f"{where} has unsupported phase {phase!r}")
        if phase == "M":
            if event.get("name") not in ("process_name", "thread_name"):
                raise ValueError(
                    f"{where} metadata name {event.get('name')!r}")
            if not isinstance(event.get("args", {}).get("name"), str):
                raise ValueError(f"{where} metadata lacks args.name")
            continue
        for field in ("name", "cat"):
            if not isinstance(event.get(field), str):
                raise ValueError(f"{where} lacks string {field!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where} has bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where} has bad dur {dur!r}")
    return payload


# ----------------------------------------------------------------------
# Critical-path analysis
# ----------------------------------------------------------------------
def critical_path(trace: TraceContext) -> dict[str, float]:
    """Attribute every instant of the trace to the span bounding it.

    Returns ``{span_name: seconds}`` summing exactly to the trace's
    latency.  Where child spans overlap (ensemble fan-out, a retry's
    queue wait overlapping a sibling's execution) the *latest-started*
    covering span wins — the stage the request most recently entered is
    the one bounding progress.  Time covered by no child span books to
    ``"untracked"``.
    """
    if not trace.closed:
        raise ValueError("cannot analyze an open trace")
    lo, hi = trace.root.start, trace.root.end
    out: dict[str, float] = {}
    if hi <= lo:
        return out
    intervals = [
        s for s in trace.children()
        if s.closed and s.end > s.start
    ]
    bounds = sorted({lo, hi, *(
        t for s in intervals for t in (s.start, s.end)
        if lo < t < hi)})
    for left, right in zip(bounds, bounds[1:]):
        covering = [s for s in intervals
                    if s.start <= left and s.end >= right]
        if covering:
            winner = max(covering, key=lambda s: (s.start, s.span_id))
            name = winner.name
        else:
            name = "untracked"
        out[name] = out.get(name, 0.0) + (right - left)
    return out


def critical_path_summary(traces: list[TraceContext],
                          quantiles: tuple[float, ...] = (0.5, 0.95,
                                                          0.99),
                          ) -> dict[str, dict]:
    """Which stage bounds the p50/p95/p99 request, plus the overall mix.

    For each quantile the *witness* request (the order statistic of the
    latency distribution) is decomposed with :func:`critical_path`;
    ``"overall"`` aggregates attribution across every closed trace.
    Each entry carries ``latency_seconds``, ``stages`` (name ->
    seconds), and ``tracked_fraction`` (1 - untracked share).
    """
    closed = [t for t in traces if t.closed]
    if not closed:
        raise ValueError("no closed traces to analyze")
    ranked = sorted(closed, key=lambda t: (t.latency, t.trace_id))
    out: dict[str, dict] = {}
    for q in quantiles:
        witness = ranked[max(0, math.ceil(q * len(ranked)) - 1)]
        stages = critical_path(witness)
        out[f"p{q * 100:g}"] = _entry(witness.latency, stages,
                                      trace_id=witness.trace_id)
    overall: dict[str, float] = {}
    total = 0.0
    for trace in closed:
        for name, seconds in critical_path(trace).items():
            overall[name] = overall.get(name, 0.0) + seconds
        total += trace.latency
    out["overall"] = _entry(total, overall)
    return out


def _entry(latency: float, stages: dict[str, float],
           trace_id: int | None = None) -> dict:
    tracked = sum(v for k, v in stages.items() if k != "untracked")
    entry = {
        "latency_seconds": latency,
        "stages": stages,
        "tracked_fraction": (tracked / latency) if latency > 0 else 1.0,
    }
    if trace_id is not None:
        entry["trace_id"] = trace_id
    return entry


def explain_tail(registry, traces: list[TraceContext],
                 histogram: str = "continuum_latency_seconds",
                 quantile: float = 0.99,
                 intervals=None, sim_end: float | None = None) -> dict:
    """Answer "why is the p99 high" by joining metrics with traces.

    Three observability layers meet here:

    1. the *histogram* (aggregated over its label sets) locates the
       tail — the first bucket at which cumulative count reaches the
       requested quantile — and yields the exemplar witnesses stamped
       on tail buckets (``(value, trace_id, sim_time)``, recorded when
       the family has exemplars enabled);
    2. each exemplar's trace id joins back to a concrete closed trace,
       whose :func:`critical_path` decomposition attributes the
       latency to stages;
    3. optionally, the fluid-regime ``intervals`` of a
       :class:`~repro.serving.fluid.HybridReplayer` summarize how much
       of the run was integrated analytically (``sim_end`` scales the
       share; defaults to the last interval's resume time).

    Returns a deterministic report dict; render with
    :func:`render_attribution`.  The stage breakdown aggregates over
    the joined exemplar witnesses, falling back to the quantile
    witness from :func:`critical_path_summary` when no exemplar joins
    (exemplars disabled, or their traces sampled out).
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must lie in (0, 1)")
    closed = [t for t in traces if t.closed]
    if not closed:
        raise ValueError("no closed traces to explain")
    hist = registry.get(histogram) if registry is not None else None
    if hist is None:
        raise KeyError(f"histogram {histogram!r} is not in the registry")
    n_buckets = len(hist.buckets) + 1
    aggregate = [0] * n_buckets
    for _key, series in hist.items():
        for index, count in enumerate(series.bucket_counts):
            aggregate[index] += count
    total = sum(aggregate)
    threshold = None
    tail_index = n_buckets - 1
    tail_count = 0
    if total:
        target = math.ceil(quantile * total)
        running = 0
        for index, count in enumerate(aggregate):
            running += count
            if running >= target:
                tail_index = index
                break
        threshold = (hist.buckets[tail_index - 1]
                     if tail_index > 0 else 0.0)
        tail_count = sum(aggregate[tail_index:])
    exemplars: list[dict] = []
    for key, series in hist.items():
        if not series.exemplars:
            continue
        for index in sorted(series.exemplars):
            if index < tail_index:
                continue
            value, trace_id, stamp = series.exemplars[index]
            bound = (hist.buckets[index] if index < len(hist.buckets)
                     else float("inf"))
            exemplars.append({
                "bucket_le": bound, "value": value,
                "trace_id": trace_id, "sim_time": stamp,
                "labels": dict(key)})
    exemplars.sort(key=lambda e: (-e["value"], e["trace_id"]))
    by_id = {str(t.trace_id): t for t in closed}
    witnesses: list[dict] = []
    stages_agg: dict[str, float] = {}
    for exemplar in exemplars:
        trace = by_id.get(exemplar["trace_id"])
        if trace is None:
            continue
        stages = critical_path(trace)
        for name, seconds in stages.items():
            stages_agg[name] = stages_agg.get(name, 0.0) + seconds
        top = (max(stages.items(), key=lambda kv: (kv[1], kv[0]))[0]
               if stages else "untracked")
        witnesses.append({
            "trace_id": trace.trace_id,
            "latency_seconds": trace.latency,
            "stages": stages,
            "top_stage": top})
    quantile_key = f"p{quantile * 100:g}"
    witness = critical_path_summary(
        closed, quantiles=(quantile,))[quantile_key]
    if not stages_agg:
        stages_agg = dict(witness["stages"])
    agg_total = sum(stages_agg.values())
    stage_shares = [
        {"stage": name, "seconds": seconds,
         "share": seconds / agg_total if agg_total > 0 else 0.0}
        for name, seconds in sorted(stages_agg.items(),
                                    key=lambda kv: (-kv[1], kv[0]))]
    report = {
        "histogram": histogram,
        "quantile": quantile,
        "observations": total,
        "threshold_seconds": threshold,
        "tail_observations": tail_count,
        "witness": witness,
        "tail_exemplars": exemplars,
        "exemplar_witnesses": witnesses,
        "stages": stage_shares,
    }
    if intervals is not None:
        fluid_total = sum(iv.resumed - iv.entered for iv in intervals)
        end = sim_end
        if end is None:
            end = max((iv.resumed for iv in intervals), default=0.0)
        report["regime"] = {
            "fluid_intervals": len(intervals),
            "fluid_seconds": fluid_total,
            "sim_seconds": end,
            "fluid_share": (fluid_total / end
                            if end and end > 0 else 0.0),
        }
    return report


def render_attribution(report: dict) -> str:
    """Deterministic text rendering of an :func:`explain_tail` report."""
    quantile_key = f"p{report['quantile'] * 100:g}"
    lines: list[str] = []
    threshold = report["threshold_seconds"]
    if threshold is None:
        lines.append(
            f"why is {quantile_key} high: no observations in "
            f"{report['histogram']}")
    else:
        lines.append(
            f"why is {quantile_key} high: {report['histogram']} tail "
            f"starts past {threshold * 1e3:g} ms "
            f"({report['tail_observations']} of "
            f"{report['observations']} observations)")
    witness = report["witness"]
    lines.append(
        f"{quantile_key} witness: trace {witness['trace_id']} at "
        f"{witness['latency_seconds'] * 1e3:.2f} ms "
        f"(tracked {witness['tracked_fraction']:.0%})")
    lines.append("tail stage breakdown:")
    for entry in report["stages"]:
        lines.append(
            f"  {entry['stage']:<16s} {entry['seconds'] * 1e3:9.2f}ms "
            f"{entry['share']:5.0%}")
    if report["tail_exemplars"]:
        lines.append("tail exemplars (bucket -> trace witness):")
        for exemplar in report["tail_exemplars"]:
            bound = exemplar["bucket_le"]
            bound_text = ("+Inf" if bound == float("inf")
                          else f"{bound:g}")
            lines.append(
                f"  le={bound_text:<8s} trace "
                f"{exemplar['trace_id']:<6s} "
                f"{exemplar['value'] * 1e3:9.2f}ms "
                f"@ t={exemplar['sim_time']:.3f}s")
    regime = report.get("regime")
    if regime is not None:
        plural = "es" if regime["fluid_intervals"] != 1 else ""
        lines.append(
            f"regime: {regime['fluid_intervals']} fluid "
            f"stretch{plural}, {regime['fluid_seconds']:.3f} of "
            f"{regime['sim_seconds']:.3f} sim-s fluid "
            f"({regime['fluid_share']:.0%})")
    return "\n".join(lines) + "\n"


def render_critical_path(summary: dict[str, dict]) -> str:
    """Text table: stages as rows, quantile witnesses as columns.

    Stages order by their share of the widest-latency column; each cell
    shows milliseconds and the column share.
    """
    columns = list(summary)
    names: set[str] = set()
    for entry in summary.values():
        names.update(entry["stages"])
    anchor = ("p95" if "p95" in summary else columns[-1])
    order = sorted(names, key=lambda n: (
        -summary[anchor]["stages"].get(n, 0.0), n))
    header = f"{'stage':<16s}" + "".join(f" {c:>16s}" for c in columns)
    lines = [header]
    for name in order:
        row = f"{name:<16s}"
        for column in columns:
            entry = summary[column]
            seconds = entry["stages"].get(name, 0.0)
            total = entry["latency_seconds"]
            share = seconds / total if total > 0 else 0.0
            row += f" {seconds * 1e3:9.2f}ms {share:4.0%}"
        lines.append(row)
    totals = f"{'total':<16s}"
    tracked = f"{'tracked':<16s}"
    for column in columns:
        entry = summary[column]
        totals += f" {entry['latency_seconds'] * 1e3:9.2f}ms     "
        tracked += f" {entry['tracked_fraction']:>14.1%} "
    lines.append(totals)
    lines.append(tracked)
    return "\n".join(lines) + "\n"
