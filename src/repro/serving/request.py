"""Request and response types flowing through the serving layer."""

from __future__ import annotations

import dataclasses
import itertools

_request_ids = itertools.count(1)


@dataclasses.dataclass
class Request:
    """One frontend inference request.

    ``num_images`` is the request's payload size; the dynamic batcher may
    coalesce several requests into one backend execution.  ``stages_left``
    tracks the remaining ensemble stages (e.g. preprocess → infer).
    """

    model_name: str
    num_images: int = 1
    arrival_time: float = 0.0
    #: Scheduling priority (higher = more urgent); Triton's priority
    #: levels.  Real-time requests outrank offline batch work queued on
    #: the same model.
    priority: int = 0
    request_id: int = dataclasses.field(
        default_factory=lambda: next(_request_ids))
    #: Timestamps stamped by the server as the request advances.
    stage_times: dict[str, float] = dataclasses.field(default_factory=dict)
    #: Optional distributed-tracing context (see
    #: :mod:`repro.serving.tracectx`).  None = tracing off: every
    #: instrumentation point is a no-op and the request behaves exactly
    #: as before.
    trace: object | None = None
    #: Optional perceptual fingerprint of the request's frame (a
    #: :class:`~repro.cache.keys.FrameFingerprint`).  None = caching
    #: off for this request: every cache consultation point is a no-op.
    cache_key: object | None = None

    def __post_init__(self) -> None:
        if self.num_images < 1:
            raise ValueError("a request must carry at least one image")


@dataclasses.dataclass(frozen=True)
class Response:
    """A completed (or rejected/failed) request."""

    request: Request
    completion_time: float
    #: "ok", "rejected" (queue-full backpressure), "failed" (backend
    #: fault that exhausted its retries), or "degraded" (an ensemble
    #: fan-out where at least one branch was rejected but others still
    #: produced results — distinguishable from a full rejection).
    status: str = "ok"

    @property
    def ok(self) -> bool:
        """Whether the request completed successfully."""
        return self.status == "ok"

    @property
    def degraded(self) -> bool:
        """Whether this is a partial ensemble result."""
        return self.status == "degraded"

    @property
    def latency(self) -> float:
        """End-to-end seconds from arrival to completion."""
        return self.completion_time - self.request.arrival_time

    @property
    def queue_delay(self) -> float:
        """Seconds spent queued before the first backend execution."""
        first_start = min(
            (t for name, t in self.request.stage_times.items()
             if name.endswith(":start")), default=self.completion_time)
        return first_start - self.request.arrival_time
