"""Request tracing: per-stage span timelines.

Every request accumulates stage timestamps as it moves through backends;
this module turns them into spans (the OpenTelemetry-style view), a text
Gantt rendering for terminals, and aggregate per-stage breakdowns — the
tool for answering "where did the 30 ms go?" (Section 3.1's latency
decomposition: dataset preprocessing, model preprocessing, inference).
"""

from __future__ import annotations

import dataclasses

from repro.serving.request import Response


@dataclasses.dataclass(frozen=True)
class Span:
    """One backend execution *attempt* within a request's lifetime.

    Retried executions get their own spans: the stage key carries an
    ``@<attempt>`` suffix (``vit_small#0@1`` is the first retry), so a
    request that failed and was re-executed shows both the occupied
    detection window and the successful run.
    """

    stage: str          # instance name, e.g. "vit_small#0" or "m#0@1"
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Span length in seconds."""
        return self.end - self.start

    @property
    def model(self) -> str:
        """The repository model this span executed on."""
        return self.stage.split("#")[0]

    @property
    def attempt(self) -> int:
        """Execution attempt index (0 = first try, 1+ = retries)."""
        if "@" in self.stage:
            return int(self.stage.rsplit("@", 1)[1])
        return 0


@dataclasses.dataclass(frozen=True)
class RequestTrace:
    """The full timeline of one request."""

    request_id: int
    arrival: float
    completion: float
    status: str
    spans: tuple[Span, ...]

    @property
    def latency(self) -> float:
        """End-to-end seconds from arrival to completion."""
        return self.completion - self.arrival

    @property
    def queued_seconds(self) -> float:
        """Time not inside any span (queueing + scheduling)."""
        return self.latency - sum(s.duration for s in self.spans)


def trace_of(response: Response) -> RequestTrace:
    """Extract the span timeline from a completed response."""
    request = response.request
    spans = []
    for key, start in request.stage_times.items():
        if not key.endswith(":start"):
            continue
        stage = key[: -len(":start")]
        end = request.stage_times.get(f"{stage}:end")
        if end is None:
            continue  # execution still in flight (response pending)
        spans.append(Span(stage, start, end))
    spans.sort(key=lambda s: (s.start, s.stage))
    return RequestTrace(
        request_id=request.request_id,
        arrival=request.arrival_time,
        completion=response.completion_time,
        status=response.status,
        spans=tuple(spans),
    )


def render_gantt(trace: RequestTrace, width: int = 60) -> str:
    """ASCII Gantt chart of one request's spans.

    A zero-duration trace (a request shed the instant it arrived) has
    no timeline to scale bars against; it renders as a degenerate
    one-column chart — every span a single ``#`` at the origin — rather
    than dividing by the total.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    total = trace.latency
    lines = [f"request {trace.request_id} ({trace.status}): "
             f"{trace.latency * 1e3:.2f} ms "
             f"(queued {trace.queued_seconds * 1e3:.2f} ms)"]
    for span in trace.spans:
        if total <= 0:
            lead, bar = 0, 1
        else:
            lead = int((span.start - trace.arrival) / total * width)
            bar = max(1, int(span.duration / total * width))
        lines.append(f"  {span.stage:20s} "
                     f"{'.' * lead}{'#' * bar}"
                     f" {span.duration * 1e3:.2f} ms")
    return "\n".join(lines)


def stage_breakdown(responses: list[Response]) -> dict[str, dict]:
    """Aggregate per-stage time across requests.

    Stage keys collapse instance indices and attempt suffixes
    (``vit_small#0@1`` → ``vit_small``).  Returns {stage: {count,
    total_seconds, mean_seconds, retried_attempts}} plus a ``"queued"``
    pseudo-stage; ``retried_attempts`` counts the spans that were retry
    executions (attempt >= 1), surfacing how much of a stage's time was
    re-work rather than first-try service.
    """
    if not responses:
        raise ValueError("no responses to aggregate")
    totals: dict[str, list[float]] = {}
    retried: dict[str, int] = {}
    queued: list[float] = []
    for response in responses:
        trace = trace_of(response)
        queued.append(trace.queued_seconds)
        for span in trace.spans:
            totals.setdefault(span.model, []).append(span.duration)
            if span.attempt:
                retried[span.model] = retried.get(span.model, 0) + 1
    out = {
        stage: {
            "count": len(values),
            "total_seconds": sum(values),
            "mean_seconds": sum(values) / len(values),
            "retried_attempts": retried.get(stage, 0),
        }
        for stage, values in totals.items()
    }
    out["queued"] = {
        "count": len(queued),
        "total_seconds": sum(queued),
        "mean_seconds": sum(queued) / len(queued),
        "retried_attempts": 0,
    }
    return out
