"""The Triton-like frontend: model repository, routing, dispatch.

"The HARVEST inference pipeline follows a modular design that decouples
the frontend—which handles diverse task requests—from the backend, which
executes model inference" (Section 3).  :class:`TritonLikeServer` owns a
model repository of :class:`ModelConfig` entries, each with its own
dynamic batcher and one or more backend instances; requests optionally
flow through a preprocessing model first (an ensemble of two backends,
"a single request may trigger multiple backend calls").
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.serving.batcher import (
    BatcherConfig,
    DynamicBatcher,
    QueueFullError,
)
from repro.serving.events import Event, Simulator
from repro.serving.instance import BackendInstance, ServiceTimeFn
from repro.serving.observability import MetricsRegistry
from repro.serving.request import Request, Response


@dataclasses.dataclass
class ModelConfig:
    """One repository entry.

    ``instances`` is Triton's instance-group count: how many copies of
    the backend serve this model concurrently (the paper's
    "multi-instance strategies" recommendation).
    ``preprocess_model`` names another repository entry every request
    must pass through first (ensemble routing).
    """

    name: str
    service_time: ServiceTimeFn
    batcher: BatcherConfig = dataclasses.field(default_factory=BatcherConfig)
    instances: int = 1
    preprocess_model: str | None = None
    #: Optional failure process (see :mod:`repro.serving.faults`).
    fault_model: object | None = None
    #: Retries per request at this stage before it fails outright.
    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.instances < 1:
            raise ValueError("instance count must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


@dataclasses.dataclass(frozen=True)
class EnsembleConfig:
    """A shared-preprocessing fan-out entry.

    "A single request may trigger multiple backend calls to support
    different downstream tasks, which can reuse shared preprocessing
    steps when applicable" (Section 3): one request preprocesses once,
    then every consumer model runs on the shared result; the response
    completes when all consumers have finished.
    """

    name: str
    preprocess_model: str
    consumers: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.consumers:
            raise ValueError("an ensemble needs at least one consumer")
        if len(set(self.consumers)) != len(self.consumers):
            raise ValueError("duplicate consumers in ensemble")


class TritonLikeServer:
    """The serving frontend + scheduler."""

    def __init__(self, sim: Simulator | None = None,
                 registry: MetricsRegistry | None = None):
        self.sim = sim if sim is not None else Simulator()
        #: Live metrics registry stamped on the simulator clock (see
        #: :mod:`repro.serving.observability`).
        self.metrics = (registry if registry is not None
                        else MetricsRegistry(clock=lambda: self.sim.now))
        self._models: dict[str, ModelConfig] = {}
        self._ensembles: dict[str, EnsembleConfig] = {}
        self._batchers: dict[str, DynamicBatcher] = {}
        self._instances: dict[str, list[BackendInstance]] = {}
        self._timer_pending: set[str] = set()
        #: The live queue-delay timer event per stage, so a policy swap
        #: can cancel + re-arm it (see :meth:`reconfigure_batcher`).
        self._timer_events: dict[str, Event] = {}
        self._pending_fanout: dict[int, int] = {}
        #: Rejected-branch count per in-flight fan-out request.
        self._rejected_fanout: dict[int, int] = {}
        #: A draining server stops accepting *new* frontend requests but
        #: finishes everything already queued or executing (the
        #: autoscaler's graceful scale-in path).
        self.draining = False
        #: Optional :class:`~repro.cache.tiers.CacheHierarchy` holding
        #: the cloud preprocessed-tensor tier (see :meth:`attach_cache`).
        self.cache = None
        self._cache_tensor_bytes = 0.0
        self.responses: list[Response] = []
        self._on_response: Callable[[Response], None] | None = None
        #: Optional :class:`~repro.serving.profiler.SimProfiler`; see
        #: :meth:`attach_profiler`.  ``None`` keeps every
        #: instrumentation site on its zero-cost branch.
        self.profiler = None
        #: Whether completed-request latency observations carry
        #: exemplars (see :meth:`enable_exemplars`).
        self._exemplars = False
        m = self.metrics
        self._c_submitted = m.counter(
            "requests_submitted_total", "Requests accepted by model.")
        self._c_images_in = m.counter(
            "images_submitted_total", "Images accepted by model.")
        self._c_responses = m.counter(
            "responses_total", "Completed responses by model and status.")
        self._c_images_done = m.counter(
            "images_completed_total",
            "Images in completed responses by model and status.")
        self._c_rejections = m.counter(
            "rejections_total", "Queue-full rejections per stage.")
        self._c_drain_rejections = m.counter(
            "drain_rejections_total",
            "Requests refused because the server was draining.")
        self._g_draining = m.gauge(
            "server_draining", "1 while the server is draining.")
        self._c_retries = m.counter(
            "retries_total", "Retry dispatches per stage.")
        self._c_exhausted = m.counter(
            "retry_exhausted_total",
            "Requests failed after the retry budget per stage.")
        self._h_latency = m.histogram(
            "request_latency_seconds",
            "End-to-end latency of completed requests per model.")
        # Bound label handles resolved once per (model[, status]) so the
        # per-request accept/respond path never rebuilds label keys.
        self._submit_handles: dict[str, tuple] = {}
        self._respond_handles: dict[tuple[str, str], tuple] = {}

    # ------------------------------------------------------------------
    # Repository management
    # ------------------------------------------------------------------
    def register(self, config: ModelConfig) -> None:
        """Load a model into the repository."""
        if config.name in self._models:
            raise ValueError(f"model {config.name!r} already registered")
        if (config.preprocess_model is not None
                and config.preprocess_model not in self._models):
            raise ValueError(
                f"preprocess model {config.preprocess_model!r} must be "
                "registered before its consumer")
        self._models[config.name] = config
        self._batchers[config.name] = DynamicBatcher(
            config.batcher, metrics=self.metrics, stage=config.name)
        self._instances[config.name] = [
            BackendInstance(f"{config.name}#{i}", config.service_time,
                            self.sim, fault_model=config.fault_model,
                            metrics=self.metrics)
            for i in range(config.instances)
        ]
        if self.profiler is not None:
            # Models loaded after attach_profiler() get the same hooks.
            self._batchers[config.name].profiler = self.profiler
            for instance in self._instances[config.name]:
                instance.profiler = self.profiler

    def register_ensemble(self, config: EnsembleConfig) -> None:
        """Load a shared-preprocessing ensemble.

        The preprocessing model and every consumer must already be
        registered; the ensemble name must not collide with a model.
        """
        if config.name in self._models or config.name in self._ensembles:
            raise ValueError(f"name {config.name!r} already registered")
        for member in (config.preprocess_model, *config.consumers):
            if member not in self._models:
                raise ValueError(
                    f"ensemble member {member!r} is not a registered "
                    "model")
        self._ensembles[config.name] = config

    def unregister(self, name: str) -> None:
        """Unload an idle model from the repository (Triton's unload).

        Refuses while the model still has queued or executing work, or
        while another registered model or ensemble references it (as a
        preprocess stage or consumer) — unloading those would strand
        in-flight routing.  Any armed queue-delay timer is cancelled.
        """
        if name not in self._models:
            raise KeyError(f"unknown model {name!r}")
        if len(self._batchers[name]) or self.busy_instances(name):
            raise RuntimeError(
                f"model {name!r} still has queued or executing work")
        for other, config in self._models.items():
            if other != name and config.preprocess_model == name:
                raise ValueError(
                    f"model {name!r} is the preprocess stage of "
                    f"{other!r}")
        for ensemble in self._ensembles.values():
            if name == ensemble.preprocess_model or \
                    name in ensemble.consumers:
                raise ValueError(
                    f"model {name!r} is a member of ensemble "
                    f"{ensemble.name!r}")
        stale = self._timer_events.pop(name, None)
        if stale is not None:
            self.sim.cancel(stale)
        self._timer_pending.discard(name)
        del self._models[name]
        del self._batchers[name]
        del self._instances[name]

    def model_names(self) -> list[str]:
        """Models loaded in the repository."""
        return sorted(self._models)

    def on_response(self, callback: Callable[[Response], None]) -> None:
        """Register a completion callback (e.g. closed-loop clients)."""
        self._on_response = callback

    def attach_profiler(self, profiler) -> None:
        """Wire a :class:`~repro.serving.profiler.SimProfiler` through
        the whole serving stack.

        Propagates to the simulator (the ``sim;run`` wall scope), every
        loaded batcher (``serve;<stage>;queue_wait``), and every backend
        instance (``serve;<stage>;execute`` / ``fault``); models
        registered later inherit it.  Attaching a *disabled* profiler
        is the supported always-on wiring: each site guards on the
        attribute and a disabled profiler's methods are O(1) no-ops.
        """
        self.profiler = profiler
        self.sim.profiler = profiler
        for batcher in self._batchers.values():
            batcher.profiler = profiler
        for instances in self._instances.values():
            for instance in instances:
                instance.profiler = profiler

    def enable_exemplars(self) -> None:
        """Record request-latency exemplars for traced requests.

        Enables exemplars on the ``request_latency_seconds`` family;
        each completed traced request then stamps its
        ``(latency, trace_id, sim_time)`` witness on the bucket it
        lands in, linking the aggregate histogram back to a concrete
        trace (see :func:`repro.serving.trace_export.explain_tail`).
        """
        self._exemplars = True
        self._h_latency.enable_exemplars()

    def attach_cache(self, cache, tensor_bytes: float = 602112.0) -> None:
        """Enable the cloud preprocessed-tensor cache on this server.

        ``cache`` is a :class:`~repro.cache.tiers.CacheHierarchy`; its
        ``cloud_tensor`` tier is consulted when a fingerprinted request
        (``request.cache_key``) routes through a preprocess stage — a
        hit enqueues straight into the consumer model(s), skipping the
        preprocess queue and execution, and every completed preprocess
        output is inserted for the frames that follow.
        ``tensor_bytes`` is the per-image size charged for a cached
        tensor (default: a 224x224x3 float32 activation).
        """
        if tensor_bytes <= 0:
            raise ValueError("tensor_bytes must be positive")
        self.cache = cache
        self._cache_tensor_bytes = float(tensor_bytes)

    def _cache_lookup_tensor(self, request: Request) -> bool:
        """Whether the cloud tensor tier already holds this frame."""
        if self.cache is None or request.cache_key is None:
            return False
        from repro.cache.tiers import CLOUD_TENSOR

        value = self.cache.lookup(CLOUD_TENSOR, request.cache_key,
                                  trace=request.trace, now=self.sim.now)
        return value is not None

    def _cache_insert_tensor(self, request: Request) -> None:
        """Make a completed preprocess output reusable."""
        if self.cache is None or request.cache_key is None:
            return
        from repro.cache.tiers import CLOUD_TENSOR

        self.cache.insert(
            CLOUD_TENSOR, request.cache_key, value=request.request_id,
            size_bytes=self._cache_tensor_bytes * request.num_images)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Accept a frontend request at the current virtual time.

        A draining server refuses new work outright (the request gets an
        immediate ``rejected`` response); routing layers are expected to
        stop sending before this fires, so the counter doubles as a
        drain-correctness alarm.
        """
        request.arrival_time = self.sim.now
        if self.draining:
            self._c_drain_rejections.inc(model=request.model_name)
            if request.trace is not None:
                request.trace.instant("drain_reject", self.sim.now,
                                      category="serving",
                                      model=request.model_name)
            self._respond(request, status="rejected")
            return
        model = request.model_name
        handles = self._submit_handles.get(model)
        if handles is None:
            handles = self._submit_handles[model] = (
                self._c_submitted.labels(model=model),
                self._c_images_in.labels(model=model),
            )
        handles[0].inc()
        handles[1].inc(request.num_images)
        if request.model_name in self._ensembles:
            ensemble = self._ensembles[request.model_name]
            if self._cache_lookup_tensor(request):
                # Shared preprocessing already cached: fan out now.
                self._pending_fanout[request.request_id] = len(
                    ensemble.consumers)
                for consumer in ensemble.consumers:
                    self._enqueue(consumer, request)
            else:
                self._enqueue(ensemble.preprocess_model, request)
            return
        if request.model_name not in self._models:
            raise KeyError(
                f"unknown model {request.model_name!r}; loaded: "
                f"{self.model_names()} + ensembles "
                f"{sorted(self._ensembles)}")
        config = self._models[request.model_name]
        first_stage = config.preprocess_model or request.model_name
        if (config.preprocess_model is not None
                and self._cache_lookup_tensor(request)):
            first_stage = request.model_name
        self._enqueue(first_stage, request)

    def _enqueue(self, stage: str, request: Request) -> None:
        try:
            self._batchers[stage].enqueue(request, self.sim.now)
        except QueueFullError:
            self._reject(stage, request)
            return
        self._pump(stage)

    def _reject(self, stage: str, request: Request) -> None:
        """Backpressure path; fan-out branches degrade rather than hang."""
        self._c_rejections.inc(stage=stage)
        if request.trace is not None:
            request.trace.instant("queue_reject", self.sim.now,
                                  category="serving", stage=stage)
        remaining = self._pending_fanout.get(request.request_id)
        if remaining is None:
            self._respond(request, status="rejected")
            return
        # One ensemble branch rejected: account it as done and track how
        # many branches bounced; the final status distinguishes a fully
        # rejected fan-out ("rejected") from one where some consumers
        # still produced results ("degraded").
        rejected = self._rejected_fanout.get(request.request_id, 0) + 1
        if remaining <= 1:
            del self._pending_fanout[request.request_id]
            self._rejected_fanout.pop(request.request_id, None)
            consumers = self._ensembles[request.model_name].consumers
            status = ("rejected" if rejected >= len(consumers)
                      else "degraded")
            self._respond(request, status=status)
        else:
            self._rejected_fanout[request.request_id] = rejected
            self._pending_fanout[request.request_id] = remaining - 1

    def _pump(self, stage: str) -> None:
        """Dispatch ready batches to free instances; arm the delay timer."""
        batcher = self._batchers[stage]
        while batcher.ready(self.sim.now):
            instance = self._free_instance(stage)
            if instance is None:
                return  # all instances busy; completion will re-pump
            batch = batcher.form_batch(self.sim.now)
            instance.execute(
                batch,
                lambda done, s=stage: self._stage_complete(s, done),
                on_failure=lambda failed, s=stage: self._stage_failed(
                    s, failed))
        self._arm_timer(stage)

    def _arm_timer(self, stage: str) -> None:
        """Wake up when the oldest queued request's delay budget expires."""
        batcher = self._batchers[stage]
        deadline = batcher.next_deadline()
        if deadline is None or stage in self._timer_pending:
            return
        self._timer_pending.add(stage)

        def fire() -> None:
            self._timer_pending.discard(stage)
            self._timer_events.pop(stage, None)
            self._pump(stage)

        self._timer_events[stage] = self.sim.schedule(
            max(0.0, deadline - self.sim.now), fire)

    def _free_instance(self, stage: str) -> BackendInstance | None:
        for instance in self._instances[stage]:
            if not instance.busy:
                return instance
        return None

    def _stage_complete(self, stage: str, batch: list[Request]) -> None:
        for request in batch:
            for next_stage in self._next_stages(stage, request):
                self._enqueue(next_stage, request)
        self._pump(stage)  # the freed instance can take more work

    def _next_stages(self, stage: str, request: Request) -> list[str]:
        """Route a request after ``stage``; emits the response when done."""
        ensemble = self._ensembles.get(request.model_name)
        if ensemble is not None:
            if stage == ensemble.preprocess_model:
                # Shared preprocessing done: fan out to every consumer.
                self._cache_insert_tensor(request)
                self._pending_fanout[request.request_id] = len(
                    ensemble.consumers)
                return list(ensemble.consumers)
            if request.request_id not in self._pending_fanout:
                # The request already terminated (a sibling branch
                # failed past its retry budget); drop the late result.
                return []
            remaining = self._pending_fanout[request.request_id] - 1
            if remaining:
                self._pending_fanout[request.request_id] = remaining
                return []
            del self._pending_fanout[request.request_id]
            degraded = self._rejected_fanout.pop(request.request_id,
                                                 0) > 0
            self._respond(request,
                          status="degraded" if degraded else "ok")
            return []

        config = self._models[request.model_name]
        if (config.preprocess_model is not None
                and stage == config.preprocess_model):
            self._cache_insert_tensor(request)
            return [request.model_name]
        self._respond(request)
        return []

    def _stage_failed(self, stage: str, batch: list[Request]) -> None:
        """Retry failed executions; exhaust the budget -> failed status."""
        config = self._models[stage]
        for request in batch:
            attempts = request.stage_times.get(f"{stage}:retries", 0) + 1
            request.stage_times[f"{stage}:retries"] = attempts
            if attempts <= config.max_retries:
                self._c_retries.inc(stage=stage)
                self._enqueue(stage, request)
            else:
                self._c_exhausted.inc(stage=stage)
                pending = self._pending_fanout.pop(request.request_id,
                                                   None)
                if pending is not None:
                    self._rejected_fanout.pop(request.request_id, None)
                self._respond(request, status="failed")
        self._pump(stage)  # the instance is free again

    def _respond(self, request: Request, status: str = "ok") -> None:
        response = Response(request, self.sim.now, status=status)
        if request.trace is not None:
            # Close the root at server completion; the continuum
            # replayer re-closes after the downlink leg (close() allows
            # monotonic extension).
            request.trace.close(self.sim.now, status=status)
        self.responses.append(response)
        key = (request.model_name, status)
        handles = self._respond_handles.get(key)
        if handles is None:
            handles = self._respond_handles[key] = (
                self._c_responses.labels(model=key[0], status=status),
                self._c_images_done.labels(model=key[0], status=status),
                self._h_latency.labels(model=key[0]),
            )
        handles[0].inc()
        handles[1].inc(request.num_images)
        if self._exemplars and request.trace is not None:
            handles[2].observe(response.latency,
                               trace_id=str(request.trace.trace_id))
        else:
            handles[2].observe(response.latency)
        if self._on_response is not None:
            self._on_response(response)

    # ------------------------------------------------------------------
    # Drain lifecycle (graceful scale-in)
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop accepting new frontend requests; keep serving in-flight.

        Everything already queued or executing — including ensemble
        branches, retries, and armed batch timers — runs to completion;
        only *new* :meth:`submit` calls are refused.  Idempotent.
        """
        self.draining = True
        self._g_draining.set(1.0)

    @property
    def is_drained(self) -> bool:
        """Whether a draining server has finished all in-flight work.

        False while not draining: an active server is never "drained".
        """
        return (self.draining
                and self.queue_depth() == 0
                and self.busy_instances() == 0
                and not self._pending_fanout)

    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> list[Response]:
        """Drive the simulation; returns all responses so far."""
        self.sim.run(until=until)
        return self.responses

    def instance_stats(self, model: str) -> list:
        """Per-instance utilization records for a model."""
        return [inst.stats for inst in self._instances[model]]

    def reconfigure_batcher(self, model: str,
                            config: BatcherConfig) -> None:
        """Swap a model's batching policy live (queued work is kept).

        Any armed queue-delay timer was scheduled under the *old*
        policy's deadline; cancel it so the pump below re-arms from the
        new config — otherwise a shorter ``max_queue_delay`` silently
        keeps the old, later deadline until it fires.
        """
        if model not in self._batchers:
            raise KeyError(f"unknown model {model!r}")
        stale = self._timer_events.pop(model, None)
        if stale is not None:
            self.sim.cancel(stale)
            self._timer_pending.discard(model)
        self._batchers[model].config = config
        self._pump(model)

    def batcher_config(self, model: str) -> BatcherConfig:
        """The live batching policy of a model."""
        if model not in self._batchers:
            raise KeyError(f"unknown model {model!r}")
        return self._batchers[model].config

    def model_config(self, model: str) -> ModelConfig:
        """The repository entry for a loaded model."""
        if model not in self._models:
            raise KeyError(f"unknown model {model!r}")
        return self._models[model]

    def inject_faults(self, model: str, fault_model) -> None:
        """Attach a :class:`~repro.serving.faults.FaultModel` to a
        loaded model's instances (chaos testing of a live repository)."""
        if model not in self._models:
            raise KeyError(f"unknown model {model!r}")
        self._models[model].fault_model = fault_model
        for instance in self._instances[model]:
            instance.fault_model = fault_model

    def queued_images(self, model: str | None = None) -> int:
        """Images waiting in queue (one model, or all when None)."""
        if model is not None:
            return self._batchers[model].queued_images
        return sum(b.queued_images for b in self._batchers.values())

    def busy_instances(self, model: str | None = None) -> int:
        """Backend instances currently executing."""
        names = [model] if model is not None else list(self._instances)
        return sum(1 for name in names
                   for inst in self._instances[name] if inst.busy)

    def queue_depth(self, model: str | None = None) -> int:
        """Requests waiting in queue (one model, or all when None)."""
        if model is not None:
            return len(self._batchers[model])
        return sum(len(b) for b in self._batchers.values())

    def total_instances(self, model: str | None = None) -> int:
        """Instance-group size (one model, or the whole pool)."""
        names = [model] if model is not None else list(self._instances)
        return sum(len(self._instances[name]) for name in names)

    def inflight_batches(self) -> int:
        """Batches executing right now (each busy instance holds one)."""
        return self.busy_instances()

    def inflight_images(self, model: str | None = None) -> int:
        """Images inside currently-executing batches."""
        names = [model] if model is not None else list(self._instances)
        return sum(inst.current_images for name in names
                   for inst in self._instances[name])

    # ------------------------------------------------------------------
    # Hybrid fluid/DES state handoff (see :mod:`repro.serving.fluid`)
    # ------------------------------------------------------------------
    def handoff_out(self, model: str) -> list:
        """Detach a model's queued work for a fluid stretch.

        Returns the batcher's :class:`~repro.serving.batcher.
        QueuedRequest` records (original enqueue times and open wait
        spans intact) and cancels the armed queue-delay timer — the
        fluid integrator owns the queue until :meth:`handoff_in`.
        In-flight batches are *not* touched: their completion events
        stay on the heap and fire normally, which is what carries the
        in-flight leg of the state across the boundary.
        """
        if model not in self._batchers:
            raise KeyError(f"unknown model {model!r}")
        stale = self._timer_events.pop(model, None)
        if stale is not None:
            self.sim.cancel(stale)
        self._timer_pending.discard(model)
        return self._batchers[model].extract_queue()

    def handoff_in(self, model: str, queued: list,
                   new_enqueues: int = 0) -> None:
        """Re-attach queue state after a fluid stretch and resume.

        ``queued`` is the exit backlog in enqueue-time order — restored
        originals from :meth:`handoff_out` and/or records synthesized
        for arrivals that landed during the stretch (``new_enqueues``
        of them, for the enqueue counter).  Pumping restarts dispatch
        and re-arms the queue-delay timer from the restored state.
        """
        if model not in self._batchers:
            raise KeyError(f"unknown model {model!r}")
        self._batchers[model].restore_queue(queued,
                                            new_enqueues=new_enqueues)
        self._pump(model)

    def record_fluid_summary(self, model: str, *,
                             submitted_requests: int = 0,
                             submitted_images: int = 0,
                             completed_requests: int = 0,
                             completed_images: int = 0,
                             latencies=None,
                             busy_seconds: float = 0.0) -> None:
        """Fold a fluid-integrated stretch into the serving metrics.

        The fluid regime never materializes per-request objects, so the
        engine reports the stretch in aggregate: submission/response
        counters move in bulk, latency samples ingest through the
        histogram's vectorized path, and the integrated busy time is
        spread evenly across the instance pool so utilization
        accounting matches what the DES would have recorded.
        """
        if model not in self._models:
            raise KeyError(f"unknown model {model!r}")
        if submitted_requests:
            handles = self._submit_handles.get(model)
            if handles is None:
                handles = self._submit_handles[model] = (
                    self._c_submitted.labels(model=model),
                    self._c_images_in.labels(model=model),
                )
            handles[0].inc(submitted_requests)
            handles[1].inc(submitted_images)
        if completed_requests:
            key = (model, "ok")
            handles = self._respond_handles.get(key)
            if handles is None:
                handles = self._respond_handles[key] = (
                    self._c_responses.labels(model=model, status="ok"),
                    self._c_images_done.labels(model=model,
                                               status="ok"),
                    self._h_latency.labels(model=model),
                )
            handles[0].inc(completed_requests)
            handles[1].inc(completed_images)
            if latencies is not None:
                handles[2].observe_many(latencies)
        if busy_seconds:
            instances = self._instances[model]
            share = busy_seconds / len(instances)
            for instance in instances:
                instance.stats.busy_seconds += share
