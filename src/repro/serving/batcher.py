"""Triton-style dynamic batcher.

Triton's dynamic batching collects individually-arriving requests into
larger backend executions, trading queue delay for batch efficiency —
exactly the throughput/latency knob the paper's Fig. 6 analysis tunes.
Semantics reproduced:

* a batch is dispatched immediately when ``max_batch_size`` images are
  queued and an instance is free;
* otherwise dispatch waits at most ``max_queue_delay`` seconds from the
  oldest queued request (then ships whatever is queued);
* optional ``preferred_batch_sizes`` round the dispatch size down to the
  largest preferred size that fits (Triton's preferred-size behaviour);
* with batching disabled the batcher degrades to FIFO single-request
  dispatch (the ablation baseline).
"""

from __future__ import annotations

import dataclasses
from collections import deque

from repro.serving.request import Request


class QueueFullError(RuntimeError):
    """Raised when a bounded queue rejects a request (overload policy)."""

    def __init__(self, model: str, limit: int):
        self.model = model
        self.limit = limit
        super().__init__(
            f"queue for {model!r} is full ({limit} images); request "
            "rejected")


@dataclasses.dataclass(frozen=True)
class BatcherConfig:
    """Dynamic batching policy.

    ``max_queue_size`` bounds queued *images* (Triton's
    ``max_queue_size`` queue policy): past it, new requests are rejected
    immediately rather than queued — the backpressure behaviour an
    overloaded online deployment needs instead of unbounded latency.
    ``0`` means unbounded.
    """

    max_batch_size: int = 64
    max_queue_delay: float = 0.005
    preferred_batch_sizes: tuple[int, ...] = ()
    enabled: bool = True
    max_queue_size: int = 0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_queue_delay < 0:
            raise ValueError("max_queue_delay must be >= 0")
        if any(p < 1 or p > self.max_batch_size
               for p in self.preferred_batch_sizes):
            raise ValueError(
                "preferred batch sizes must lie in [1, max_batch_size]")
        if self.max_queue_size < 0:
            raise ValueError("max_queue_size must be >= 0 (0 = unbounded)")


@dataclasses.dataclass
class QueuedRequest:
    request: Request
    enqueue_time: float
    #: Open ``queue_wait`` span when the request carries a trace
    #: context (closed at dispatch).
    wait_span: object | None = None


class DynamicBatcher:
    """The queue + batch-forming policy for one model.

    With ``metrics`` bound (the server passes its registry and the
    model name as ``stage``), the batcher emits enqueue counters, a
    queue-wait histogram, and a dispatched-batch-size histogram; left
    unbound (direct construction in tests) it stays silent.
    """

    #: Image-count buckets for the dispatched-batch-size histogram.
    SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

    def __init__(self, config: BatcherConfig, metrics=None,
                 stage: str | None = None):
        self.config = config
        self._queue: deque[QueuedRequest] = deque()
        #: Running image count across queued requests, maintained at
        #: enqueue/dispatch so the per-event ``ready`` checks and the
        #: time-series sampler never walk the queue.
        self._queued_images = 0
        self._stage = stage if stage is not None else ""
        if metrics is not None:
            # Stage is fixed per batcher: bind the label handles once so
            # the per-request enqueue/dispatch updates skip label-key
            # construction.
            self._c_enqueued = metrics.counter(
                "batcher_enqueued_total", "Requests queued per stage.",
                ).labels(stage=self._stage)
            self._h_wait = metrics.histogram(
                "queue_wait_seconds",
                "Enqueue-to-dispatch wait per stage.",
                ).labels(stage=self._stage)
            self._h_size = metrics.histogram(
                "batch_size_images", "Dispatched batch size per stage.",
                buckets=self.SIZE_BUCKETS).labels(stage=self._stage)
        else:
            self._c_enqueued = self._h_wait = self._h_size = None
        #: Optional :class:`~repro.serving.profiler.SimProfiler` (wired
        #: by ``TritonLikeServer.attach_profiler``); attributes each
        #: dispatched request's queue wait to
        #: ``serve;<stage>;queue_wait``.
        self.profiler = None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def queued_images(self) -> int:
        """Images waiting across queued requests."""
        return self._queued_images

    def enqueue(self, request: Request, now: float) -> None:
        """Queue a request; raises QueueFullError past the bound."""
        limit = self.config.max_queue_size
        if limit and self._queued_images + request.num_images > limit:
            raise QueueFullError(request.model_name, limit)
        queued = QueuedRequest(request, now)
        if request.trace is not None:
            queued.wait_span = request.trace.begin(
                "queue_wait", now, category="queue", stage=self._stage)
        self._queue.append(queued)
        self._queued_images += request.num_images
        if self._c_enqueued is not None:
            self._c_enqueued.inc()

    def oldest_enqueue_time(self) -> float | None:
        """Enqueue time of the oldest queued request, or None."""
        return self._queue[0].enqueue_time if self._queue else None

    # ------------------------------------------------------------------
    # Fluid-regime state handoff
    # ------------------------------------------------------------------
    def extract_queue(self) -> list[QueuedRequest]:
        """Detach every queued request (hybrid-engine handoff out).

        The fluid integrator absorbs the detached work into its backlog
        state; open ``queue_wait`` spans stay open on the returned
        records so the engine can close them at their fluid completion
        times.  No metrics fire — the requests were already counted at
        their original enqueue.
        """
        queued = list(self._queue)
        self._queue.clear()
        self._queued_images = 0
        return queued

    def restore_queue(self, queued: list[QueuedRequest],
                      new_enqueues: int = 0) -> None:
        """Re-attach queued requests (hybrid-engine handoff in).

        ``queued`` must be in nondecreasing enqueue-time order and the
        live queue must be empty (the stage was detached for the fluid
        stretch); original enqueue times are preserved so queue-delay
        timers and wait accounting pick up exactly where the DES left
        off.  ``new_enqueues`` counts the entries synthesized by the
        fluid engine (arrivals that happened *during* the stretch) into
        the enqueue counter; restored originals were already counted.
        """
        if self._queue:
            raise RuntimeError(
                "restore_queue on a non-empty queue would reorder "
                "waiting requests")
        times = [q.enqueue_time for q in queued]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError(
                "restored queue must be in enqueue-time order")
        self._queue.extend(queued)
        self._queued_images = sum(q.request.num_images for q in queued)
        if new_enqueues and self._c_enqueued is not None:
            self._c_enqueued.inc(new_enqueues)

    # ------------------------------------------------------------------
    def ready(self, now: float) -> bool:
        """Whether a batch should be dispatched right now."""
        if not self._queue:
            return False
        if not self.config.enabled:
            return True
        if self._queued_images >= self.config.max_batch_size:
            return True
        oldest = self._queue[0].enqueue_time
        # One-ulp tolerance: the server's delay timer fires at exactly
        # oldest + max_queue_delay, and (now - oldest) can round below the
        # configured delay, which would re-arm a zero-delay timer forever.
        return now >= oldest + self.config.max_queue_delay - 1e-12

    def next_deadline(self) -> float | None:
        """Virtual time at which the queue-delay timer fires."""
        if not self._queue or not self.config.enabled:
            return None
        return self._queue[0].enqueue_time + self.config.max_queue_delay

    def form_batch(self, now: float | None = None) -> list[Request]:
        """Pop the next batch (requests never split across batches).

        Dequeue order is (priority desc, arrival) — Triton's priority
        levels: urgent real-time requests jump queued offline work, FIFO
        within a level.  Pass ``now`` (the server does) to record each
        popped request's queue wait into the metrics registry.
        """
        if not self._queue:
            raise RuntimeError("form_batch on an empty queue")
        ordered = sorted(
            range(len(self._queue)),
            key=lambda i: (-self._queue[i].request.priority, i))
        if not self.config.enabled:
            picked = [ordered[0]]
        else:
            target = self._pick_target_size()
            picked = []
            images = 0
            for index in ordered:
                request = self._queue[index].request
                if picked and images + request.num_images > target:
                    break
                picked.append(index)
                images += request.num_images
        batch = [self._queue[i].request for i in picked]
        if now is not None and self._h_wait is not None:
            for index in picked:
                self._h_wait.observe(
                    now - self._queue[index].enqueue_time)
            self._h_size.observe(sum(r.num_images for r in batch))
        profiler = self.profiler
        if profiler is not None and now is not None:
            profiler.record(
                ("serve", self._stage, "queue_wait"),
                sim_seconds=sum(now - self._queue[i].enqueue_time
                                for i in picked),
                count=len(picked))
        batch_images = sum(r.num_images for r in batch)
        for index in picked:
            queued = self._queue[index]
            if queued.wait_span is not None:
                dispatch = now if now is not None else queued.enqueue_time
                queued.request.trace.end(queued.wait_span, dispatch)
                queued.request.trace.instant(
                    "batch_dispatch", dispatch, category="queue",
                    stage=self._stage, batch_images=batch_images)
        for index in sorted(picked, reverse=True):
            del self._queue[index]
        self._queued_images -= sum(r.num_images for r in batch)
        return batch

    def _pick_target_size(self) -> int:
        limit = min(self._queued_images, self.config.max_batch_size)
        preferred = [p for p in self.config.preferred_batch_sizes
                     if p <= limit]
        return max(preferred) if preferred else limit
