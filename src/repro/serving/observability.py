"""Live observability for the serving substrate.

The paper's whole argument rests on measuring *where* serving time goes
(queue delay vs. batch execution vs. preprocessing, Figs. 6-8), and
"Beyond Inference" (arXiv:2403.12981) shows the server-side overheads —
queueing, batching, scheduling — routinely dominate DNN serving cost.
Summarizing completed responses after the fact (:mod:`repro.serving.
metrics`) cannot show a queue growing, an instance pool saturating, or a
rejection storm *while it happens*; this module can:

* :class:`MetricsRegistry` — a Prometheus-style registry of
  :class:`Counter`, :class:`Gauge`, and fixed-bucket :class:`Histogram`
  metrics, every update stamped on the simulator clock;
* :class:`TimeSeriesSampler` — a periodic sampler the server drives on
  its own event loop, recording queue depth, queued images, busy/total
  instances and in-flight batches per model as a time series.

The server, batcher, and backend instances emit into the registry as
requests flow; :func:`repro.serving.exporter.export_registry` renders a
scrape, and :func:`repro.analysis.report.registry_stage_breakdown`
summarizes the per-stage histograms in the same shape as
:func:`repro.serving.tracing.stage_breakdown`.
"""

from __future__ import annotations

import dataclasses
import time
from bisect import bisect_left
from collections.abc import Callable, Iterable

import numpy as np

#: Canonical label encoding: sorted (key, value) pairs.
LabelKey = tuple[tuple[str, str], ...]

#: Default latency buckets (seconds): 0.5 ms .. 30 s, roughly 1-2-5.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0,
)


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _frozen_clock() -> float:
    """Clock restored on unpickled metrics (no simulator to read).

    A metric that crossed a process boundary (a sweep shard returning
    its registry to the parent) has no live simulator behind it; its
    recorded ``last_updated`` stamps are preserved, and any *further*
    update in the parent is stamped 0.0 — merge folds recorded state,
    it never re-observes.
    """
    return 0.0


class Metric:
    """Base class for one named metric family (all label sets)."""

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 clock: Callable[[], float]):
        self.name = name
        self.help = help
        self._clock = clock
        #: Simulator time of the most recent update per label set.
        self.last_updated: dict[LabelKey, float] = {}
        #: Bound per-label-set handles, keyed like the value stores.
        self._children: dict[LabelKey, object] = {}

    def _touch(self, key: LabelKey) -> None:
        self.last_updated[key] = self._clock()

    def labels(self, **labels: str):
        """A handle bound to one label set (the steady-state fast path).

        Instrumenting code resolves the handle once — at construction,
        when the label values are known — and each subsequent update is
        a direct store into the family's value dict: no kwargs
        packing, no per-call sort, no key tuple allocation.  Handles
        write through to the parent family, so exports and reads stay
        byte-identical to the keyword-argument path.
        """
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._make_child(key)
            self._children[key] = child
        return child

    def _make_child(self, key: LabelKey):
        raise NotImplementedError(
            f"{self.kind} metrics do not support bound handles")

    def label_sets(self) -> list[LabelKey]:
        """Every label set this metric has been updated with."""
        return sorted(self.last_updated)

    def _merge_freshness(self, other: "Metric") -> None:
        """Fold ``other``'s freshness stamps (per-key max) into ours."""
        mine = self.last_updated
        for key, stamp in other.last_updated.items():
            if stamp > mine.get(key, float("-inf")):
                mine[key] = stamp
        if not self.help and other.help:
            self.help = other.help

    def _check_mergeable(self, other: "Metric") -> None:
        if type(other) is not type(self):
            raise ValueError(
                f"cannot merge {getattr(other, 'kind', type(other))} "
                f"metric into {self.kind} metric {self.name!r}")
        if other.name != self.name:
            raise ValueError(
                f"cannot merge metric {other.name!r} into {self.name!r}")

    # Registries (and the metrics inside them) cross process boundaries
    # when a sweep shard returns its results to the parent.  Bound
    # handles and the clock both hold references into the shard's live
    # simulator, so neither survives the trip: handles are re-resolved
    # lazily on the other side, and the clock freezes (see
    # :func:`_frozen_clock`).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_clock"] = None
        state["_children"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self._clock is None:
            self._clock = _frozen_clock


class BoundCounter:
    """A :class:`Counter` handle pre-bound to one label set."""

    __slots__ = ("_values", "_last", "_clock", "_key", "name")

    def __init__(self, parent: "Counter", key: LabelKey):
        self._values = parent._values
        self._last = parent.last_updated
        self._clock = parent._clock
        self._key = key
        self.name = parent.name

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the bound series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        values, key = self._values, self._key
        values[key] = values.get(key, 0.0) + amount
        self._last[key] = self._clock()

    def value(self) -> float:
        """Current value of the bound series (0 if never set)."""
        return self._values.get(self._key, 0.0)


class BoundGauge:
    """A :class:`Gauge` handle pre-bound to one label set."""

    __slots__ = ("_values", "_last", "_clock", "_key", "name")

    def __init__(self, parent: "Gauge", key: LabelKey):
        self._values = parent._values
        self._last = parent.last_updated
        self._clock = parent._clock
        self._key = key
        self.name = parent.name

    def set(self, value: float) -> None:
        """Set the bound series to ``value``."""
        self._values[self._key] = float(value)
        self._last[self._key] = self._clock()

    def add(self, amount: float) -> None:
        """Adjust the bound series by ``amount`` (either sign)."""
        values, key = self._values, self._key
        values[key] = values.get(key, 0.0) + amount
        self._last[key] = self._clock()

    def value(self) -> float:
        """Current value of the bound series (0 if never set)."""
        return self._values.get(self._key, 0.0)


class BoundHistogram:
    """A :class:`Histogram` handle pre-bound to one label set.

    The series record is resolved lazily on first observation so a
    handle that never observes leaves no empty series in the scrape
    (exactly the keyword-path behaviour).
    """

    __slots__ = ("_parent", "_key", "_series", "_bounds", "_last",
                 "_clock", "name")

    def __init__(self, parent: "Histogram", key: LabelKey):
        self._parent = parent
        self._key = key
        self._series: _HistogramSeries | None = parent._series.get(key)
        self._bounds = parent.buckets
        self._last = parent.last_updated
        self._clock = parent._clock
        self.name = parent.name

    def observe(self, value: float, trace_id: str | None = None) -> None:
        """Record one observation into the bound series.

        ``trace_id`` attaches an OpenMetrics exemplar — the
        ``(value, trace_id, sim_time)`` witness for the bucket the
        observation lands in (last observation wins, which is
        deterministic under the sim clock) — when the family has
        exemplars enabled; it is ignored otherwise.
        """
        series = self._series
        if series is None:
            series = self._series = self._parent._ensure_series(self._key)
        index = bisect_left(self._bounds, value)
        series.bucket_counts[index] += 1
        series.sum += value
        series.count += 1
        if trace_id is not None and self._parent._exemplars_enabled:
            exemplars = series.exemplars
            if exemplars is None:
                exemplars = series.exemplars = {}
            exemplars[index] = (value, str(trace_id), self._clock())
        self._last[self._key] = self._clock()

    def observe_many(self, values) -> None:
        """Record a whole array of observations in one vectorized pass.

        The bulk ingestion path for the hybrid fluid engine: a
        saturated stretch produces its latency samples as one ndarray,
        and folding them in one value at a time would cost a Python
        bisect per sample.  ``searchsorted`` + ``bincount`` reproduce
        the scalar path's bucketing exactly.
        """
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        series = self._series
        if series is None:
            series = self._series = self._parent._ensure_series(self._key)
        counts = np.bincount(
            np.searchsorted(self._bounds, values, side="left"),
            minlength=len(self._bounds) + 1)
        bucket_counts = series.bucket_counts
        for index, count in enumerate(counts):
            if count:
                bucket_counts[index] += int(count)
        series.sum += float(values.sum())
        series.count += int(values.size)
        self._last[self._key] = self._clock()


class Counter(Metric):
    """A monotonically increasing value per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str,
                 clock: Callable[[], float]):
        super().__init__(name, help, clock)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount
        self._touch(key)

    def _make_child(self, key: LabelKey) -> BoundCounter:
        return BoundCounter(self, key)

    def merge(self, other: "Counter") -> "Counter":
        """Fold another shard's counter into this one (sum per series).

        Addition is commutative and associative, so any merge order
        over a set of shards produces the same totals — the property
        the sweep engine's byte-identical-scrape contract rests on.
        """
        self._check_mergeable(other)
        values = self._values
        for key, value in other._values.items():
            values[key] = values.get(key, 0.0) + value
        self._merge_freshness(other)
        return self

    def value(self, **labels: str) -> float:
        """Current value of the labelled series (0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._values.values())

    def items(self) -> list[tuple[LabelKey, float]]:
        """(labels, value) pairs in sorted label order."""
        return sorted(self._values.items())


class Gauge(Metric):
    """A value that can go up and down per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str,
                 clock: Callable[[], float]):
        super().__init__(name, help, clock)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set the labelled series to ``value``."""
        key = _label_key(labels)
        self._values[key] = float(value)
        self._touch(key)

    def add(self, amount: float, **labels: str) -> None:
        """Adjust the labelled series by ``amount`` (either sign)."""
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount
        self._touch(key)

    def _make_child(self, key: LabelKey) -> BoundGauge:
        return BoundGauge(self, key)

    def merge(self, other: "Gauge") -> "Gauge":
        """Fold another shard's gauge into this one (freshest wins).

        A gauge is a point-in-time reading, so the series with the
        later ``last_updated`` sim-time stamp survives.  An exact tie
        (two shards sampling the same label set at the same virtual
        time) keeps the larger value — an arbitrary but commutative
        rule, so the merged scrape is independent of merge order.
        """
        self._check_mergeable(other)
        values = self._values
        stamps = self.last_updated
        for key, value in other._values.items():
            theirs = other.last_updated.get(key, float("-inf"))
            ours = stamps.get(key, float("-inf"))
            if key not in values or theirs > ours or (
                    theirs == ours and value > values[key]):
                values[key] = value
        self._merge_freshness(other)
        return self

    def value(self, **labels: str) -> float:
        """Current value of the labelled series (0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def remove(self, **labels: str) -> bool:
        """Drop the labelled series entirely (returns whether it existed).

        Prometheus client libraries expose exactly this for gauges whose
        label dimension tracks live objects (a model that was unloaded,
        a replica that was released): a stale series must leave the
        scrape, not linger at its last value.
        """
        key = _label_key(labels)
        existed = self._values.pop(key, None) is not None
        self.last_updated.pop(key, None)
        return existed

    def items(self) -> list[tuple[LabelKey, float]]:
        """(labels, value) pairs in sorted label order."""
        return sorted(self._values.items())


@dataclasses.dataclass
class _HistogramSeries:
    """Bucket counts + sum + count for one label set.

    ``exemplars`` maps a bucket index to the most recent
    ``(value, trace_id, sim_time)`` observation that carried a trace
    id — the OpenMetrics exemplar for that bucket.  It stays ``None``
    until the family opts in via :meth:`Histogram.enable_exemplars`,
    so plain histograms pay nothing.
    """

    bucket_counts: list[int]
    sum: float = 0.0
    count: int = 0
    exemplars: dict[int, tuple[float, str, float]] | None = None


class Histogram(Metric):
    """Fixed-bucket distribution per label set (Prometheus semantics).

    Buckets are upper bounds; observation counts are kept per bucket
    (non-cumulative internally, rendered cumulatively with a final
    ``+Inf`` bucket by the exporter).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 clock: Callable[[], float],
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, clock)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket")
        if any(b <= 0 for b in self.buckets):
            raise ValueError("bucket bounds must be positive")
        self._series: dict[LabelKey, _HistogramSeries] = {}
        self._exemplars_enabled = False

    def enable_exemplars(self) -> "Histogram":
        """Opt this family into per-bucket exemplar recording.

        After enabling, ``observe(value, trace_id=...)`` stores the
        ``(value, trace_id, sim_time)`` witness for the bucket hit and
        the exporter renders it in OpenMetrics ``# {trace_id="..."}``
        syntax.  Off by default so the scrape of an unrelated run
        stays byte-identical.
        """
        self._exemplars_enabled = True
        return self

    def _ensure_series(self, key: LabelKey) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries([0] * (len(self.buckets) + 1))
            self._series[key] = series
        return series

    def observe(self, value: float, *, trace_id: str | None = None,
                **labels: str) -> None:
        """Record one observation into the labelled series.

        The bucket index comes from a binary search over the sorted
        bounds: ``bisect_left`` returns the first bound ``>= value``
        (Prometheus' ``le`` semantics) and the overflow ``+Inf`` bucket
        when the value exceeds every bound.  ``trace_id`` attaches an
        exemplar when the family has :meth:`enable_exemplars` on.
        """
        key = _label_key(labels)
        series = self._ensure_series(key)
        index = bisect_left(self.buckets, value)
        series.bucket_counts[index] += 1
        series.sum += value
        series.count += 1
        if trace_id is not None and self._exemplars_enabled:
            exemplars = series.exemplars
            if exemplars is None:
                exemplars = series.exemplars = {}
            exemplars[index] = (value, str(trace_id), self._clock())
        self._touch(key)

    def observe_many(self, values, **labels: str) -> None:
        """Vectorized batch ingestion into the labelled series (see
        :meth:`BoundHistogram.observe_many`)."""
        self.labels(**labels).observe_many(values)

    def _make_child(self, key: LabelKey) -> BoundHistogram:
        return BoundHistogram(self, key)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another shard's histogram into this one.

        Bucket counts, sums, and observation counts add per series —
        exactly what sequentially observing both shards' samples into
        one histogram would have produced, so quantiles derived from
        the merged buckets are *re-accumulated*, never averaged.  A
        bucket-layout mismatch raises ``ValueError``: adding counts
        across different bounds would silently corrupt every quantile.

        Exemplars keep the witness with the latest sim-time stamp per
        bucket (ties broken by value, then trace id — commutative, so
        merge order cannot change the scrape).
        """
        self._check_mergeable(other)
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name!r} bucket layouts conflict: "
                f"{self.buckets} vs {other.buckets}")
        for key, theirs in other._series.items():
            series = self._ensure_series(key)
            counts = series.bucket_counts
            for index, count in enumerate(theirs.bucket_counts):
                counts[index] += count
            series.sum += theirs.sum
            series.count += theirs.count
            if theirs.exemplars:
                exemplars = series.exemplars
                if exemplars is None:
                    exemplars = series.exemplars = {}
                for index, candidate in theirs.exemplars.items():
                    value, trace_id, stamp = candidate
                    incumbent = exemplars.get(index)
                    if incumbent is None or (
                            (stamp, value, trace_id) >
                            (incumbent[2], incumbent[0], incumbent[1])):
                        exemplars[index] = candidate
        self._exemplars_enabled = (self._exemplars_enabled
                                   or other._exemplars_enabled)
        self._merge_freshness(other)
        return self

    def count(self, **labels: str) -> int:
        """Observations recorded for the labelled series."""
        series = self._series.get(_label_key(labels))
        return series.count if series is not None else 0

    def sum(self, **labels: str) -> float:
        """Sum of observations for the labelled series."""
        series = self._series.get(_label_key(labels))
        return series.sum if series is not None else 0.0

    def mean(self, **labels: str) -> float:
        """Mean observation (0 when the series is empty)."""
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return 0.0
        return series.sum / series.count

    def cumulative_buckets(self, **labels: str) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs; bound inf is last."""
        series = self._series.get(_label_key(labels))
        counts = (series.bucket_counts if series is not None
                  else [0] * (len(self.buckets) + 1))
        out, running = [], 0
        for bound, count in zip((*self.buckets, float("inf")), counts):
            running += count
            out.append((bound, running))
        return out

    def items(self) -> list[tuple[LabelKey, _HistogramSeries]]:
        """(labels, series) pairs in sorted label order."""
        return sorted(self._series.items())


class MetricsRegistry:
    """A named collection of metrics sharing one clock.

    ``clock`` supplies the timestamp stamped on every update — wire it
    to the simulator (``lambda: sim.now``) so metric freshness lives on
    virtual time, exactly like a scraped production endpoint.  Metric
    constructors are get-or-create: instrumenting code may re-request a
    metric by name and receives the existing instance (a kind mismatch
    is a programming error and raises).
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._metrics: dict[str, Metric] = {}

    @property
    def now(self) -> float:
        """Current clock reading (the simulator's virtual time)."""
        return self._clock()

    def _get_or_create(self, cls, name: str, help: str,
                       **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}")
            return existing
        metric = cls(name, help, self._clock, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  ) -> Histogram:
        """Get or create a fixed-bucket :class:`Histogram`.

        Re-requesting an existing histogram with a *different* bucket
        layout raises: silently returning the old layout would leave
        the caller observing into bounds it never asked for, skewing
        every quantile derived from the scrape.
        """
        requested = tuple(sorted(buckets))
        metric = self._get_or_create(Histogram, name, help,
                                     buckets=requested)
        if metric.buckets != requested:
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{metric.buckets}, conflicting with requested "
                f"{requested}")
        return metric

    def get(self, name: str) -> Metric | None:
        """Look up a metric by name (None if absent)."""
        return self._metrics.get(name)

    def collect(self) -> list[Metric]:
        """Every registered metric, in name order (scrape order)."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry (a sweep shard's) into this one.

        Per metric family: counters and histogram series add, gauges
        keep the freshest reading, histogram exemplars keep the latest
        witness — every rule commutative and associative, so folding N
        shard registries produces a byte-identical
        :func:`~repro.serving.exporter.export_registry` scrape
        regardless of merge order or worker count.  A kind mismatch or
        a histogram bucket-layout conflict raises ``ValueError`` (the
        shards were not measuring the same thing).

        Merging mutates and returns ``self``; ``other`` is not
        modified.  Fold shard registries into a fresh
        ``MetricsRegistry()`` to keep the originals intact (see
        :func:`repro.sweep.merge.merge_registries`).
        """
        for name in sorted(other._metrics):
            theirs = other._metrics[name]
            mine = self._metrics.get(name)
            if mine is None:
                if isinstance(theirs, Histogram):
                    mine = self.histogram(name, theirs.help,
                                          buckets=theirs.buckets)
                elif isinstance(theirs, Counter):
                    mine = self.counter(name, theirs.help)
                elif isinstance(theirs, Gauge):
                    mine = self.gauge(name, theirs.help)
                else:
                    raise ValueError(
                        f"cannot merge unknown metric kind "
                        f"{theirs.kind!r} for {name!r}")
            mine.merge(theirs)
        return self

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_clock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self._clock is None:
            self._clock = _frozen_clock


# ----------------------------------------------------------------------
# Time-series sampling
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SamplePoint:
    """One sampler tick: the server's instantaneous state."""

    time: float
    #: Requests waiting per model queue.
    queue_depth: dict[str, int]
    #: Images waiting per model queue.
    queued_images: dict[str, int]
    #: Instances currently executing, per model.
    busy_instances: dict[str, int]
    #: Instance-group size per model (constant, kept for utilization).
    total_instances: dict[str, int]
    #: Batches executing right now (== busy instances: one batch each).
    inflight_batches: int

    @property
    def utilization(self) -> float:
        """Busy fraction of the whole instance pool at this instant."""
        total = sum(self.total_instances.values())
        if total == 0:
            return 0.0
        return sum(self.busy_instances.values()) / total


class TimeSeriesSampler:
    """Periodic sampling of a server's live state on the sim clock.

    ``start()`` schedules the first tick; each tick records a
    :class:`SamplePoint`, mirrors it into the registry's gauges, and
    re-arms itself while the simulation still has work pending — so the
    sampler never keeps an otherwise-finished simulation alive.
    """

    def __init__(self, server, interval: float = 0.05,
                 max_samples: int = 1_000_000):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.server = server
        self.interval = interval
        self.max_samples = max_samples
        self.samples: list[SamplePoint] = []
        self._running = False
        #: Set (sticky) when the run hit ``max_samples`` — a capped
        #: time series is visibly capped, never silently short.
        self.truncated = False
        self._seen_models: set[str] = set()
        #: Bound per-model gauge handles, resolved once per model.
        self._model_handles: dict[str, tuple] = {}
        metrics = server.metrics
        self._g_depth = metrics.gauge(
            "queue_depth", "Requests waiting per model queue.")
        self._g_images = metrics.gauge(
            "queued_images", "Images waiting per model queue.")
        self._g_busy = metrics.gauge(
            "busy_instances", "Instances currently executing per model.")
        self._g_total = metrics.gauge(
            "total_instances", "Instance-group size per model.")
        self._g_inflight = metrics.gauge(
            "inflight_batches", "Batches executing right now.").labels()

    def start(self) -> None:
        """Begin sampling at the current virtual time."""
        if self._running:
            raise RuntimeError("sampler already started")
        self._running = True
        self.server.sim.schedule(0.0, self._tick, daemon=True)

    def stop(self) -> None:
        """Stop sampling after the current tick."""
        self._running = False

    def sample_now(self) -> SamplePoint:
        """Record one sample at the current virtual time."""
        server = self.server
        models = set(server.model_names())
        point = SamplePoint(
            time=server.sim.now,
            queue_depth={m: server.queue_depth(m) for m in models},
            queued_images={m: server.queued_images(m) for m in models},
            busy_instances={m: server.busy_instances(m)
                            for m in models},
            total_instances={m: server.total_instances(m)
                             for m in models},
            inflight_batches=server.inflight_batches(),
        )
        self.samples.append(point)
        for model in models:
            handles = self._model_handles.get(model)
            if handles is None:
                handles = self._model_handles[model] = (
                    self._g_depth.labels(model=model),
                    self._g_images.labels(model=model),
                    self._g_busy.labels(model=model),
                    self._g_total.labels(model=model),
                )
            depth, images, busy, total = handles
            depth.set(point.queue_depth[model])
            images.set(point.queued_images[model])
            busy.set(point.busy_instances[model])
            total.set(point.total_instances[model])
        self._g_inflight.set(point.inflight_batches)
        # A model unloaded since the last tick must leave the scrape:
        # its gauges would otherwise report the pre-unload values
        # forever (a stale series, the classic unload bug).
        for model in self._seen_models - models:
            self._model_handles.pop(model, None)
            for gauge in (self._g_depth, self._g_images, self._g_busy,
                          self._g_total):
                gauge.remove(model=model)
        self._seen_models = models
        return point

    def _tick(self) -> None:
        if not self._running:
            return
        profiler = getattr(self.server, "profiler", None)
        if profiler is not None:
            wall0 = time.perf_counter()
            self.sample_now()
            profiler.record(("control", "sampler"),
                            wall_seconds=time.perf_counter() - wall0)
        else:
            self.sample_now()
        if len(self.samples) >= self.max_samples:
            self._running = False
            if not self.truncated:
                self.truncated = True
                # Created lazily at first truncation so the scrape of
                # an uncapped run is byte-identical to before this
                # counter existed.
                self.server.metrics.counter(
                    "sampler_truncated_total",
                    "Sampler runs stopped early by max_samples.",
                ).inc()
            return
        # Re-arm only while workload events are pending: a heap holding
        # nothing but control-loop daemon ticks means the run is over
        # and the sampler must not prolong it.
        if self.server.sim.peek_foreground_time() is not None:
            self.server.sim.schedule(self.interval, self._tick,
                                     daemon=True)
        else:
            self._running = False

    # ------------------------------------------------------------------
    def series(self, field: str, model: str | None = None,
               ) -> tuple[list[float], list[float]]:
        """Extract one (times, values) series from the samples.

        ``field`` is a :class:`SamplePoint` attribute; per-model fields
        need ``model`` (or aggregate across models when omitted).
        """
        times, values = [], []
        for point in self.samples:
            raw = getattr(point, field)
            if isinstance(raw, dict):
                value = (raw[model] if model is not None
                         else sum(raw.values()))
            else:
                value = raw
            times.append(point.time)
            values.append(float(value))
        return times, values

    def render_timeline(self, width: int = 48) -> str:
        """ASCII time series: queue depth + utilization per tick."""
        if width < 10:
            raise ValueError("width must be >= 10")
        if not self.samples:
            return "(no samples)\n"
        _, depths = self.series("queue_depth")
        peak = max(max(depths), 1.0)
        lines = [f"{'t (s)':>8s}  {'queue':>5s}  {'busy':>4s}  "
                 f"{'util':>5s}  depth"]
        for point, depth in zip(self.samples, depths):
            bar = "#" * int(round(depth / peak * width))
            busy = sum(point.busy_instances.values())
            lines.append(
                f"{point.time:8.3f}  {int(depth):5d}  {busy:4d}  "
                f"{point.utilization:5.0%}  {bar}")
        return "\n".join(lines) + "\n"
