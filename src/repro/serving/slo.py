"""SLO error budgets and multi-window burn-rate alerting.

The HARVEST real-time scenario hinges on a hard deadline — 60 QPS at a
16.7 ms frame budget (Section 2.2.3) — and a one-off p95 readout cannot
say whether a deployment *sustains* it.  The SRE-standard answer is an
error budget: with an objective of 99 % of requests under the threshold,
1 % of requests may violate it; the **burn rate** is how many times
faster than that allowance violations are arriving.  A burn rate of 1
exactly exhausts the budget over the period; 14.4 exhausts it 14.4×
faster.  Alerting on two windows at once — a *fast* window for
reactivity and a *slow* window for evidence — is the standard
multi-window multi-burn-rate rule: both must burn before an alert
fires, so a single slow batch cannot page but a genuine overload pages
within the fast window.

:class:`SLOMonitor` runs as a periodic task on the simulator clock and
reads violations the way a production alerter would: windowed deltas of
a :class:`~repro.serving.observability.Histogram` in the shared
:class:`~repro.serving.observability.MetricsRegistry` (the server's
``request_latency_seconds`` or the continuum replayer's
``continuum_latency_seconds``), never by walking response objects.
Counting is conservative: any observation in the bucket containing the
threshold counts as a violation, so the monitor never under-reports a
breach.  Alerts go to registered callbacks — wire
:meth:`~repro.scale.autoscaler.Autoscaler.notify_slo_alert` to use
sustained budget burn as a scale-out signal.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from collections.abc import Callable

from repro.serving.observability import Histogram, MetricsRegistry


@dataclasses.dataclass(frozen=True)
class SLOConfig:
    """The objective and the alerting policy around it.

    ``objective`` is the fraction of requests that must finish under
    ``latency_threshold_seconds``; ``1 - objective`` is the error
    budget.  The default burn thresholds are the classic page-worthy
    pair (14.4 on the fast window, 6 on the slow one, both required).
    """

    latency_threshold_seconds: float
    objective: float = 0.99
    interval: float = 0.25
    fast_window_seconds: float = 1.0
    slow_window_seconds: float = 10.0
    fast_burn_threshold: float = 14.4
    slow_burn_threshold: float = 6.0
    #: Minimum completions inside the fast window before an alert may
    #: fire (tiny windows make noisy rates).
    min_window_samples: int = 5
    #: While the burn condition holds continuously, re-alert at most
    #: every this many seconds (0 = alert on every burning tick).
    rearm_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.latency_threshold_seconds <= 0:
            raise ValueError("latency threshold must be positive")
        if not 0 < self.objective < 1:
            raise ValueError("objective must be in (0, 1)")
        if self.interval <= 0:
            raise ValueError("evaluation interval must be positive")
        if self.fast_window_seconds <= 0 or \
                self.slow_window_seconds < self.fast_window_seconds:
            raise ValueError(
                "windows must be positive with slow >= fast")
        if self.fast_burn_threshold <= 0 or self.slow_burn_threshold <= 0:
            raise ValueError("burn thresholds must be positive")
        if self.min_window_samples < 1:
            raise ValueError("min_window_samples must be >= 1")
        if self.rearm_seconds < 0:
            raise ValueError("rearm_seconds must be >= 0")


@dataclasses.dataclass(frozen=True)
class BurnAlert:
    """One burn-rate alert: both windows exceeded their thresholds."""

    time: float
    fast_burn_rate: float
    slow_burn_rate: float
    #: Violating fraction inside the fast window.
    window_error_rate: float
    #: Fraction of the total error budget consumed since monitoring
    #: began (can exceed 1 when the budget is blown).
    budget_consumed: float

    @property
    def budget_remaining(self) -> float:
        """Unspent budget fraction (negative once overspent)."""
        return 1.0 - self.budget_consumed


class SLOMonitor:
    """Periodic error-budget evaluation on the simulator clock.

    ``histogram_name`` selects which latency histogram in ``registry``
    to watch (default: the server's end-to-end
    ``request_latency_seconds``).  The monitor follows the sampler
    discipline — it re-arms only while the simulation has other pending
    events, so it never keeps a finished run alive.
    """

    def __init__(self, sim, registry: MetricsRegistry, config: SLOConfig,
                 histogram_name: str = "request_latency_seconds"):
        self.sim = sim
        self.registry = registry
        self.config = config
        self.histogram_name = histogram_name
        self.alerts: list[BurnAlert] = []
        self._callbacks: list[Callable[[BurnAlert], None]] = []
        self._running = False
        #: Per-tick (time, violations, total) deltas covering both
        #: alert windows.
        self._ticks: deque[tuple[float, int, int]] = deque()
        self._last_violations = 0
        self._last_total = 0
        self._cum_violations = 0
        self._cum_total = 0
        self._last_alert_time: float | None = None
        self._c_alerts = registry.counter(
            "slo_burn_alerts_total", "Burn-rate alerts fired.")
        self._g_fast = registry.gauge(
            "slo_fast_burn_rate", "Error-budget burn over the fast "
            "window.")
        self._g_slow = registry.gauge(
            "slo_slow_burn_rate", "Error-budget burn over the slow "
            "window.")
        self._g_budget = registry.gauge(
            "slo_error_budget_remaining",
            "Unspent error-budget fraction since monitoring began.")

    # ------------------------------------------------------------------
    def on_alert(self, callback: Callable[[BurnAlert], None]) -> None:
        """Register a burn-alert consumer (autoscaler, reporting)."""
        self._callbacks.append(callback)

    def start(self) -> None:
        """Arm the evaluation loop at the current virtual time."""
        if self._running:
            raise RuntimeError("monitor already started")
        self._running = True
        # Baseline so the first tick only covers activity after start().
        self._last_violations, self._last_total = self._cumulative()
        self.sim.schedule(self.config.interval, self._tick, daemon=True)

    def stop(self) -> None:
        """Stop evaluating after the current tick."""
        self._running = False

    # ------------------------------------------------------------------
    def _histogram(self) -> Histogram | None:
        metric = self.registry.get(self.histogram_name)
        return metric if isinstance(metric, Histogram) else None

    def _cumulative(self) -> tuple[int, int]:
        """(violations, total) observed so far, across all label sets.

        Conservative bucketing: the violation count is everything above
        the largest bucket bound that is <= the threshold, so requests
        inside the threshold's bucket count as violations.
        """
        histogram = self._histogram()
        if histogram is None:
            return 0, 0
        threshold = self.config.latency_threshold_seconds
        good_index = -1
        for i, bound in enumerate(histogram.buckets):
            if bound <= threshold:
                good_index = i
            else:
                break
        total = 0
        good = 0
        for _, series in histogram.items():
            total += series.count
            good += sum(series.bucket_counts[:good_index + 1])
        return total - good, total

    def _window(self, seconds: float) -> tuple[int, int]:
        """(violations, total) across ticks inside the window."""
        cutoff = self.sim.now - seconds
        violations = total = 0
        for time, v, t in self._ticks:
            if time > cutoff:
                violations += v
                total += t
        return violations, total

    def _burn(self, violations: int, total: int) -> float:
        if total == 0:
            return 0.0
        return (violations / total) / (1.0 - self.config.objective)

    def budget_consumed(self) -> float:
        """Error budget spent since monitoring began (fraction)."""
        if self._cum_total == 0:
            return 0.0
        allowance = self._cum_total * (1.0 - self.config.objective)
        return self._cum_violations / allowance

    # ------------------------------------------------------------------
    def evaluate_now(self) -> BurnAlert | None:
        """One evaluation step; returns the alert if one fired."""
        cfg = self.config
        violations, total = self._cumulative()
        d_viol = violations - self._last_violations
        d_total = total - self._last_total
        self._last_violations, self._last_total = violations, total
        self._cum_violations += d_viol
        self._cum_total += d_total
        now = self.sim.now
        self._ticks.append((now, d_viol, d_total))
        horizon = now - cfg.slow_window_seconds
        while self._ticks and self._ticks[0][0] <= horizon:
            self._ticks.popleft()

        fast_viol, fast_total = self._window(cfg.fast_window_seconds)
        slow_viol, slow_total = self._window(cfg.slow_window_seconds)
        fast_burn = self._burn(fast_viol, fast_total)
        slow_burn = self._burn(slow_viol, slow_total)
        consumed = self.budget_consumed()
        self._g_fast.set(fast_burn)
        self._g_slow.set(slow_burn)
        self._g_budget.set(1.0 - consumed)

        burning = (fast_burn >= cfg.fast_burn_threshold
                   and slow_burn >= cfg.slow_burn_threshold
                   and fast_total >= cfg.min_window_samples)
        if not burning:
            self._last_alert_time = None
            return None
        if self._last_alert_time is not None and \
                now - self._last_alert_time < cfg.rearm_seconds:
            return None
        self._last_alert_time = now
        alert = BurnAlert(
            time=now, fast_burn_rate=fast_burn,
            slow_burn_rate=slow_burn,
            window_error_rate=(fast_viol / fast_total
                               if fast_total else 0.0),
            budget_consumed=consumed)
        self.alerts.append(alert)
        self._c_alerts.inc()
        for callback in self._callbacks:
            callback(alert)
        return alert

    def _tick(self) -> None:
        if not self._running:
            return
        self.evaluate_now()
        if self.sim.peek_foreground_time() is not None:
            self.sim.schedule(self.config.interval, self._tick,
                              daemon=True)
        else:
            self._running = False
