"""Hybrid fluid/DES engine for million-endpoint farm traces.

The exact tuple-heap DES (:mod:`repro.serving.events`) prices every
queued request individually — perfect for transients, wasteful in deep
saturation where a backlog of thousands of requests drains through a
fully-busy instance pool at a *deterministic* aggregate rate.  The
paper's continuum sweeps hit exactly that regime when a whole region's
growing-season uplink lands on one cloud tier.

:class:`HybridReplayer` replays an arrival trace like
:class:`~repro.serving.traces.TraceReplayer`, but watches the serving
state through an explicit regime controller:

* **DES regime** — arrivals submit one by one; batching, queue-delay
  timers, priorities, and instance scheduling run exactly as before.
* **Fluid entry** — once the queue has held at least
  ``enter_queued_images`` with every instance busy for
  ``sustain_seconds``, the engine detaches the queue
  (:meth:`~repro.serving.server.TritonLikeServer.handoff_out`) and
  advances the whole saturated stretch with a vectorized Lindley
  recursion over the pending arrival vector::

      C_k = P_k + max(V0, max_{j<=k}(A_j - P_{j-1}))

  where ``A`` are arrival times, ``P`` the cumulative per-request
  service demand at the pool's saturated rate, and ``V0`` the virtual
  unfinished-work level seeded from in-flight images at entry.  One
  ``np.maximum.accumulate`` replaces millions of heap operations.
* **Fluid exit** — the recursion also yields the backlog each arrival
  observes; the first future arrival that sees at most
  ``exit_queued_images`` of backlog marks the regime boundary.  Work
  completing before that instant is folded into the serving metrics in
  aggregate (:meth:`~repro.serving.server.TritonLikeServer.
  record_fluid_summary`); work still in the virtual queue is
  re-materialized with its original arrival times and restored via
  :meth:`~repro.serving.server.TritonLikeServer.handoff_in`, so the DES
  picks up a byte-faithful queue state and drains the transition
  exactly.

The handoff is lossless: extracted requests keep their enqueue times
and open trace spans, in-flight batches complete on their already
scheduled heap events, and conservation (DES responses + fluid
completions == trace arrivals) is an invariant the tests assert.

Assumptions (validated at construction): the model is single-stage (no
preprocess chain or ensemble fan-out) and fault-free — multi-stage
routing and retry paths have per-request state the aggregate recursion
cannot represent.  The engine also assumes it is the model's only
traffic source during a fluid stretch.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.serving.batcher import QueuedRequest
from repro.serving.request import Request
from repro.serving.server import TritonLikeServer
from repro.serving.tracectx import TraceContext
from repro.serving.traces import ArrivalTrace


@dataclasses.dataclass(frozen=True)
class FluidConfig:
    """Regime-controller policy for :class:`HybridReplayer`.

    Entry requires *sustained* saturation — at least
    ``enter_queued_images`` queued with every instance busy for
    ``sustain_seconds`` — so a single burst spike keeps exact DES
    treatment.  Exit hands back to the DES at the first arrival that
    observes at most ``exit_queued_images`` of virtual backlog, leaving
    the drain transient to the exact engine.  Stretches shorter than
    ``min_fluid_arrivals`` remaining arrivals never switch: the regime
    change costs a queue handoff each way, which only pays off over a
    long saturated run.
    """

    enter_queued_images: int = 512
    sustain_seconds: float = 0.5
    exit_queued_images: int = 64
    min_fluid_arrivals: int = 256

    def __post_init__(self) -> None:
        if self.enter_queued_images < 1:
            raise ValueError("enter_queued_images must be >= 1")
        if self.exit_queued_images < 0:
            raise ValueError("exit_queued_images must be >= 0")
        if self.exit_queued_images >= self.enter_queued_images:
            raise ValueError(
                "exit threshold must sit below the entry threshold "
                "(hysteresis keeps the controller from oscillating)")
        if self.sustain_seconds < 0:
            raise ValueError("sustain_seconds must be >= 0")
        if self.min_fluid_arrivals < 1:
            raise ValueError("min_fluid_arrivals must be >= 1")


@dataclasses.dataclass(frozen=True)
class FluidInterval:
    """One fluid-integrated stretch (reporting + test introspection)."""

    #: Virtual time the controller switched to the fluid regime.
    entered: float
    #: Virtual time the DES resumed (queue restored just before it).
    resumed: float
    #: Requests whose completion the recursion integrated in aggregate.
    integrated_requests: int
    #: Requests re-materialized into the live queue at exit.
    restored_requests: int
    #: Queued + in-flight images absorbed at entry.
    entry_backlog_images: int


class HybridReplayer:
    """Replay an arrival trace, switching to fluid flow in saturation.

    Drop-in sibling of :class:`~repro.serving.traces.TraceReplayer`
    for single-stage models: :meth:`schedule` arms the trace as an
    :class:`~repro.serving.events.EventStream`, every arrival submits a
    request through the exact DES path, and the regime controller
    (see :class:`FluidConfig`) fast-forwards deep-saturation stretches
    analytically.  ``server.run()`` drives the replay as usual.
    """

    def __init__(self, server: TritonLikeServer, model_name: str,
                 images_per_request: int = 1, time_scale: float = 1.0,
                 config: FluidConfig | None = None):
        if images_per_request < 1:
            raise ValueError("images_per_request must be >= 1")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        model = server.model_config(model_name)  # KeyError if unknown
        if model.preprocess_model is not None:
            raise ValueError(
                "hybrid fluid replay needs a single-stage model; "
                f"{model_name!r} routes through "
                f"{model.preprocess_model!r} first")
        if model.fault_model is not None:
            raise ValueError(
                "hybrid fluid replay assumes fault-free service; "
                f"{model_name!r} has a fault model attached")
        self.server = server
        self.model_name = model_name
        self.images_per_request = images_per_request
        self.time_scale = time_scale
        self.config = config if config is not None else FluidConfig()
        batcher = server.batcher_config(model_name)
        batch_images = (batcher.max_batch_size if batcher.enabled
                        else images_per_request)
        batch_seconds = model.service_time(batch_images)
        if batch_seconds <= 0:
            raise ValueError(
                "saturated service time must be positive to define a "
                "fluid rate")
        #: Saturated pool throughput in images/second: every instance
        #: continuously serving full batches.
        self.mu_images = model.instances * batch_images / batch_seconds
        # The recursion charges each request only its aggregate-rate
        # share g/mu; in the DES it additionally rides inside a batch
        # whose execution takes t(B).  Re-add the in-batch residency so
        # fluid latencies line up with exact ones.
        self._latency_offset = max(
            0.0, batch_seconds - images_per_request / self.mu_images)
        self._stream = None
        self._times = np.empty(0)
        self._sat_since: float | None = None
        #: Per-stretch records, in entry order.
        self.intervals: list[FluidInterval] = []
        #: Requests completed analytically (no Response materialized).
        self.fluid_completed = 0
        self._fluid_latencies: list[np.ndarray] = []
        #: Requests submitted through the exact DES path.
        self.submitted = 0
        #: Regime boundary instants (``fluid_enter`` / ``fluid_exit``),
        #: so HybridReplayer runs export a visible regime timeline
        #: instead of silently folding stretches away.
        self.timeline = TraceContext(0, start=0.0,
                                     root_name="regime_timeline")
        metrics = server.metrics
        self._c_intervals = metrics.counter(
            "fluid_intervals_total",
            "Fluid-regime stretches entered per model.",
        ).labels(model=model_name)
        self._c_folded = metrics.counter(
            "fluid_folded_arrivals_total",
            "Arrivals integrated analytically instead of fired "
            "through the DES, per model.",
        ).labels(model=model_name)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def schedule(self, trace: ArrivalTrace):
        """Arm the trace (scaled by ``time_scale``); returns the stream.

        Like :meth:`TraceReplayer.schedule`, the whole trace registers
        as one :class:`~repro.serving.events.EventStream`; returns None
        for an empty trace.  A replayer replays one trace.
        """
        if self._stream is not None:
            raise RuntimeError("this replayer already has a trace armed")
        times = np.asarray(trace.arrival_times, dtype=float)
        if self.time_scale != 1.0:
            times = times * self.time_scale
        self._times = times
        if times.size == 0:
            return None
        self._stream = self.server.sim.add_stream(times, self._on_arrival)
        return self._stream

    def _on_arrival(self, index: int) -> None:
        """Stream callback: exact submission + regime-entry check."""
        self.submitted += 1
        self.server.submit(Request(self.model_name,
                                   num_images=self.images_per_request))
        self._check_entry()

    def _check_entry(self) -> None:
        """Switch to fluid flow once saturation has been sustained."""
        server, model, cfg = self.server, self.model_name, self.config
        saturated = (
            server.queued_images(model) >= cfg.enter_queued_images
            and server.busy_instances(model)
            == server.total_instances(model))
        if not saturated:
            self._sat_since = None
            return
        now = server.sim.now
        if self._sat_since is None:
            self._sat_since = now
        if now - self._sat_since < cfg.sustain_seconds:
            return
        if self._stream.remaining < cfg.min_fluid_arrivals:
            return
        self._enter_fluid()

    # ------------------------------------------------------------------
    # The fluid stretch
    # ------------------------------------------------------------------
    def _enter_fluid(self) -> None:
        """Integrate the saturated stretch and arm the exit handoff."""
        server, model, cfg = self.server, self.model_name, self.config
        sim = server.sim
        wall0 = time.perf_counter()
        t0 = sim.now
        queued = server.handoff_out(model)
        inflight = server.inflight_images(model)
        self._sat_since = None

        # Pending-arrival vectors: the detached queue (original arrival
        # times) followed by every not-yet-fired trace arrival.
        start = self._stream.index
        future = self._times[start:]
        nq = len(queued)
        arr_q = np.fromiter((q.request.arrival_time for q in queued),
                            dtype=float, count=nq)
        img_q = np.fromiter((q.request.num_images for q in queued),
                            dtype=float, count=nq)
        arrivals = np.concatenate([arr_q, future])
        images = np.concatenate(
            [img_q, np.full(future.size, float(self.images_per_request))])

        # Lindley recursion, closed form.  service[k] is request k's
        # demand at the saturated rate; prefix[k] its cumulative start
        # offset.  V0 seeds the virtual unfinished work with in-flight
        # images, whose completion events stay on the heap.
        service = images / self.mu_images
        prefix = np.cumsum(service)
        v0 = t0 + inflight / self.mu_images
        level = np.maximum(
            np.maximum.accumulate(arrivals - (prefix - service)), v0)
        completion = prefix + level

        # Backlog (images of virtual work ahead) observed by each
        # arrival; the regime exits at the first *future* arrival whose
        # backlog has drained to the exit threshold.
        vprev = np.concatenate(([v0], completion[:-1]))
        backlog = np.maximum(vprev - arrivals, 0.0) * self.mu_images
        below = np.flatnonzero(backlog[nq:] <= cfg.exit_queued_images)
        if below.size:
            k_star = nq + int(below[0])
            resume_time = float(arrivals[k_star])
        else:
            # The trace ends saturated: integrate everything and resume
            # an idle server once the virtual backlog has fully drained.
            k_star = int(arrivals.size)
            resume_time = float(completion[-1])

        # Completion split: strictly increasing C, so requests done by
        # resume_time form a prefix; the rest are still in the virtual
        # queue and get re-materialized.
        n_complete = int(np.searchsorted(completion[:k_star], resume_time,
                                         side="right"))
        latencies = (completion[:n_complete] - arrivals[:n_complete]
                     + self._latency_offset)
        # Close the detached originals that completed inside the
        # stretch at their analytic completion times.
        for j in range(min(nq, n_complete)):
            record = queued[j]
            done = float(completion[j])
            if record.wait_span is not None:
                record.request.trace.end(record.wait_span, done)
            if record.request.trace is not None:
                record.request.trace.close(done, status="ok")

        # Aggregate accounting: arrivals the stream never fired count
        # as submitted here; detached originals were already counted at
        # their real submission.
        n_new = k_star - nq
        server.record_fluid_summary(
            model,
            submitted_requests=n_new,
            submitted_images=int(images[nq:k_star].sum()),
            completed_requests=n_complete,
            completed_images=int(images[:n_complete].sum()),
            latencies=latencies,
            busy_seconds=float(service[:n_complete].sum()))
        self.fluid_completed += n_complete
        self._fluid_latencies.append(latencies)

        # Exit backlog: surviving originals keep their QueuedRequest
        # records (enqueue times + open spans); arrivals that landed
        # during the stretch are synthesized with their true arrival
        # times so downstream latency accounting is exact.
        restored = list(queued[n_complete:])
        n_synth = 0
        for j in range(max(nq, n_complete), k_star):
            when = float(arrivals[j])
            request = Request(model, num_images=int(images[j]),
                              arrival_time=when)
            restored.append(QueuedRequest(request, when))
            n_synth += 1

        # Jump the stream past the integrated arrivals, then restore
        # the queue *at* the exit instant.  Heap events outrank stream
        # firings on ties, so the handoff lands before arrival k_star
        # fires through the exact path.
        self._stream.jump(start + n_new)
        sim.schedule_at(
            resume_time,
            lambda: server.handoff_in(model, restored,
                                      new_enqueues=n_synth))
        entry_backlog = int(img_q.sum()) + inflight
        self.intervals.append(FluidInterval(
            entered=t0, resumed=resume_time,
            integrated_requests=n_complete,
            restored_requests=len(restored),
            entry_backlog_images=entry_backlog))
        self._c_intervals.inc()
        self._c_folded.inc(n_new)
        self.timeline.instant(
            "fluid_enter", t0, category="regime",
            queued_requests=nq, backlog_images=entry_backlog)
        self.timeline.instant(
            "fluid_exit", resume_time, category="regime",
            integrated_requests=n_complete,
            restored_requests=len(restored))
        profiler = server.profiler
        if profiler is not None:
            profiler.record(("regime", "fluid"),
                            sim_seconds=resume_time - t0,
                            wall_seconds=time.perf_counter() - wall0)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        """Total completions: DES responses + fluid-integrated ones."""
        return len(self.server.responses) + self.fluid_completed

    def latencies(self) -> np.ndarray:
        """End-to-end latencies across both regimes (ok responses)."""
        des = np.fromiter(
            (r.latency for r in self.server.responses if r.ok),
            dtype=float)
        return np.concatenate([des, *self._fluid_latencies])

    def latency_summary(self) -> dict[str, float]:
        """Count/mean/p50/p95/p99 over both regimes' latencies."""
        values = self.latencies()
        if values.size == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0,
                    "p95": 0.0, "p99": 0.0}
        p50, p95, p99 = np.quantile(values, [0.5, 0.95, 0.99])
        return {"count": int(values.size),
                "mean": float(values.mean()),
                "p50": float(p50), "p95": float(p95), "p99": float(p99)}


def render_regime_timeline(replayer: HybridReplayer,
                           width: int = 48) -> str:
    """Deterministic text view of a hybrid run's regime history.

    A strip of ``width`` cells covers ``[0, end]`` ('#' = the cell lies
    mostly inside a fluid stretch, '+' = partially, '.' = exact DES),
    followed by one table row per :class:`FluidInterval` — making the
    stretches the engine folded away visible at a glance.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    intervals = replayer.intervals
    sim_end = replayer.server.sim.now
    if not intervals:
        return (f"regime timeline: exact DES throughout "
                f"({sim_end:g} sim-s, 0 fluid stretches)\n")
    end = max(sim_end, max(iv.resumed for iv in intervals))
    fluid_total = sum(iv.resumed - iv.entered for iv in intervals)
    share = fluid_total / end if end > 0 else 0.0
    plural = "es" if len(intervals) != 1 else ""
    lines = [
        f"regime timeline: {len(intervals)} fluid stretch{plural}, "
        f"{fluid_total:.3f} of {end:.3f} sim-s fluid ({share:.0%})",
    ]
    cells = []
    for i in range(width):
        a = end * i / width
        b = end * (i + 1) / width
        overlap = sum(max(0.0, min(iv.resumed, b) - max(iv.entered, a))
                      for iv in intervals)
        frac = overlap / (b - a) if b > a else 0.0
        cells.append("#" if frac >= 0.5 else "+" if frac > 0.0 else ".")
    lines.append("".join(cells))
    lines.append("('#'=fluid, '+'=mixed, '.'=exact DES)")
    header = (f"{'entered':>10} {'resumed':>10} {'span s':>9} "
              f"{'integrated':>10} {'restored':>9} {'backlog':>8}")
    lines.append(header)
    for iv in intervals:
        lines.append(
            f"{iv.entered:>10.3f} {iv.resumed:>10.3f} "
            f"{iv.resumed - iv.entered:>9.3f} "
            f"{iv.integrated_requests:>10d} "
            f"{iv.restored_requests:>9d} "
            f"{iv.entry_backlog_images:>8d}")
    return "\n".join(lines) + "\n"
