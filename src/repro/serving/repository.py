"""On-disk model repository (Triton's model-repository layout).

Triton serves from a directory tree::

    repository/
      vit_tiny/
        config.json          # model configuration
        1/model.json         # version 1: the ONNX-like IR
        2/model.json         # version 2
      preprocess_224/
        config.json
        ...

This module writes and loads that layout with real file I/O: model
definitions serialize through :mod:`repro.models.ir`, configurations
carry the batching/instance settings of
:class:`~repro.serving.server.ModelConfig`, and
:meth:`ModelRepository.serve` loads everything into a
:class:`~repro.serving.server.TritonLikeServer` exactly the way Triton
cold-starts from its repository.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.models import ir
from repro.models.graph import ModelGraph
from repro.serving.batcher import BatcherConfig


class RepositoryError(ValueError):
    """Raised for malformed repository layouts or configs."""


@dataclasses.dataclass(frozen=True)
class RepositoryEntry:
    """One loaded model: latest-version graph plus its serving config."""

    name: str
    version: int
    graph: ModelGraph
    batcher: BatcherConfig
    instances: int
    preprocess_model: str | None


def _config_to_dict(batcher: BatcherConfig, instances: int,
                    preprocess_model: str | None) -> dict:
    return {
        "max_batch_size": batcher.max_batch_size,
        "max_queue_delay_us": int(batcher.max_queue_delay * 1e6),
        "preferred_batch_sizes": list(batcher.preferred_batch_sizes),
        "dynamic_batching": batcher.enabled,
        "instance_count": instances,
        "preprocess_model": preprocess_model,
    }


def _config_from_dict(doc: dict) -> tuple[BatcherConfig, int, str | None]:
    try:
        batcher = BatcherConfig(
            max_batch_size=doc["max_batch_size"],
            max_queue_delay=doc["max_queue_delay_us"] / 1e6,
            preferred_batch_sizes=tuple(doc.get("preferred_batch_sizes",
                                                ())),
            enabled=doc.get("dynamic_batching", True),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise RepositoryError(f"bad config.json: {exc}") from exc
    instances = doc.get("instance_count", 1)
    if not isinstance(instances, int) or instances < 1:
        raise RepositoryError(
            f"instance_count must be a positive int, got {instances!r}")
    return batcher, instances, doc.get("preprocess_model")


class ModelRepository:
    """Read/write access to a Triton-style repository directory."""

    CONFIG = "config.json"
    MODEL_FILE = "model.json"

    def __init__(self, root: "str | pathlib.Path"):
        self.root = pathlib.Path(root)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def add_model(self, graph: ModelGraph,
                  batcher: BatcherConfig | None = None,
                  instances: int = 1,
                  preprocess_model: str | None = None,
                  version: int | None = None) -> int:
        """Store a model (new version if it already exists).

        Returns the version number written.
        """
        model_dir = self.root / graph.name
        model_dir.mkdir(parents=True, exist_ok=True)
        if version is None:
            version = max(self.versions(graph.name), default=0) + 1
        elif version < 1:
            raise RepositoryError("versions start at 1")
        version_dir = model_dir / str(version)
        version_dir.mkdir(exist_ok=True)
        (version_dir / self.MODEL_FILE).write_text(
            ir.dumps(graph, indent=2))
        config = _config_to_dict(batcher or BatcherConfig(), instances,
                                 preprocess_model)
        (model_dir / self.CONFIG).write_text(json.dumps(config, indent=2))
        return version

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def model_names(self) -> list[str]:
        """Models present in the repository."""
        if not self.root.exists():
            return []
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and (p / self.CONFIG).exists())

    def versions(self, name: str) -> list[int]:
        """Sorted version numbers stored for a model."""
        model_dir = self.root / name
        if not model_dir.exists():
            return []
        out = []
        for child in model_dir.iterdir():
            if child.is_dir() and child.name.isdigit() and \
                    (child / self.MODEL_FILE).exists():
                out.append(int(child.name))
        return sorted(out)

    def load(self, name: str,
             version: int | None = None) -> RepositoryEntry:
        """Load one model (latest version by default)."""
        versions = self.versions(name)
        if not versions:
            raise RepositoryError(
                f"model {name!r} not found in {self.root}")
        if version is None:
            version = versions[-1]
        elif version not in versions:
            raise RepositoryError(
                f"model {name!r} has versions {versions}, not {version}")
        model_path = self.root / name / str(version) / self.MODEL_FILE
        try:
            graph = ir.loads(model_path.read_text())
        except ir.IRError as exc:
            raise RepositoryError(
                f"{model_path}: {exc}") from exc
        config_path = self.root / name / self.CONFIG
        try:
            doc = json.loads(config_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise RepositoryError(f"{config_path}: {exc}") from exc
        batcher, instances, preprocess = _config_from_dict(doc)
        return RepositoryEntry(name, version, graph, batcher, instances,
                               preprocess)

    def load_all(self) -> list[RepositoryEntry]:
        """All models, dependency-ordered (preprocess entries first)."""
        entries = [self.load(name) for name in self.model_names()]
        return sorted(entries,
                      key=lambda e: (e.preprocess_model is not None,
                                     e.name))

    # ------------------------------------------------------------------
    def serve(self, server, platform,
              service_time_factory=None) -> list[RepositoryEntry]:
        """Cold-start a server from the repository (Triton's startup).

        ``service_time_factory(graph, platform)`` maps a loaded model to
        its backend service-time function; the default builds the
        calibrated engine latency model.
        """
        from repro.engine.latency import LatencyModel
        from repro.serving.server import ModelConfig

        if service_time_factory is None:
            def service_time_factory(graph, platform):
                model = LatencyModel(graph, platform)
                return lambda n: model.latency(max(1, n))

        entries = self.load_all()
        for entry in entries:
            server.register(ModelConfig(
                name=entry.name,
                service_time=service_time_factory(entry.graph, platform),
                batcher=entry.batcher,
                instances=entry.instances,
                preprocess_model=entry.preprocess_model,
            ))
        return entries
