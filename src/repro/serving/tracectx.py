"""Request-scoped distributed tracing across the compute continuum.

The paper's core contribution is decomposing where time goes across the
continuum — dataset preprocessing, network transfer, queueing, batching,
inference — and "Beyond Inference" (arXiv:2403.12981) shows the server
-side share routinely dominates.  :mod:`repro.serving.tracing` can only
reconstruct spans post-hoc from a response's stage stamps, and the
continuum layers (edge preprocess, uplink, downlink) are invisible to
it.  This module is the forward path: a :class:`TraceContext` created at
the client rides the :class:`~repro.serving.request.Request` through
every layer — admission, balancing, queueing, batch dispatch, backend
execution, retries, shed attempts, and the continuum's transfer legs —
and each layer appends named child spans stamped on the simulator
clock.

The result feeds :mod:`repro.serving.trace_export`: Chrome/Perfetto
trace-event JSON plus a critical-path analysis over the span DAG.

Span naming conventions (what instrumented layers emit):

=================  ==========  =========================================
name               category    emitted by
=================  ==========  =========================================
``request``        request     the root span (client open, server close)
``edge_preprocess``  continuum  :class:`~repro.continuum.pipeline.ContinuumReplayer`
``edge_inference``   continuum  offload-to-edge local serve path
``uplink``/``downlink``  network  :meth:`~repro.continuum.network.NetworkLink.schedule_transfer`
``queue_wait``     queue       :class:`~repro.serving.batcher.DynamicBatcher`
``execute``        execute     :class:`~repro.serving.instance.BackendInstance`
``admission``      admission   :class:`~repro.scale.admission.AdmissionController` (instant)
``route``          balancer    :class:`~repro.scale.balancer.LoadBalancer` (instant)
``batch_dispatch``  queue      batcher, at dispatch (instant, batch size)
``offload_decision``  continuum  :class:`~repro.continuum.offload.OffloadPolicy` (instant)
``cache_lookup``   cache      :class:`~repro.cache.tiers.CacheTier` (instant, tier + outcome)
``cache_hit``      cache      edge-cache serve path (covers the lookup-to-answer interval)
``cold_start``     faas       :class:`~repro.faas.backend.FaaSBackend` sandbox setup
``init``           faas       FaaS artifact fetch (follows ``cold_start``)
``prewarm``        faas       provisioned-concurrency spawn (lifecycle instant)
``reap``           faas       keep-alive expiry (lifecycle instant, idle seconds)
=================  ==========  =========================================

Retried executions carry an ``attempt`` arg (and the legacy ``@n`` stage
-stamp suffix still appears in ``Request.stage_times``, so the post-hoc
view stays consistent with the forward one).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(slots=True)
class SpanRecord:
    """One named interval (or instant) within a trace.

    ``end`` is None while the span is open; instants have
    ``end == start``.  ``args`` carry span-local attributes (stage name,
    attempt index, payload bytes, ...) that the Perfetto exporter
    forwards verbatim.  Slotted: a traced run allocates one of these per
    span per request, so the dict-free layout is the difference between
    tracing being a rounding error and tracing dominating the profile.
    """

    span_id: int
    parent_id: int | None
    name: str
    category: str
    start: float
    end: float | None = None
    args: dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def closed(self) -> bool:
        """Whether the span has ended."""
        return self.end is not None


class SpanPool:
    """A free list of reusable :class:`SpanRecord` instances.

    Spans from recycled contexts (see :meth:`TraceContext.recycle`) come
    back here and are handed out again by :meth:`acquire`, fields
    overwritten in place — including the ``args`` dict, which is cleared
    and refilled rather than reallocated.  In a sampled continuum replay
    the unsampled majority of requests therefore reach a steady state of
    zero span allocations.
    """

    __slots__ = ("_free",)

    def __init__(self) -> None:
        self._free: list[SpanRecord] = []

    def __len__(self) -> int:
        """Records currently parked on the free list."""
        return len(self._free)

    def acquire(self, span_id: int, parent_id: int | None, name: str,
                category: str, start: float,
                args: dict[str, object]) -> SpanRecord:
        """A record with the given fields (reused when one is free)."""
        free = self._free
        if not free:
            return SpanRecord(span_id=span_id, parent_id=parent_id,
                              name=name, category=category, start=start,
                              args=dict(args))
        span = free.pop()
        span.span_id = span_id
        span.parent_id = parent_id
        span.name = name
        span.category = category
        span.start = start
        span.end = None
        reused = span.args
        reused.clear()
        reused.update(args)
        return span

    def release(self, spans: list[SpanRecord]) -> None:
        """Park finished records for reuse."""
        self._free.extend(spans)


class TraceContext:
    """The per-request span accumulator propagated through the stack.

    Deterministic by construction: span ids are allocated sequentially
    within the context, and every timestamp comes from the simulator
    clock via the instrumenting layer — two identical runs produce
    byte-identical traces.  ``baggage`` carries cross-layer annotations
    (e.g. the continuum replayer marks requests that owe a downlink
    leg).

    With a :class:`SpanPool` attached the context draws its records from
    the pool instead of allocating, and :meth:`recycle` returns them when
    the trace is discarded (the sampled-out path): the spans still exist
    while the request is in flight — every instrumenting layer works
    unchanged — but nothing survives the request.
    """

    def __init__(self, trace_id: int, start: float = 0.0,
                 root_name: str = "request",
                 pool: SpanPool | None = None):
        self.trace_id = trace_id
        self.baggage: dict[str, object] = {}
        self.spans: list[SpanRecord] = []
        self._next_span_id = 0
        self._pool = pool
        #: Whether the trace is retained (False on the sampled-out path;
        #: purely informational — the owner decides what to keep).
        self.sampled = True
        #: Final status stamped at :meth:`close` ("ok", "rejected", ...).
        self.status: str | None = None
        self.root = self.begin(root_name, start, category="request")

    # ------------------------------------------------------------------
    def begin(self, name: str, at: float, category: str = "span",
              parent: SpanRecord | None = None,
              **args: object) -> SpanRecord:
        """Open a child span at virtual time ``at``; returns the record.

        ``parent`` defaults to the root span (the span model is flat:
        every stage hangs off the request, which keeps the critical-path
        sweep simple and the Perfetto rendering readable).
        """
        parent_id = None
        if self.spans:  # the root itself has no parent
            parent_id = (parent.span_id if parent is not None
                         else self.root.span_id)
        if self._pool is not None:
            span = self._pool.acquire(self._next_span_id, parent_id,
                                      name, category, at, args)
        else:
            span = SpanRecord(span_id=self._next_span_id,
                              parent_id=parent_id, name=name,
                              category=category, start=at,
                              args=dict(args))
        self._next_span_id += 1
        self.spans.append(span)
        return span

    def end(self, span: SpanRecord, at: float) -> None:
        """Close an open span at virtual time ``at``."""
        if span.end is not None:
            raise ValueError(f"span {span.name!r} already closed")
        if at < span.start:
            raise ValueError(
                f"span {span.name!r} cannot end before it starts")
        span.end = at

    def instant(self, name: str, at: float, category: str = "mark",
                **args: object) -> SpanRecord:
        """Record a zero-duration event (decision points, dispatches)."""
        span = self.begin(name, at, category=category, **args)
        span.end = at
        return span

    def close(self, at: float, status: str = "ok") -> None:
        """Close (or extend) the root span and stamp the final status.

        Re-closing with a later time is allowed: the server closes the
        root when it responds, and the continuum replayer re-closes it
        after the downlink leg completes — last close wins, monotonic.
        """
        if self.root.end is not None and at < self.root.end:
            raise ValueError("trace cannot close earlier than it already "
                             "closed")
        self.root.end = at
        self.status = status

    def recycle(self) -> None:
        """Return every span (root included) to the attached pool.

        Terminal: the context must not be used afterwards — ``root`` is
        dropped so a stale read fails loudly instead of observing a
        record that has been handed to another trace.  No-op without a
        pool.
        """
        if self._pool is None:
            return
        self._pool.release(self.spans)
        self.spans = []
        self.root = None

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether the root span has ended."""
        return self.root.end is not None

    @property
    def start(self) -> float:
        """Virtual time the trace opened."""
        return self.root.start

    @property
    def latency(self) -> float:
        """Root span duration (end-to-end, including continuum legs)."""
        return self.root.duration

    def children(self) -> list[SpanRecord]:
        """Every span except the root, in creation order."""
        return [s for s in self.spans if s is not self.root]

    def find(self, name: str) -> list[SpanRecord]:
        """All spans with the given name, in creation order."""
        return [s for s in self.spans if s.name == name]


def attach(request, ctx: TraceContext) -> TraceContext:
    """Bind a context to a request (sets ``request.trace``)."""
    request.trace = ctx
    return ctx


def span_of(request) -> TraceContext | None:
    """The request's trace context, or None when tracing is off."""
    return getattr(request, "trace", None)
