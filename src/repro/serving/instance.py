"""Backend instances: the execution units hosted by the server.

"The backend hosts model instances, each dedicated to a specific inference
task ... preprocessing routines are also encapsulated as separate backend
engine instances" (Section 3).  A :class:`BackendInstance` wraps any
service-time function — an :class:`~repro.engine.engine.InferenceEngine`
latency model, a preprocessing framework estimate, or a test stub — and
serves one batch at a time on the simulator clock.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.serving.events import Simulator
from repro.serving.request import Request

#: Maps a batch image count to its backend execution time in seconds.
ServiceTimeFn = Callable[[int], float]


@dataclasses.dataclass
class InstanceStats:
    """Utilization accounting for one instance."""

    batches_served: int = 0
    images_served: int = 0
    busy_seconds: float = 0.0
    failures: int = 0

    def utilization(self, elapsed: float) -> float:
        """Busy fraction of the elapsed window."""
        return self.busy_seconds / elapsed if elapsed > 0 else 0.0


class BackendInstance:
    """One backend execution slot (a model or preprocessing instance).

    ``fault_model`` (see :mod:`repro.serving.faults`) makes executions
    fail probabilistically; failed batches occupy the instance for the
    detection window, then fire ``on_failure`` instead of
    ``on_complete``.
    """

    def __init__(self, name: str, service_time: ServiceTimeFn,
                 sim: Simulator, fault_model=None):
        self.name = name
        self.service_time = service_time
        self.sim = sim
        self.busy = False
        self.stats = InstanceStats()
        self.fault_model = fault_model

    def execute(self, batch: list[Request],
                on_complete: Callable[[list[Request]], None],
                on_failure: Callable[[list[Request]], None] | None = None,
                ) -> None:
        """Serve a batch; fires ``on_complete(batch)`` when done."""
        if self.busy:
            raise RuntimeError(f"instance {self.name} is already busy")
        if not batch:
            raise ValueError("cannot execute an empty batch")
        images = sum(r.num_images for r in batch)
        duration = self.service_time(images)
        if duration < 0:
            raise ValueError(
                f"service time for {images} images is negative")
        self.busy = True
        start = self.sim.now
        for request in batch:
            request.stage_times[f"{self.name}:start"] = start

        fails = (self.fault_model is not None
                 and on_failure is not None
                 and self.fault_model.draw_failure())
        if fails:
            def fail() -> None:
                self.busy = False
                self.stats.failures += 1
                on_failure(batch)

            self.sim.schedule(self.fault_model.detect_seconds, fail)
            return

        def finish() -> None:
            self.busy = False
            self.stats.batches_served += 1
            self.stats.images_served += images
            self.stats.busy_seconds += duration
            for request in batch:
                request.stage_times[f"{self.name}:end"] = self.sim.now
            on_complete(batch)

        self.sim.schedule(duration, finish)
