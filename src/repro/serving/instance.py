"""Backend instances: the execution units hosted by the server.

"The backend hosts model instances, each dedicated to a specific inference
task ... preprocessing routines are also encapsulated as separate backend
engine instances" (Section 3).  A :class:`BackendInstance` wraps any
service-time function — an :class:`~repro.engine.engine.InferenceEngine`
latency model, a preprocessing framework estimate, or a test stub — and
serves one batch at a time on the simulator clock.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.serving.events import Simulator
from repro.serving.request import Request

#: Maps a batch image count to its backend execution time in seconds.
ServiceTimeFn = Callable[[int], float]


@dataclasses.dataclass
class InstanceStats:
    """Utilization accounting for one instance."""

    batches_served: int = 0
    images_served: int = 0
    busy_seconds: float = 0.0
    failures: int = 0
    #: Time the instance was occupied by executions that ended in
    #: failure (the fault-detection window).  The slot is just as
    #: unavailable as during successful service, so utilization folds
    #: it in — otherwise fault injection *lowers* reported utilization
    #: while the instance is actually saturated.
    fault_seconds: float = 0.0

    def utilization(self, elapsed: float) -> float:
        """Occupied fraction of the elapsed window (busy + faulted)."""
        if elapsed <= 0:
            return 0.0
        return (self.busy_seconds + self.fault_seconds) / elapsed


class BackendInstance:
    """One backend execution slot (a model or preprocessing instance).

    ``fault_model`` (see :mod:`repro.serving.faults`) makes executions
    fail probabilistically; failed batches occupy the instance for the
    detection window, then fire ``on_failure`` instead of
    ``on_complete``.
    """

    def __init__(self, name: str, service_time: ServiceTimeFn,
                 sim: Simulator, fault_model=None, metrics=None):
        self.name = name
        self.service_time = service_time
        self.sim = sim
        self.busy = False
        #: Images in the batch executing right now (0 while idle) — the
        #: hybrid fluid engine reads this to seed its backlog state with
        #: in-flight work at a regime switch.
        self.current_images = 0
        self.stats = InstanceStats()
        self.fault_model = fault_model
        self._stage = name.split("#")[0]
        if metrics is not None:
            # Bound label handles: the stage label is fixed for the
            # instance's lifetime, so every per-batch update skips the
            # label-key build entirely.
            stage = self._stage
            self._h_exec = metrics.histogram(
                "execution_seconds",
                "Successful backend execution time per stage.",
                ).labels(stage=stage)
            self._c_batches = metrics.counter(
                "batches_executed_total",
                "Successful batch executions per stage.",
                ).labels(stage=stage)
            self._c_images = metrics.counter(
                "images_executed_total",
                "Images in successful executions per stage.",
                ).labels(stage=stage)
            self._c_failures = metrics.counter(
                "execution_failures_total",
                "Failed backend executions per stage.",
                ).labels(stage=stage)
            self._c_fault_seconds = metrics.counter(
                "fault_seconds_total",
                "Instance time lost to failed executions per stage.",
                ).labels(stage=stage)
        else:
            self._h_exec = self._c_batches = self._c_images = None
            self._c_failures = self._c_fault_seconds = None
        #: Optional :class:`~repro.serving.profiler.SimProfiler` (wired
        #: by ``TritonLikeServer.attach_profiler``); attributes batch
        #: service time to ``serve;<stage>;execute`` and fault
        #: detection windows to ``serve;<stage>;fault``.
        self.profiler = None

    def _span_key(self, request: Request) -> str:
        """Span key for this execution attempt of ``request``.

        Keyed per *attempt*: a retried request keeps its earlier
        attempts' timestamps instead of overwriting them (the first
        attempt keeps the bare instance name so single-shot traces read
        unchanged; retries append ``@<attempt>``).
        """
        attempt = sum(
            1 for key in request.stage_times
            if key.endswith(":start")
            and key.split("#")[0] == self._stage)
        if attempt == 0:
            return self.name
        return f"{self.name}@{attempt}"

    def execute(self, batch: list[Request],
                on_complete: Callable[[list[Request]], None],
                on_failure: Callable[[list[Request]], None] | None = None,
                ) -> None:
        """Serve a batch; fires ``on_complete(batch)`` when done."""
        if self.busy:
            raise RuntimeError(f"instance {self.name} is already busy")
        if not batch:
            raise ValueError("cannot execute an empty batch")
        images = sum(r.num_images for r in batch)
        duration = self.service_time(images)
        if duration < 0:
            raise ValueError(
                f"service time for {images} images is negative")
        self.busy = True
        self.current_images = images
        start = self.sim.now
        span_keys = [(request, self._span_key(request))
                     for request in batch]
        trace_spans = []
        for request, key in span_keys:
            request.stage_times[f"{key}:start"] = start
            if request.trace is not None:
                attempt = (int(key.rsplit("@", 1)[1])
                           if "@" in key else 0)
                trace_spans.append((request, request.trace.begin(
                    "execute", start, category="execute",
                    stage=self._stage, instance=self.name,
                    attempt=attempt, batch_images=images)))

        fails = (self.fault_model is not None
                 and on_failure is not None
                 and self.fault_model.draw_failure())
        if fails:
            detect = self.fault_model.detect_seconds

            def fail() -> None:
                self.busy = False
                self.current_images = 0
                self.stats.failures += 1
                self.stats.fault_seconds += detect
                # Close the attempt's span at detection time: the slot
                # was occupied, and the trace must show it (instead of
                # the wait silently inflating queued_seconds).
                for request, key in span_keys:
                    request.stage_times[f"{key}:end"] = self.sim.now
                for request, span in trace_spans:
                    span.args["outcome"] = "fault"
                    request.trace.end(span, self.sim.now)
                if self._c_failures is not None:
                    self._c_failures.inc()
                    self._c_fault_seconds.inc(detect)
                if self.profiler is not None:
                    self.profiler.record(
                        ("serve", self._stage, "fault"),
                        sim_seconds=detect)
                on_failure(batch)

            self.sim.schedule(detect, fail)
            return

        def finish() -> None:
            self.busy = False
            self.current_images = 0
            self.stats.batches_served += 1
            self.stats.images_served += images
            self.stats.busy_seconds += duration
            for request, key in span_keys:
                request.stage_times[f"{key}:end"] = self.sim.now
            for request, span in trace_spans:
                request.trace.end(span, self.sim.now)
            if self._h_exec is not None:
                self._h_exec.observe(duration)
                self._c_batches.inc()
                self._c_images.inc(images)
            if self.profiler is not None:
                self.profiler.record(
                    ("serve", self._stage, "execute"),
                    sim_seconds=duration)
            on_complete(batch)

        self.sim.schedule(duration, finish)
