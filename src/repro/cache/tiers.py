"""The two-tier cache hierarchy across the compute continuum.

The paper's CRSA raw-camera scenario pays three costs per frame — edge
preprocessing, uplink transfer, cloud preprocessing + inference — and a
fixed-mount camera repeats frames so aggressively that most of that
spend re-derives an answer the system already produced.  Two tiers
attack different stages:

* **edge result cache** (``edge_result``): fingerprint-keyed inference
  *results* held on the field device.  A hit short-circuits everything —
  edge preprocessing, the uplink, the whole cloud serving path — and
  answers locally in the lookup time.
* **cloud preprocessed-tensor cache** (``cloud_tensor``): the
  preprocessing backend's *output tensors* held next to the engine.  A
  hit skips the preprocess stage (CRSA's CPU-bound perspective warp,
  the Fig. 7 outlier) and enqueues straight into inference.

:class:`CacheTier` wraps a :class:`~repro.cache.store.CacheStore` with
per-tier accounting, registry metrics (``cache_requests_total`` by
tier/outcome, ``cache_bytes``/``cache_entries`` gauges), and trace
instants (``cache_lookup``); :class:`CacheHierarchy` bundles the tiers
behind the names the serving and continuum layers look up.
"""

from __future__ import annotations

from repro.cache.keys import FrameFingerprint
from repro.cache.store import CacheStore

#: Canonical tier names the integration points address.
EDGE_RESULT = "edge_result"
CLOUD_TENSOR = "cloud_tensor"


class CacheTier:
    """One named tier: a store plus observability.

    ``stage`` names the pipeline stage a hit short-circuits (shown in
    reports); ``registry`` (a
    :class:`~repro.serving.observability.MetricsRegistry`) receives the
    tier's counters and gauges so a Prometheus scrape carries live
    hit-ratio and residency data.
    """

    def __init__(self, name: str, store: CacheStore, stage: str,
                 registry=None):
        self.name = name
        self.store = store
        self.stage = stage
        self._c_requests = self._g_bytes = self._g_entries = None
        self._c_evictions = None
        if registry is not None:
            # The tier label is fixed for the object's lifetime, so bind
            # the handles once; per-lookup updates then skip label-key
            # construction entirely.
            requests = registry.counter(
                "cache_requests_total",
                "Cache lookups by tier and outcome.")
            self._c_requests = {
                outcome: requests.labels(tier=name, outcome=outcome)
                for outcome in ("hit", "stale", "miss")}
            self._c_evictions = registry.counter(
                "cache_evictions_total",
                "Cache entries displaced, by tier.").labels(tier=name)
            self._g_bytes = registry.gauge(
                "cache_bytes",
                "Resident cache payload bytes per tier.").labels(tier=name)
            self._g_entries = registry.gauge(
                "cache_entries",
                "Resident cache entries per tier.").labels(tier=name)
            self._sync_gauges()

    # ------------------------------------------------------------------
    def _sync_gauges(self) -> None:
        if self._g_bytes is not None:
            self._g_bytes.set(self.store.used_bytes)
            self._g_entries.set(len(self.store))

    def _count(self, outcome: str) -> None:
        if self._c_requests is not None:
            self._c_requests[outcome].inc()

    def lookup(self, fp: FrameFingerprint, trace=None,
               now: float | None = None) -> object | None:
        """Probe the tier; returns the cached value or None.

        Emits a ``cache_lookup`` trace instant (tier, outcome, distance
        config) when a :class:`~repro.serving.tracectx.TraceContext` is
        passed, and counts hit/miss/stale into the registry.
        """
        stale_before = self.store.stats.stale
        entry = self.store.lookup(fp)
        if entry is not None:
            outcome = "hit"
        elif self.store.stats.stale > stale_before:
            outcome = "stale"
        else:
            outcome = "miss"
        self._count(outcome)
        self._sync_gauges()
        if trace is not None and now is not None:
            trace.instant("cache_lookup", now, category="cache",
                          tier=self.name, outcome=outcome,
                          threshold=self.store.match_threshold)
        return entry.value if entry is not None else None

    def insert(self, fp: FrameFingerprint, value: object,
               size_bytes: float) -> bool:
        """Insert into the tier's store; mirrors gauges and evictions."""
        evicted_before = self.store.stats.evictions
        admitted = self.store.insert(fp, value, size_bytes)
        newly_evicted = self.store.stats.evictions - evicted_before
        if newly_evicted and self._c_evictions is not None:
            self._c_evictions.inc(newly_evicted)
        self._sync_gauges()
        return admitted

    def peek(self, fp: FrameFingerprint) -> bool:
        """Non-mutating hit test (no stats, no recency refresh)."""
        return self.store.peek(fp)

    @property
    def hit_ratio(self) -> float:
        """Lifetime hit ratio of the tier."""
        return self.store.stats.hit_ratio

    def summary(self) -> dict:
        """One report row: counts, ratio, and residency for this tier."""
        stats = self.store.stats
        return {
            "tier": self.name,
            "stage": self.stage,
            "lookups": stats.lookups,
            "hits": stats.hits,
            "misses": stats.misses,
            "stale": stats.stale,
            "hit_ratio": stats.hit_ratio,
            "evictions": stats.evictions,
            "admission_rejects": stats.admission_rejects,
            "entries": len(self.store),
            "used_bytes": self.store.used_bytes,
            "capacity_bytes": self.store.capacity_bytes,
        }


class CacheHierarchy:
    """The continuum's cache tiers, addressed by canonical name.

    Either tier may be ``None`` (cache that stage disabled); every
    consumer treats a missing tier as a guaranteed miss, so a
    hierarchy-less and a tier-less configuration behave identically.
    """

    def __init__(self, edge: CacheTier | None = None,
                 cloud: CacheTier | None = None):
        self._tiers: dict[str, CacheTier] = {}
        if edge is not None:
            self._tiers[EDGE_RESULT] = edge
        if cloud is not None:
            self._tiers[CLOUD_TENSOR] = cloud

    @property
    def edge(self) -> CacheTier | None:
        """The edge result tier (None when disabled)."""
        return self._tiers.get(EDGE_RESULT)

    @property
    def cloud(self) -> CacheTier | None:
        """The cloud preprocessed-tensor tier (None when disabled)."""
        return self._tiers.get(CLOUD_TENSOR)

    def tier(self, name: str) -> CacheTier | None:
        """Look up a tier by canonical name (None when disabled)."""
        if name not in (EDGE_RESULT, CLOUD_TENSOR):
            raise KeyError(f"unknown cache tier {name!r}")
        return self._tiers.get(name)

    def lookup(self, name: str, fp: FrameFingerprint, trace=None,
               now: float | None = None) -> object | None:
        """Probe one tier (a missing tier is a silent miss)."""
        tier = self.tier(name)
        if tier is None or fp is None:
            return None
        return tier.lookup(fp, trace=trace, now=now)

    def insert(self, name: str, fp: FrameFingerprint, value: object,
               size_bytes: float) -> bool:
        """Insert into one tier (no-op False when the tier is off)."""
        tier = self.tier(name)
        if tier is None or fp is None:
            return False
        return tier.insert(fp, value, size_bytes)

    def peek(self, name: str, fp: FrameFingerprint) -> bool:
        """Non-mutating hit test against one tier."""
        tier = self.tier(name)
        return tier is not None and fp is not None and tier.peek(fp)

    def summaries(self) -> list[dict]:
        """Report rows for every enabled tier (edge first)."""
        order = (EDGE_RESULT, CLOUD_TENSOR)
        return [self._tiers[name].summary() for name in order
                if name in self._tiers]
