"""Perceptual frame fingerprinting for content-aware caching.

A fixed-mount field camera (the CRSA raw-capture scenario) produces
overwhelmingly redundant consecutive frames: the scene only changes when
a vehicle passes, lighting shifts, or the camera pans.  Exact byte
equality never fires on real sensors — thermal noise alone flips pixels
— so cache keys must be *perceptual*: two frames that look the same
must map to fingerprints within a small Hamming distance.

Two complementary signatures over the downsampled luma plane:

* **dHash** (difference hash): row-wise gradient signs over an
  ``hash_size x (hash_size + 1)`` block-mean grid.  Robust to global
  brightness/contrast shifts, sensitive to structural change.
* **block-mean signature**: each cell of a ``block_grid x block_grid``
  partition compared against the frame's mean luma.  Catches large
  uniform changes (a cloud shadow, a tarp over half the field) that
  leave local gradients untouched.

Both are bit strings; a :class:`FrameFingerprint` concatenates them and
matching is a single Hamming-distance test with a tunable threshold
(``threshold=0`` degenerates to exact fingerprint equality).  Everything
is plain NumPy and fully deterministic.
"""

from __future__ import annotations

import dataclasses

import numpy as np


def luma(frame: np.ndarray) -> np.ndarray:
    """The luminance plane of a frame as float64 ``(H, W)``.

    Accepts grayscale ``(H, W)``, single-channel ``(H, W, 1)``, RGB
    ``(H, W, 3)`` (Rec. 601 weights), or any other channel count
    (plain channel mean).
    """
    arr = np.asarray(frame, dtype=np.float64)
    if arr.ndim == 2:
        return arr
    if arr.ndim != 3:
        raise ValueError(
            f"expected a (H, W) or (H, W, C) array, got shape "
            f"{arr.shape}")
    if arr.shape[2] == 1:
        return arr[..., 0]
    if arr.shape[2] == 3:
        return (0.299 * arr[..., 0] + 0.587 * arr[..., 1]
                + 0.114 * arr[..., 2])
    return arr.mean(axis=2)


def block_means(plane: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Area-mean downsample of a 2-D plane to ``(rows, cols)``.

    Cell boundaries come from ``np.linspace`` over each axis, so any
    input resolution works (no divisibility requirement) and the result
    is deterministic.  Inputs smaller than the grid repeat pixels.
    """
    if plane.ndim != 2:
        raise ValueError("block_means needs a 2-D plane")
    h, w = plane.shape
    if h < 1 or w < 1:
        raise ValueError("plane must be non-empty")
    # Integral image: cell sums in O(1) per cell regardless of size.
    integral = np.zeros((h + 1, w + 1), dtype=np.float64)
    integral[1:, 1:] = plane.cumsum(axis=0).cumsum(axis=1)
    ys = np.linspace(0, h, rows + 1).round().astype(np.int64)
    xs = np.linspace(0, w, cols + 1).round().astype(np.int64)
    out = np.empty((rows, cols), dtype=np.float64)
    for i in range(rows):
        # Degenerate cells (input smaller than the grid) borrow the
        # nearest pixel so every cell stays defined and non-empty.
        y0 = min(int(ys[i]), h - 1)
        y1 = min(max(int(ys[i + 1]), y0 + 1), h)
        for j in range(cols):
            x0 = min(int(xs[j]), w - 1)
            x1 = min(max(int(xs[j + 1]), x0 + 1), w)
            total = (integral[y1, x1] - integral[y0, x1]
                     - integral[y1, x0] + integral[y0, x0])
            out[i, j] = total / ((y1 - y0) * (x1 - x0))
    return out


def _pack_bits(bits: np.ndarray) -> int:
    """Fold a flat boolean array into an int, MSB first."""
    value = 0
    for bit in bits.ravel():
        value = (value << 1) | int(bool(bit))
    return value


def dhash_bits(frame: np.ndarray, hash_size: int = 8) -> int:
    """The dHash of a frame: ``hash_size**2`` gradient-sign bits.

    Downsamples luma to ``hash_size x (hash_size + 1)`` block means and
    emits one bit per horizontally adjacent pair (left < right).  An
    all-uniform frame (e.g. all black) hashes to 0 — valid, and equal
    to every other uniform frame's hash, which is exactly the wanted
    semantics for a content-addressed cache.
    """
    if hash_size < 2:
        raise ValueError("hash_size must be >= 2")
    means = block_means(luma(frame), hash_size, hash_size + 1)
    return _pack_bits(means[:, :-1] < means[:, 1:])


def block_signature_bits(frame: np.ndarray, block_grid: int = 4) -> int:
    """Block-mean signature: one bit per cell (above frame mean).

    ``block_grid**2`` bits comparing each cell of a ``block_grid``
    square partition against the global mean luma.
    """
    if block_grid < 1:
        raise ValueError("block_grid must be >= 1")
    plane = luma(frame)
    means = block_means(plane, block_grid, block_grid)
    return _pack_bits(means > plane.mean())


def hamming(a: int, b: int) -> int:
    """Number of differing bits between two fingerprint words."""
    return (a ^ b).bit_count()


@dataclasses.dataclass(frozen=True)
class FrameFingerprint:
    """A frame's perceptual identity: dHash + block-mean signature.

    Hashable and totally ordered by its packed bits, so fingerprints
    can key dicts, sort deterministically, and feed the TinyLFU
    frequency sketch directly.
    """

    dhash: int
    blocks: int
    hash_size: int = 8
    block_grid: int = 4

    def __post_init__(self) -> None:
        if self.hash_size < 2 or self.block_grid < 1:
            raise ValueError("invalid fingerprint geometry")

    @property
    def nbits(self) -> int:
        """Total bit width of the fingerprint."""
        return self.hash_size ** 2 + self.block_grid ** 2

    @property
    def packed(self) -> int:
        """Both signatures folded into one integer key."""
        return (self.dhash << (self.block_grid ** 2)) | self.blocks

    def distance(self, other: "FrameFingerprint") -> int:
        """Hamming distance to another fingerprint (same geometry)."""
        if (self.hash_size, self.block_grid) != (other.hash_size,
                                                 other.block_grid):
            raise ValueError(
                "cannot compare fingerprints of different geometry: "
                f"{self.hash_size}/{self.block_grid} vs "
                f"{other.hash_size}/{other.block_grid}")
        return hamming(self.dhash, other.dhash) + hamming(self.blocks,
                                                          other.blocks)

    def matches(self, other: "FrameFingerprint", threshold: int) -> bool:
        """Whether ``other`` is within ``threshold`` differing bits.

        ``threshold=0`` is exact-match mode: only bit-identical
        fingerprints hit.
        """
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        return self.distance(other) <= threshold


def fingerprint(frame: np.ndarray, hash_size: int = 8,
                block_grid: int = 4) -> FrameFingerprint:
    """Fingerprint one frame (any resolution, grayscale or color)."""
    return FrameFingerprint(
        dhash=dhash_bits(frame, hash_size=hash_size),
        blocks=block_signature_bits(frame, block_grid=block_grid),
        hash_size=hash_size,
        block_grid=block_grid,
    )
