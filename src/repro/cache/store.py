"""Byte-accounted cache stores on the simulator clock.

:class:`CacheStore` holds values keyed by
:class:`~repro.cache.keys.FrameFingerprint` with *content-aware* lookup:
a probe hits any entry within the store's Hamming-distance threshold,
not just bit-identical keys.  The store is sized in **bytes**, not
entries — on unified-memory edge devices the cache competes with
preprocessing buffers and the engine for the same physical pool, so a
:class:`~repro.hardware.memory.MemoryPool` can be attached and every
resident entry charges it (the Fig. 8 "combined memory consumption"
constraint extends to the cache).

Eviction is pluggable (:class:`LRUEviction`, :class:`FIFOEviction`),
freshness is bounded by an optional TTL (expired entries count as
*stale* — a miss that also names its cause), and admission is optionally
guarded by a TinyLFU-style :class:`FrequencySketch`: a candidate only
displaces a victim it is provably hotter than, which keeps one-shot
scans (a panning camera) from flushing the working set.

Everything runs on a caller-supplied ``clock`` (wire it to
``lambda: sim.now``) and is deterministic: the frequency sketch uses
fixed multiplicative hashing, never wall time or Python's randomized
string hashing.
"""

from __future__ import annotations

import abc
import dataclasses
import itertools
from collections.abc import Callable

from repro.cache.keys import FrameFingerprint

#: Fixed odd multipliers for the sketch's row hashes (splitmix-style).
_SKETCH_SEEDS = (0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F,
                 0x165667B19E3779F9, 0x27D4EB2F165667C5)


class FrequencySketch:
    """TinyLFU's approximate frequency counter (count-min with aging).

    ``depth`` independent rows of ``width`` 4-bit-style counters (we
    cap at 15 like the paper's implementation); :meth:`increment` on
    every cache reference, :meth:`estimate` answers "how hot is this
    key".  After ``sample_size`` increments every counter is halved —
    the aging step that lets the sketch track a *moving* working set.
    """

    _COUNTER_CAP = 15

    def __init__(self, width: int = 1024, depth: int = 4,
                 sample_size: int = 10_000):
        if width < 16 or width & (width - 1):
            raise ValueError("width must be a power of two >= 16")
        if not 1 <= depth <= len(_SKETCH_SEEDS):
            raise ValueError(
                f"depth must be in 1..{len(_SKETCH_SEEDS)}")
        if sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        self.width = width
        self.depth = depth
        self.sample_size = sample_size
        self._rows = [[0] * width for _ in range(depth)]
        self._increments = 0

    def _indices(self, key: int) -> list[int]:
        mask = self.width - 1
        return [((key * _SKETCH_SEEDS[row] + row) >> 17) & mask
                for row in range(self.depth)]

    def increment(self, key: int) -> None:
        """Record one reference to ``key`` (ages the sketch as needed)."""
        for row, index in zip(self._rows, self._indices(key)):
            if row[index] < self._COUNTER_CAP:
                row[index] += 1
        self._increments += 1
        if self._increments >= self.sample_size:
            self._age()

    def estimate(self, key: int) -> int:
        """Approximate reference count of ``key`` (never underestimates
        by more than the aging halvings; may overestimate on collisions)."""
        return min(row[index]
                   for row, index in zip(self._rows, self._indices(key)))

    def _age(self) -> None:
        for row in self._rows:
            for i, value in enumerate(row):
                row[i] = value >> 1
        self._increments //= 2


@dataclasses.dataclass
class CacheEntry:
    """One resident value: fingerprint key, payload, byte cost, ages."""

    fingerprint: FrameFingerprint
    value: object
    size_bytes: float
    inserted_at: float
    last_access_at: float
    #: Monotone insertion sequence — the deterministic LRU/FIFO tie-break.
    sequence: int
    hits: int = 0
    #: Live reservation when the store charges a memory pool.
    allocation: object | None = None


class EvictionPolicy(abc.ABC):
    """Chooses which resident entry to displace when space is needed."""

    name = "abstract"

    @abc.abstractmethod
    def victim(self, entries: list[CacheEntry]) -> CacheEntry:
        """The entry to evict (``entries`` is non-empty)."""


class LRUEviction(EvictionPolicy):
    """Evict the least recently *used* entry (access-ordered)."""

    name = "lru"

    def victim(self, entries: list[CacheEntry]) -> CacheEntry:
        """Oldest ``last_access_at`` wins; insertion order breaks ties."""
        return min(entries, key=lambda e: (e.last_access_at, e.sequence))


class FIFOEviction(EvictionPolicy):
    """Evict the oldest *inserted* entry regardless of access."""

    name = "fifo"

    def victim(self, entries: list[CacheEntry]) -> CacheEntry:
        """Lowest insertion sequence wins."""
        return min(entries, key=lambda e: e.sequence)


@dataclasses.dataclass
class CacheStats:
    """Monotone counters describing a store's lifetime behaviour."""

    hits: int = 0
    misses: int = 0
    #: Lookups that found a match past its TTL (also counted as misses).
    stale: int = 0
    insertions: int = 0
    evictions: int = 0
    #: Insertions refused by the TinyLFU admission filter.
    admission_rejects: int = 0
    #: Insertions refused because the value exceeds the whole capacity.
    uncacheable: int = 0

    @property
    def lookups(self) -> int:
        """Total probes (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups (0.0 before any probe)."""
        return self.hits / self.lookups if self.lookups else 0.0


class CacheStore:
    """A byte-bounded, content-aware store on the simulator clock.

    Parameters
    ----------
    capacity_bytes:
        Total payload budget; inserts evict until the candidate fits.
    clock:
        Virtual-time source (``lambda: sim.now``).
    match_threshold:
        Hamming budget for content-aware lookup (0 = exact fingerprints
        only).
    eviction:
        An :class:`EvictionPolicy`; defaults to LRU.
    ttl_seconds:
        Result freshness bound; a matching entry older than this counts
        as *stale*, is dropped, and the lookup misses (field results
        must be revalidated periodically — the scene may really have
        changed in ways the fingerprint quantizes away).
    admission:
        A :class:`FrequencySketch` enabling TinyLFU admission: every
        lookup trains the sketch, and an insert that needs an eviction
        only proceeds while the candidate is at least as hot as each
        victim.
    pool:
        Optional :class:`~repro.hardware.memory.MemoryPool`; resident
        entries hold live allocations in it, so the cache shows up in
        the unified-memory accounting next to engine and preprocessing
        buffers.
    """

    def __init__(self, capacity_bytes: float,
                 clock: Callable[[], float],
                 match_threshold: int = 0,
                 eviction: EvictionPolicy | None = None,
                 ttl_seconds: float | None = None,
                 admission: FrequencySketch | None = None,
                 pool=None, name: str = "cache"):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if match_threshold < 0:
            raise ValueError("match_threshold must be >= 0")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        self.capacity_bytes = float(capacity_bytes)
        self._clock = clock
        self.match_threshold = match_threshold
        self.eviction = eviction if eviction is not None else LRUEviction()
        self.ttl_seconds = ttl_seconds
        self.admission = admission
        self.pool = pool
        self.name = name
        self.stats = CacheStats()
        self._entries: list[CacheEntry] = []
        self._sequence = itertools.count()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> float:
        """Bytes held by resident entries."""
        return sum(e.size_bytes for e in self._entries)

    def entries(self) -> list[CacheEntry]:
        """Snapshot of resident entries in insertion order."""
        return sorted(self._entries, key=lambda e: e.sequence)

    # ------------------------------------------------------------------
    def _match(self, fp: FrameFingerprint) -> CacheEntry | None:
        """Closest resident entry within the threshold (ties: oldest)."""
        best: tuple[int, int] | None = None
        found: CacheEntry | None = None
        for entry in self._entries:
            distance = fp.distance(entry.fingerprint)
            if distance > self.match_threshold:
                continue
            rank = (distance, entry.sequence)
            if best is None or rank < best:
                best, found = rank, entry
        return found

    def _expired(self, entry: CacheEntry, now: float) -> bool:
        return (self.ttl_seconds is not None
                and now - entry.inserted_at > self.ttl_seconds)

    def _drop(self, entry: CacheEntry) -> None:
        self._entries.remove(entry)
        if entry.allocation is not None:
            self.pool.free(entry.allocation)
            entry.allocation = None

    def lookup(self, fp: FrameFingerprint) -> CacheEntry | None:
        """Probe for a frame; returns the hit entry or None.

        Trains the admission sketch, refreshes LRU recency on a hit,
        and retires (counting ``stale``) a matching entry past its TTL.
        """
        now = self._clock()
        if self.admission is not None:
            self.admission.increment(fp.packed)
        entry = self._match(fp)
        if entry is not None and self._expired(entry, now):
            self._drop(entry)
            self.stats.stale += 1
            entry = None
        if entry is None:
            self.stats.misses += 1
            return None
        entry.hits += 1
        entry.last_access_at = now
        self.stats.hits += 1
        return entry

    def peek(self, fp: FrameFingerprint) -> bool:
        """Whether a probe *would* hit right now (no state mutated)."""
        entry = self._match(fp)
        return entry is not None and not self._expired(entry,
                                                       self._clock())

    def insert(self, fp: FrameFingerprint, value: object,
               size_bytes: float) -> bool:
        """Make a value resident; returns whether it was admitted.

        Evicts per the policy until the candidate fits; with TinyLFU
        admission the candidate must be at least as hot as every victim
        it displaces, otherwise the insert is refused and the resident
        set is left untouched.
        """
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        now = self._clock()
        if size_bytes > self.capacity_bytes:
            self.stats.uncacheable += 1
            return False
        existing = self._match(fp)
        if existing is not None:
            # Re-insert refreshes the value and the freshness clock.
            self._drop(existing)
        while self.used_bytes + size_bytes > self.capacity_bytes:
            victim = self.eviction.victim(self._entries)
            if (self.admission is not None
                    and self.admission.estimate(fp.packed)
                    < self.admission.estimate(
                        victim.fingerprint.packed)):
                self.stats.admission_rejects += 1
                return False
            self._drop(victim)
            self.stats.evictions += 1
        allocation = None
        if self.pool is not None:
            if not self.pool.can_fit(size_bytes):
                # The pool is squeezed by non-cache tenants (engine,
                # preprocessing buffers): shed cache entries first, and
                # give up gracefully if the cache alone cannot help.
                while self._entries and not self.pool.can_fit(size_bytes):
                    self._drop(self.eviction.victim(self._entries))
                    self.stats.evictions += 1
                if not self.pool.can_fit(size_bytes):
                    self.stats.uncacheable += 1
                    return False
            allocation = self.pool.allocate(size_bytes,
                                            tag=f"cache:{self.name}")
        self._entries.append(CacheEntry(
            fingerprint=fp, value=value, size_bytes=float(size_bytes),
            inserted_at=now, last_access_at=now,
            sequence=next(self._sequence), allocation=allocation))
        self.stats.insertions += 1
        return True

    def expire(self) -> int:
        """Drop every TTL-expired entry now; returns how many went."""
        if self.ttl_seconds is None:
            return 0
        now = self._clock()
        expired = [e for e in self._entries if self._expired(e, now)]
        for entry in expired:
            self._drop(entry)
        self.stats.evictions += len(expired)
        return len(expired)

    def clear(self) -> None:
        """Drop every resident entry (stats are kept)."""
        for entry in list(self._entries):
            self._drop(entry)
