"""Multi-tier content-aware caching for redundant field imagery.

Fixed-mount agricultural cameras produce streams where consecutive
frames are overwhelmingly redundant; this package fingerprints frames
perceptually (:mod:`repro.cache.keys`), stores results and preprocessed
tensors in byte-accounted, sim-clock stores with pluggable eviction and
TinyLFU admission (:mod:`repro.cache.store`), and arranges them into
the edge/cloud :class:`~repro.cache.tiers.CacheHierarchy` the serving
and continuum layers consult (:mod:`repro.cache.tiers`).
"""

from repro.cache.keys import (
    FrameFingerprint,
    block_signature_bits,
    dhash_bits,
    fingerprint,
    hamming,
)
from repro.cache.store import (
    CacheEntry,
    CacheStats,
    CacheStore,
    EvictionPolicy,
    FIFOEviction,
    FrequencySketch,
    LRUEviction,
)
from repro.cache.tiers import (
    CLOUD_TENSOR,
    EDGE_RESULT,
    CacheHierarchy,
    CacheTier,
)

__all__ = [
    "FrameFingerprint", "fingerprint", "dhash_bits",
    "block_signature_bits", "hamming",
    "CacheStore", "CacheEntry", "CacheStats", "EvictionPolicy",
    "LRUEviction", "FIFOEviction", "FrequencySketch",
    "CacheHierarchy", "CacheTier", "EDGE_RESULT", "CLOUD_TENSOR",
]
