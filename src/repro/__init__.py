"""HARVEST Inference reproduction.

A from-scratch Python reproduction of *"HARVEST Inference: Characterizing
Digital Agriculture Workloads across Compute Continuum"* (Chen, Anthony,
Panda — ICPP Companion 2025): the inference-serving pipeline, its
substrates (hardware models, model zoo with analytic cost accounting and a
real NumPy execution path, synthetic agricultural datasets, preprocessing
frameworks, a Triton-like serving simulator, compute-continuum scenarios),
and a harness regenerating every table and figure of the paper's
evaluation.

Quick start::

    from repro import CharacterizationStudy
    report = CharacterizationStudy().run()
    print(report["table3"].render())

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-model results.
"""

from repro.core.study import CharacterizationStudy, StudyReport
from repro.core.guidance import TuningAdvisor
from repro.hardware.platform import (
    A100,
    V100,
    JETSON,
    get_platform,
    list_platforms,
)
from repro.models.zoo import get_model, list_models
from repro.data.datasets import get_dataset, list_datasets
from repro.engine.engine import InferenceEngine
from repro.continuum.pipeline import EndToEndPipeline
from repro.serving.server import ModelConfig, TritonLikeServer

__version__ = "1.0.0"

__all__ = [
    "CharacterizationStudy",
    "StudyReport",
    "TuningAdvisor",
    "A100",
    "V100",
    "JETSON",
    "get_platform",
    "list_platforms",
    "get_model",
    "list_models",
    "get_dataset",
    "list_datasets",
    "InferenceEngine",
    "EndToEndPipeline",
    "ModelConfig",
    "TritonLikeServer",
    "__version__",
]
