"""GEMM microbenchmark reproducing the Table 1 methodology.

The paper: "Since theoretical FLOPS numbers provided by manufacturers tend
to be overly optimistic, we benchmarked practical FLOPS performance over
GEMM operations on all three platforms."

Two execution modes are provided:

* :meth:`GemmBenchmark.run_host` — a *real* measurement: times
  ``C = A @ B`` with NumPy (BLAS) on the host CPU over a sweep of square
  sizes and reports achieved vs. a caller-supplied theoretical peak.  This
  demonstrates the methodology end to end and exhibits the same
  efficiency-gap phenomenon the paper reports.
* :meth:`GemmBenchmark.run_modeled` — a calibrated model for the three
  paper platforms: achieved FLOPS follows a saturation curve in problem
  size that plateaus at the Table 1 practical TFLOPS.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.hardware.platform import PlatformSpec
from repro.hardware.precision import Precision


def gemm_flops(m: int, n: int, k: int) -> float:
    """FLOPs of a single M×K @ K×N GEMM (multiply + add counted separately)."""
    if min(m, n, k) < 1:
        raise ValueError("GEMM dimensions must be >= 1")
    return 2.0 * m * n * k


@dataclasses.dataclass(frozen=True)
class GemmResult:
    """One point of a GEMM sweep."""

    size: int
    seconds: float
    achieved_tflops: float
    theoretical_tflops: float

    @property
    def efficiency(self) -> float:
        """Achieved / theoretical FLOPS fraction."""
        return self.achieved_tflops / self.theoretical_tflops


@dataclasses.dataclass(frozen=True)
class GemmSweep:
    """A complete sweep; ``practical_tflops`` is the plateau estimate."""

    platform_name: str
    precision: Precision
    results: tuple[GemmResult, ...]

    @property
    def practical_tflops(self) -> float:
        """Plateau estimate: mean of the top quartile of achieved rates.

        Using the top quartile (rather than the single max) makes the
        estimate robust to one lucky timing while still reporting the
        saturated regime, which is what Table 1's "Practical TFLOPS" means.
        """
        rates = sorted(r.achieved_tflops for r in self.results)
        top = rates[int(len(rates) * 0.75):] or rates[-1:]
        return float(np.mean(top))

    @property
    def efficiency(self) -> float:
        """Practical / theoretical efficiency (Table 1 ranges 75.7–82.7%)."""
        return self.practical_tflops / self.results[-1].theoretical_tflops


class GemmBenchmark:
    """Sweep square GEMMs and report achieved FLOPS.

    Parameters
    ----------
    sizes:
        Square matrix sizes to sweep.  Defaults to a geometric ladder that
        reaches the saturated regime on all modeled platforms.
    repeats:
        Timed repetitions per size in host mode (best-of is reported, the
        standard practice for throughput microbenchmarks).
    """

    #: Saturation length scale of the modeled achieved-rate curve.
    #: Large GPUs need larger tiles to saturate.
    _HALF_SATURATION_SIZE = {"A100": 1024.0, "V100": 768.0, "Jetson": 256.0}

    def __init__(self, sizes: tuple[int, ...] = (256, 512, 1024, 2048, 4096, 8192),
                 repeats: int = 3):
        if not sizes:
            raise ValueError("sizes must be non-empty")
        if any(s < 1 for s in sizes):
            raise ValueError("sizes must be positive")
        self.sizes = tuple(sorted(sizes))
        self.repeats = max(1, repeats)

    # ------------------------------------------------------------------
    def run_host(self, theoretical_tflops: float | None = None,
                 dtype: np.dtype = np.float32,
                 max_size: int = 1024) -> GemmSweep:
        """Measure real NumPy GEMM throughput on the host CPU.

        ``max_size`` caps the sweep so the benchmark stays in the ~seconds
        range on a single core (the guides' 10s profiling-run rule).
        """
        if theoretical_tflops is None:
            theoretical_tflops = self._estimate_host_peak(dtype)
        rng = np.random.default_rng(0)
        results = []
        for size in (s for s in self.sizes if s <= max_size):
            a = rng.standard_normal((size, size)).astype(dtype)
            b = rng.standard_normal((size, size)).astype(dtype)
            a @ b  # warm-up: page in BLAS threads / JIT dispatch
            best = min(self._time_once(a, b) for _ in range(self.repeats))
            achieved = gemm_flops(size, size, size) / best / 1e12
            results.append(GemmResult(size, best, achieved, theoretical_tflops))
        if not results:
            raise ValueError(f"no sweep sizes <= max_size={max_size}")
        return GemmSweep("host", Precision.FP32, tuple(results))

    @staticmethod
    def _time_once(a: np.ndarray, b: np.ndarray) -> float:
        start = time.perf_counter()
        a @ b
        return time.perf_counter() - start

    @staticmethod
    def _estimate_host_peak(dtype: np.dtype) -> float:
        """Crude host peak estimate: a short calibration GEMM scaled up.

        The host "theoretical" number only anchors the efficiency axis of
        the demonstration run; absolute accuracy is not needed.
        """
        rng = np.random.default_rng(1)
        a = rng.standard_normal((512, 512)).astype(dtype)
        best = min(GemmBenchmark._time_once(a, a) for _ in range(3))
        achieved = gemm_flops(512, 512, 512) / best / 1e12
        return achieved * 1.25  # assume the probe reaches ~80% of peak

    # ------------------------------------------------------------------
    def run_modeled(self, platform: PlatformSpec) -> GemmSweep:
        """Model the GEMM sweep for one of the paper's platforms.

        Achieved rate follows ``practical * (1 - exp(-s / s_sat))`` — small
        GEMMs under-utilize the device (launch overhead, tile quantization)
        and large ones plateau at the Table 1 practical TFLOPS.
        """
        s_sat = self._HALF_SATURATION_SIZE.get(platform.name, 512.0)
        peak = platform.theoretical_tflops[platform.benchmark_precision]
        results = []
        for size in self.sizes:
            achieved = platform.practical_tflops * (1.0 - float(np.exp(-size / s_sat)))
            seconds = gemm_flops(size, size, size) / (achieved * 1e12)
            results.append(GemmResult(size, seconds, achieved, peak))
        return GemmSweep(platform.name, platform.benchmark_precision,
                         tuple(results))
