"""Numerical precision formats used across the inference pipeline.

Section 3.1 of the paper: "Lower-precision formats like INT8 or FP16 offer
faster inference but may reduce accuracy.  BF16 or FP16, as used in our
experiments, provides a common balance between speed and accuracy."
"""

from __future__ import annotations

import enum

import numpy as np


class Precision(str, enum.Enum):
    """Numerical formats supported by the engine substrate.

    The string values follow the TensorRT/ONNX naming convention so that
    engine build configs serialize readably.
    """

    FP32 = "fp32"
    TF32 = "tf32"
    FP16 = "fp16"
    BF16 = "bf16"
    INT8 = "int8"

    @property
    def bytes(self) -> int:
        """Storage bytes per element."""
        return PRECISION_BYTES[self]

    @property
    def numpy_dtype(self) -> np.dtype:
        """The NumPy dtype used by the functional execution path.

        BF16 and TF32 have no native NumPy representation; the functional
        path computes them in float32 (which is a superset), while the
        *performance* model still uses their native byte widths and FLOPS
        rates.  INT8 maps to float32 as well because the functional path
        performs fake-quantized arithmetic.
        """
        return _NUMPY_DTYPES[self]

    @property
    def is_reduced(self) -> bool:
        """True for formats narrower than FP32."""
        return self is not Precision.FP32


PRECISION_BYTES: dict[Precision, int] = {
    Precision.FP32: 4,
    Precision.TF32: 4,
    Precision.FP16: 2,
    Precision.BF16: 2,
    Precision.INT8: 1,
}

_NUMPY_DTYPES: dict[Precision, np.dtype] = {
    Precision.FP32: np.dtype(np.float32),
    Precision.TF32: np.dtype(np.float32),
    Precision.FP16: np.dtype(np.float16),
    Precision.BF16: np.dtype(np.float32),
    Precision.INT8: np.dtype(np.float32),
}


def parse_precision(value: "Precision | str") -> Precision:
    """Coerce a user-supplied precision name to a :class:`Precision`.

    Accepts enum members, their values (``"fp16"``), and upper-case names
    (``"FP16"``).  Raises :class:`ValueError` for unknown formats.
    """
    if isinstance(value, Precision):
        return value
    try:
        return Precision(value.lower())
    except (ValueError, AttributeError):
        raise ValueError(
            f"unknown precision {value!r}; expected one of "
            f"{[p.value for p in Precision]}"
        ) from None
