"""Platform specifications for the three evaluated systems (Table 1).

Each :class:`PlatformSpec` carries exactly the quantities the paper's
characterization consumes:

* theoretical peak FLOPS per precision (vendor datasheet values),
* practical FLOPS measured over large GEMMs (Table 1, "Practical TFLOPS"),
* GPU memory capacity and whether it is unified with host memory,
* CPU core count (bounds CPU-side preprocessing concurrency),
* memory bandwidth (drives the roofline model).

The V100 and A100 nodes each have two GPUs but the paper uses a single GPU
("V100 and A100 experiments used only one of the two available GPUs"), so
``gpu_count`` records the node inventory while all performance fields are
per single GPU.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.hardware.precision import Precision, parse_precision


class PlatformKind(str, enum.Enum):
    """Coarse placement of a platform on the compute continuum."""

    CLOUD = "cloud"
    EDGE = "edge"
    HOST = "host"


class Scenario(str, enum.Enum):
    """Deployment scenarios from Section 2.2."""

    ONLINE = "online"
    OFFLINE = "offline"
    REAL_TIME = "real-time"


@dataclasses.dataclass(frozen=True)
class PlatformSpec:
    """A hardware platform on the compute continuum.

    Performance fields are per single GPU, matching the paper's single-GPU
    experiment setup.
    """

    name: str
    kind: PlatformKind
    cpu_cores: int
    gpu_name: str
    gpu_count: int
    gpu_memory_gb: float
    host_memory_gb: float
    unified_memory: bool
    theoretical_tflops: dict[Precision, float]
    practical_tflops: float
    benchmark_precision: Precision
    memory_bandwidth_gbps: float
    scenarios: tuple[Scenario, ...]
    power_watts: float | None = None
    #: Fraction of GPU memory usable by engines after runtime/context
    #: overhead (CUDA context, TensorRT workspace reservations, and — on
    #: unified-memory devices — the OS and other host processes).
    usable_memory_fraction: float = 0.92

    def __post_init__(self) -> None:
        if self.practical_tflops <= 0:
            raise ValueError("practical_tflops must be positive")
        peak = self.theoretical_tflops.get(self.benchmark_precision)
        if peak is None:
            raise ValueError(
                f"benchmark precision {self.benchmark_precision} missing from "
                "theoretical_tflops"
            )
        if self.practical_tflops > peak:
            raise ValueError(
                "practical TFLOPS cannot exceed theoretical peak "
                f"({self.practical_tflops} > {peak})"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def flops_efficiency(self) -> float:
        """Practical / theoretical FLOPS at the benchmark precision.

        Table 1 reports 82.68% for the V100, 75.74% for the A100, and
        67.06% for the Jetson.
        """
        return self.practical_tflops / self.theoretical_tflops[self.benchmark_precision]

    @property
    def practical_flops(self) -> float:
        """Practical FLOPS (not TFLOPS) at the benchmark precision."""
        return self.practical_tflops * 1e12

    def peak_flops(self, precision: Precision | str) -> float:
        """Theoretical peak FLOPS for ``precision``.

        Raises :class:`KeyError` if the platform does not support the
        format (e.g. BF16 on the V100).
        """
        precision = parse_precision(precision)
        if precision not in self.theoretical_tflops:
            raise KeyError(
                f"{self.name} does not support {precision.value}; supported: "
                f"{sorted(p.value for p in self.theoretical_tflops)}"
            )
        return self.theoretical_tflops[precision] * 1e12

    def supports(self, precision: Precision | str) -> bool:
        """Whether the platform has hardware support for ``precision``."""
        return parse_precision(precision) in self.theoretical_tflops

    @property
    def usable_gpu_memory_bytes(self) -> float:
        """GPU memory available to engine + preprocessing instances."""
        return self.gpu_memory_gb * 1e9 * self.usable_memory_fraction

    def throughput_upper_bound(self, flops_per_item: float) -> float:
        """Theoretical max items/second for a model needing ``flops_per_item``.

        This is the Table 3 "Throughput UpperBound" column: practical
        platform FLOPS divided by the model's per-image FLOPs.
        """
        if flops_per_item <= 0:
            raise ValueError("flops_per_item must be positive")
        return self.practical_flops / flops_per_item

    def min_latency_seconds(self, flops_per_item: float, batch_size: int) -> float:
        """Minimum achievable latency for a batch (Section 3.1).

        Total FLOPs of the batch divided by practical platform FLOPS —
        the dashed "theoretical latency" lines of Fig. 6.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return batch_size * flops_per_item / self.practical_flops


# ----------------------------------------------------------------------
# Table 1: evaluated cloud and edge platforms
# ----------------------------------------------------------------------

A100 = PlatformSpec(
    name="A100",
    kind=PlatformKind.CLOUD,
    cpu_cores=128,
    gpu_name="NVIDIA A100 40GB",
    gpu_count=2,
    gpu_memory_gb=40.0,
    host_memory_gb=256.0,
    unified_memory=False,
    theoretical_tflops={
        Precision.FP32: 19.5,
        Precision.TF32: 156.0,
        Precision.FP16: 312.0,
        Precision.BF16: 312.0,
        Precision.INT8: 624.0,
    },
    practical_tflops=236.3,
    benchmark_precision=Precision.BF16,
    memory_bandwidth_gbps=1555.0,
    scenarios=(Scenario.ONLINE, Scenario.OFFLINE),
)

V100 = PlatformSpec(
    name="V100",
    kind=PlatformKind.CLOUD,
    cpu_cores=40,
    gpu_name="NVIDIA V100 16GB",
    gpu_count=2,
    gpu_memory_gb=16.0,
    host_memory_gb=384.0,
    unified_memory=False,
    theoretical_tflops={
        Precision.FP32: 14.0,
        Precision.FP16: 112.0,
        Precision.INT8: 112.0,
    },
    practical_tflops=92.6,
    benchmark_precision=Precision.FP16,
    memory_bandwidth_gbps=900.0,
    scenarios=(Scenario.ONLINE, Scenario.OFFLINE),
)

JETSON = PlatformSpec(
    name="Jetson",
    kind=PlatformKind.EDGE,
    cpu_cores=6,
    gpu_name="Jetson Orin Nano Super (1024 CUDA cores, 32 tensor cores)",
    gpu_count=1,
    gpu_memory_gb=8.0,
    host_memory_gb=8.0,
    unified_memory=True,
    theoretical_tflops={
        Precision.FP32: 2.1,
        Precision.FP16: 17.0,
        Precision.BF16: 17.0,
        Precision.INT8: 34.0,
    },
    practical_tflops=11.4,
    benchmark_precision=Precision.BF16,
    memory_bandwidth_gbps=102.0,
    scenarios=(Scenario.REAL_TIME,),
    power_watts=25.0,
    # Unified memory: the OS, camera stack, and host-side runtime share the
    # 8 GB pool with the engines, leaving roughly half for inference.
    usable_memory_fraction=0.52,
)

PLATFORMS: dict[str, PlatformSpec] = {
    spec.name.lower(): spec for spec in (A100, V100, JETSON)
}


def get_platform(name: str) -> PlatformSpec:
    """Look up a platform by case-insensitive name.

    >>> get_platform("a100").cpu_cores
    128
    """
    try:
        return PLATFORMS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; available: {sorted(PLATFORMS)}"
        ) from None


def list_platforms() -> list[PlatformSpec]:
    """All registered platforms, cloud first (Table 1 column order)."""
    return [A100, V100, JETSON]
