"""Device memory pools and OOM accounting.

The Fig. 5/8 experiments are bounded by out-of-memory conditions: "MFU
improves gradually before eventually plateauing or triggering out-of-memory
(OOM) conditions, particularly on resource-constrained devices such as the
Jetson platform", and on the Jetson "combined memory consumption from
preprocessing and inference constrains the model engine's available batch
size".

:class:`MemoryPool` models a discrete GPU memory (V100/A100);
:class:`UnifiedMemoryPool` models the Jetson's shared CPU/GPU pool where
preprocessing buffers and engine allocations compete.
"""

from __future__ import annotations

import dataclasses
import itertools


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation exceeds the pool's remaining capacity."""

    def __init__(self, requested: float, available: float, pool: str):
        self.requested = requested
        self.available = available
        self.pool = pool
        super().__init__(
            f"OOM in {pool}: requested {requested / 1e6:.1f} MB, "
            f"available {available / 1e6:.1f} MB"
        )


@dataclasses.dataclass(frozen=True)
class Allocation:
    """A live reservation in a pool."""

    handle: int
    bytes: float
    tag: str


class MemoryPool:
    """Simple first-fit accounting pool for a discrete GPU memory.

    The pool tracks reservations by byte count only — fragmentation is not
    modeled because TensorRT-style engines allocate their workspace once at
    build time.
    """

    def __init__(self, capacity_bytes: float, name: str = "gpu"):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self.name = name
        self._allocations: dict[int, Allocation] = {}
        self._handles = itertools.count(1)

    @property
    def used_bytes(self) -> float:
        """Bytes currently reserved."""
        return sum(a.bytes for a in self._allocations.values())

    @property
    def available_bytes(self) -> float:
        """Bytes still allocatable."""
        return self.capacity_bytes - self.used_bytes

    def allocate(self, nbytes: float, tag: str = "") -> Allocation:
        """Reserve ``nbytes``; raises :class:`OutOfMemoryError` on overflow."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if nbytes > self.available_bytes:
            raise OutOfMemoryError(nbytes, self.available_bytes, self.name)
        alloc = Allocation(next(self._handles), float(nbytes), tag)
        self._allocations[alloc.handle] = alloc
        return alloc

    def free(self, allocation: Allocation) -> None:
        """Release a prior reservation; freeing twice is an error."""
        if allocation.handle not in self._allocations:
            raise KeyError(f"allocation {allocation.handle} is not live")
        del self._allocations[allocation.handle]

    def can_fit(self, nbytes: float) -> bool:
        """Whether nbytes would fit right now."""
        return 0 <= nbytes <= self.available_bytes

    def live_allocations(self) -> list[Allocation]:
        """Snapshot of current reservations."""
        return list(self._allocations.values())

    def breakdown(self) -> dict[str, float]:
        """Bytes in use grouped by allocation tag (for reports)."""
        out: dict[str, float] = {}
        for alloc in self._allocations.values():
            out[alloc.tag] = out.get(alloc.tag, 0.0) + alloc.bytes
        return out


class UnifiedMemoryPool(MemoryPool):
    """A CPU/GPU shared pool (Jetson Orin Nano).

    Behaves like :class:`MemoryPool` but additionally exposes a
    ``host_reserved_bytes`` floor modelling the OS/camera-stack footprint
    that the inference stack can never claim, and a convenience check used
    by the end-to-end pipeline: whether an engine allocation still fits
    *after* preprocessing buffers are resident.
    """

    def __init__(self, capacity_bytes: float,
                 host_reserved_bytes: float = 0.0,
                 name: str = "unified"):
        if host_reserved_bytes < 0 or host_reserved_bytes >= capacity_bytes:
            raise ValueError("host reservation must be in [0, capacity)")
        super().__init__(capacity_bytes - host_reserved_bytes, name)
        self.host_reserved_bytes = float(host_reserved_bytes)

    @property
    def total_device_bytes(self) -> float:
        """Physical pool size including the host reservation."""
        return self.capacity_bytes + self.host_reserved_bytes


def pool_for_platform(platform) -> MemoryPool:
    """Build the appropriate pool type for a :class:`PlatformSpec`."""
    usable = platform.usable_gpu_memory_bytes
    if platform.unified_memory:
        reserved = platform.gpu_memory_gb * 1e9 - usable
        return UnifiedMemoryPool(platform.gpu_memory_gb * 1e9,
                                 host_reserved_bytes=reserved,
                                 name=f"{platform.name}-unified")
    return MemoryPool(usable, name=f"{platform.name}-gpu")
