"""Hardware substrate: platform models, GEMM microbenchmark, roofline, memory.

The paper evaluates three platforms (Table 1): the OSC Pitzer cluster's
V100 nodes, the MRI cluster's A100 nodes, and an NVIDIA Jetson Orin Nano
Super edge device.  None of that silicon is available here, so this package
models each platform by the quantities the paper's analysis actually
consumes: theoretical peak FLOPS per precision, the practical (measured)
FLOPS fraction, memory capacity/bandwidth, CPU core count, and whether the
GPU shares a unified memory pool with the host (the Jetson case).

:class:`~repro.hardware.gemm.GemmBenchmark` reproduces the Table 1
methodology — sweeping square GEMMs and reporting achieved vs. theoretical
FLOPS — both as a *real* NumPy run on the host CPU and as a calibrated
model run for the three paper platforms.
"""

from repro.hardware.precision import Precision, PRECISION_BYTES
from repro.hardware.platform import (
    PlatformSpec,
    PlatformKind,
    PLATFORMS,
    get_platform,
    list_platforms,
    A100,
    V100,
    JETSON,
)
from repro.hardware.gemm import GemmBenchmark, GemmResult, gemm_flops
from repro.hardware.roofline import RooflineModel, RooflinePoint
from repro.hardware.memory import (
    MemoryPool,
    UnifiedMemoryPool,
    Allocation,
    OutOfMemoryError,
)
from repro.hardware.power import (
    PowerProfile,
    POWER_PROFILES,
    power_profile_for,
    EnergyModel,
    EnergyPoint,
)

__all__ = [
    "Precision",
    "PRECISION_BYTES",
    "PlatformSpec",
    "PlatformKind",
    "PLATFORMS",
    "get_platform",
    "list_platforms",
    "A100",
    "V100",
    "JETSON",
    "GemmBenchmark",
    "GemmResult",
    "gemm_flops",
    "RooflineModel",
    "RooflinePoint",
    "MemoryPool",
    "UnifiedMemoryPool",
    "Allocation",
    "OutOfMemoryError",
    "PowerProfile",
    "POWER_PROFILES",
    "power_profile_for",
    "EnergyModel",
    "EnergyPoint",
]
