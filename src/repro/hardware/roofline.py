"""Roofline model for the throughput-vs-batch-size analysis.

The paper's conclusion frames its findings as "a performance roofline
constrained by either compute saturation or memory exhaustion".  This
module provides the classical bandwidth/compute roofline: attainable
FLOPS = min(peak FLOPS, bandwidth × arithmetic intensity).
"""

from __future__ import annotations

import dataclasses

from repro.hardware.platform import PlatformSpec
from repro.hardware.precision import Precision, parse_precision


@dataclasses.dataclass(frozen=True)
class RooflinePoint:
    """One workload placed on the roofline."""

    arithmetic_intensity: float  # FLOPs per byte moved
    attainable_tflops: float
    compute_bound: bool


class RooflineModel:
    """Roofline for a platform at a given precision.

    Parameters
    ----------
    platform:
        The platform whose practical FLOPS and memory bandwidth bound the
        roofline.
    precision:
        Numerical format; scales the compute ceiling by the ratio of the
        format's theoretical peak to the benchmark precision's peak (the
        practical efficiency measured in Table 1 is assumed to carry over
        between formats on the same device).
    """

    def __init__(self, platform: PlatformSpec,
                 precision: Precision | str | None = None):
        self.platform = platform
        precision = (platform.benchmark_precision if precision is None
                     else parse_precision(precision))
        if not platform.supports(precision):
            raise KeyError(
                f"{platform.name} does not support {precision}")
        self.precision = precision
        scale = (platform.theoretical_tflops[precision]
                 / platform.theoretical_tflops[platform.benchmark_precision])
        self.compute_ceiling_tflops = platform.practical_tflops * scale
        self.bandwidth_gbps = platform.memory_bandwidth_gbps

    @property
    def ridge_point(self) -> float:
        """Arithmetic intensity (FLOPs/byte) where the two roofs meet."""
        return self.compute_ceiling_tflops * 1e12 / (self.bandwidth_gbps * 1e9)

    def attainable(self, arithmetic_intensity: float) -> RooflinePoint:
        """Attainable performance for a workload of the given intensity."""
        if arithmetic_intensity <= 0:
            raise ValueError("arithmetic intensity must be positive")
        bw_bound = self.bandwidth_gbps * 1e9 * arithmetic_intensity / 1e12
        compute_bound = bw_bound >= self.compute_ceiling_tflops
        return RooflinePoint(
            arithmetic_intensity=arithmetic_intensity,
            attainable_tflops=min(bw_bound, self.compute_ceiling_tflops),
            compute_bound=compute_bound,
        )

    def model_intensity(self, flops: float, bytes_moved: float) -> float:
        """Arithmetic intensity of a model layer/pass."""
        if bytes_moved <= 0:
            raise ValueError("bytes_moved must be positive")
        return flops / bytes_moved

    def sweep(self, intensities: list[float]) -> list[RooflinePoint]:
        """Place a list of intensities on the roofline (for plotting)."""
        return [self.attainable(i) for i in intensities]
