"""Power and energy models for the compute continuum.

The conclusion calls for "balancing latency requirements with energy
efficiency and memory utilization"; Table 1 notes the Jetson "operates in
25W power mode".  This module prices inference energy per platform with
the standard linear utilization model,

    P(util) = P_idle + (P_board − P_idle) · util,

where utilization is the engine's MFU.  The resulting images/joule metric
drives the energy-aware deployment advice: the edge device loses on
throughput but wins decisively on energy per image for small models —
the quantitative version of the continuum trade-off.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.hardware.platform import PlatformSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.models.graph import ModelGraph


@dataclasses.dataclass(frozen=True)
class PowerProfile:
    """Electrical envelope of a platform's inference node.

    Cloud figures cover the share of the node attributable to one GPU
    plus its host slice (the paper runs single-GPU experiments on
    dual-GPU nodes); the Jetson figure is its configured 25 W mode.
    """

    platform_name: str
    idle_watts: float
    board_watts: float   # full-utilization draw
    #: Fixed facility overhead multiplier (cooling, PSU losses): cloud
    #: PUE ~1.4, on-vehicle edge ~1.05.
    overhead_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0 <= self.idle_watts <= self.board_watts:
            raise ValueError("need 0 <= idle <= board watts")
        if self.overhead_factor < 1.0:
            raise ValueError("overhead factor must be >= 1")

    def watts_at(self, utilization: float) -> float:
        """Instantaneous draw at an MFU-like utilization in [0, 1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        dynamic = (self.board_watts - self.idle_watts) * utilization
        return (self.idle_watts + dynamic) * self.overhead_factor


#: Default profiles.  Cloud: GPU TDP + a host-slice, PUE 1.4.
#: Jetson: the 25 W power mode with a 5 W idle floor.
POWER_PROFILES: dict[str, PowerProfile] = {
    "a100": PowerProfile("A100", idle_watts=90.0, board_watts=460.0,
                         overhead_factor=1.4),
    "v100": PowerProfile("V100", idle_watts=70.0, board_watts=360.0,
                         overhead_factor=1.4),
    "jetson": PowerProfile("Jetson", idle_watts=5.0, board_watts=25.0,
                           overhead_factor=1.05),
}


def power_profile_for(platform: "PlatformSpec | str") -> PowerProfile:
    """Power profile for a platform (by spec or name)."""
    name = platform if isinstance(platform, str) else platform.name
    try:
        return POWER_PROFILES[name.lower()]
    except KeyError:
        raise KeyError(
            f"no power profile for platform {name!r}; available: "
            f"{sorted(POWER_PROFILES)}") from None


@dataclasses.dataclass(frozen=True)
class EnergyPoint:
    """Energy metrics for one (model, platform, batch) operating point."""

    platform: str
    model: str
    batch_size: int
    watts: float
    throughput: float
    joules_per_image: float
    images_per_joule: float


class EnergyModel:
    """Energy per image for a deployed engine."""

    def __init__(self, graph: "ModelGraph", platform: PlatformSpec,
                 profile: PowerProfile | None = None):
        # Imported here: the engine layer itself imports repro.hardware,
        # so a module-level import would be circular.
        from repro.engine.latency import LatencyModel

        self.graph = graph
        self.platform = platform
        self.profile = (power_profile_for(platform) if profile is None
                        else profile)
        self.latency_model = LatencyModel(graph, platform)

    def point(self, batch_size: int) -> EnergyPoint:
        """Energy metrics at one batch size."""
        engine = self.latency_model.point(batch_size)
        watts = self.profile.watts_at(engine.mfu)
        joules = watts / engine.throughput
        return EnergyPoint(
            platform=self.platform.name,
            model=self.graph.name,
            batch_size=batch_size,
            watts=watts,
            throughput=engine.throughput,
            joules_per_image=joules,
            images_per_joule=1.0 / joules,
        )

    def sweep(self, batch_sizes: tuple[int, ...]) -> list[EnergyPoint]:
        """Energy metrics over a batch grid."""
        return [self.point(b) for b in batch_sizes]

    def best_batch(self, batch_sizes: tuple[int, ...]) -> EnergyPoint:
        """The most energy-efficient feasible operating point."""
        points = self.sweep(batch_sizes)
        return min(points, key=lambda p: p.joules_per_image)

    def field_battery_images(self, battery_wh: float,
                             batch_size: int) -> float:
        """Images classifiable on one battery charge (edge planning)."""
        if battery_wh <= 0:
            raise ValueError("battery capacity must be positive")
        point = self.point(batch_size)
        return battery_wh * 3600.0 * point.images_per_joule
