"""Core contribution: the characterization study and tuning guidance.

The paper's primary contribution is a *characterization methodology* —
sweep (model × dataset × platform × batch size × preprocessing framework),
measure engine utilization, preprocessing cost and end-to-end behaviour,
and turn the results into application-specific tuning guidance
(Section 3.3, Section 5).  :class:`~repro.core.study.CharacterizationStudy`
orchestrates those sweeps over the substrate packages;
:mod:`repro.core.guidance` implements the advisory layer ("guidance to
guide application-specific tuning").
"""

from repro.core.sweeps import (
    SweepGrid,
    default_grid,
    engine_sweep,
    preprocessing_sweep,
    e2e_sweep,
)
from repro.core.results import (
    ResultTable,
    render_table,
)
from repro.core.study import CharacterizationStudy, StudyReport
from repro.core.autotune import SLOAutotuner, TuningStep
from repro.core.guidance import (
    TuningAdvisor,
    BatchRecommendation,
    ModelRecommendation,
)

__all__ = [
    "SweepGrid",
    "default_grid",
    "engine_sweep",
    "preprocessing_sweep",
    "e2e_sweep",
    "ResultTable",
    "render_table",
    "CharacterizationStudy",
    "StudyReport",
    "SLOAutotuner",
    "TuningStep",
    "TuningAdvisor",
    "BatchRecommendation",
    "ModelRecommendation",
]
