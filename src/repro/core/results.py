"""Result containers and plain-text table rendering.

Every harness in :mod:`repro.analysis` and :mod:`benchmarks` reports
through :class:`ResultTable`, so the reproduced tables/figures print in a
consistent, diff-friendly format.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence


@dataclasses.dataclass
class ResultTable:
    """A titled table of homogeneous dict rows."""

    title: str
    rows: list[dict]

    def __post_init__(self) -> None:
        if self.rows:
            first = set(self.rows[0])
            for i, row in enumerate(self.rows[1:], start=1):
                if set(row) != first:
                    raise ValueError(
                        f"row {i} keys {sorted(row)} differ from row 0 "
                        f"{sorted(first)}")

    @property
    def columns(self) -> list[str]:
        """Column names (from the first row)."""
        return list(self.rows[0]) if self.rows else []

    def column(self, name: str) -> list:
        """Extract one column as a list."""
        if name not in self.columns:
            raise KeyError(
                f"no column {name!r}; available: {self.columns}")
        return [row[name] for row in self.rows]

    def where(self, **conditions) -> "ResultTable":
        """Filter rows by exact column values."""
        rows = [row for row in self.rows
                if all(row.get(k) == v for k, v in conditions.items())]
        return ResultTable(self.title, rows)

    def render(self, float_format: str = "{:.2f}") -> str:
        """Render as an aligned ASCII table."""
        return render_table(self.title, self.rows, float_format)

    def to_json(self, indent: int | None = None) -> str:
        """Machine-readable export: {title, rows}."""
        import json

        return json.dumps({"title": self.title, "rows": self.rows},
                          indent=indent, default=str)

    def to_csv(self) -> str:
        """RFC-4180 CSV with a header row."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns)
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    @classmethod
    def from_json(cls, payload: str) -> "ResultTable":
        """Inverse of :meth:`to_json`."""
        import json

        doc = json.loads(payload)
        if not isinstance(doc, dict) or "title" not in doc \
                or "rows" not in doc:
            raise ValueError("expected a {title, rows} document")
        return cls(doc["title"], doc["rows"])


def _format_cell(value, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3g}"
        return float_format.format(value)
    return str(value)


def render_table(title: str, rows: Sequence[dict],
                 float_format: str = "{:.2f}") -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"== {title} ==\n(no rows)\n"
    columns = list(rows[0])
    cells = [[_format_cell(row[c], float_format) for c in columns]
             for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in cells))
              for i, c in enumerate(columns)]
    lines = [f"== {title} ==",
             "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
             "  ".join("-" * w for w in widths)]
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines) + "\n"
