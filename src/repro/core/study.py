"""The characterization study orchestrator.

Runs the full evaluation of Section 4 — engine scaling (Fig. 5/6),
preprocessing comparison (Fig. 7), end-to-end pipelines (Fig. 8), and the
platform/model/dataset inventories (Tables 1–3) — and exposes the results
as :class:`~repro.core.results.ResultTable` objects plus a rendered
:class:`StudyReport`.
"""

from __future__ import annotations

import dataclasses

from repro.core.results import ResultTable
from repro.core.sweeps import (
    SweepGrid,
    default_grid,
    e2e_sweep,
    engine_sweep,
    preprocessing_sweep,
)
from repro.data.datasets import table2_rows
from repro.hardware.gemm import GemmBenchmark
from repro.models.zoo import table3_rows


@dataclasses.dataclass
class StudyReport:
    """All reproduced tables/figures from one study run."""

    tables: dict[str, ResultTable]

    def render(self) -> str:
        """Render every table to one text document."""
        return "\n".join(t.render() for _, t in sorted(self.tables.items()))

    def __getitem__(self, key: str) -> ResultTable:
        return self.tables[key]


class CharacterizationStudy:
    """End-to-end driver of the paper's evaluation."""

    def __init__(self, grid: SweepGrid | None = None):
        self.grid = grid if grid is not None else default_grid()

    # ------------------------------------------------------------------
    # Individual experiments
    # ------------------------------------------------------------------
    def table1(self) -> ResultTable:
        """Platform inventory with modeled GEMM efficiency (Table 1)."""
        bench = GemmBenchmark()
        rows = []
        for platform in self.grid.platforms:
            sweep = bench.run_modeled(platform)
            rows.append({
                "platform": platform.name,
                "cpu_cores": platform.cpu_cores,
                "gpu": platform.gpu_name,
                "memory_gb": platform.host_memory_gb,
                "theory_tflops":
                    platform.theoretical_tflops[platform.benchmark_precision],
                "practical_tflops": round(sweep.practical_tflops, 1),
                "efficiency_pct": round(sweep.efficiency * 100, 2),
                "precision": platform.benchmark_precision.value,
            })
        return ResultTable("Table 1: evaluated platforms", rows)

    def table2(self) -> ResultTable:
        """Dataset inventory (Table 2)."""
        return ResultTable("Table 2: agriculture datasets", table2_rows())

    def table3(self) -> ResultTable:
        """Model specs and upper bounds (Table 3)."""
        return ResultTable("Table 3: models and computational intensity",
                           table3_rows(list(self.grid.platforms)))

    def engine_scaling(self) -> ResultTable:
        """Fig. 5 + Fig. 6 data: the full engine batch sweeps."""
        rows = []
        for platform in self.grid.platforms:
            for graph in self.grid.models:
                for point in engine_sweep(graph, platform):
                    rows.append({
                        "platform": platform.name,
                        "model": graph.name,
                        "batch_size": point.batch_size,
                        "mfu": point.mfu,
                        "achieved_tflops": point.achieved_tflops,
                        "throughput": point.throughput,
                        "latency_ms": point.latency_seconds * 1e3,
                        "theoretical_latency_ms":
                            point.theoretical_latency_seconds * 1e3,
                        "meets_60qps": point.meets_60qps,
                    })
        return ResultTable("Fig 5/6: engine scaling", rows)

    def preprocessing(self) -> ResultTable:
        """Fig. 7 data: framework × dataset × platform."""
        rows = []
        for platform in self.grid.platforms:
            for est in preprocessing_sweep(platform,
                                           datasets=self.grid.datasets,
                                           frameworks=self.grid.frameworks):
                rows.append({
                    "platform": est.platform,
                    "framework": est.framework,
                    "dataset": est.dataset,
                    "batch_size": est.batch_size,
                    "latency_ms": est.batch_latency_seconds * 1e3,
                    "throughput": est.throughput,
                })
        return ResultTable("Fig 7: preprocessing performance", rows)

    def end_to_end(self) -> ResultTable:
        """Fig. 8 data: pipeline latency/throughput per cell."""
        rows = []
        for platform in self.grid.platforms:
            for result in e2e_sweep(platform, models=self.grid.models,
                                    datasets=self.grid.datasets):
                rows.append({
                    "platform": result.platform,
                    "model": result.model,
                    "dataset": result.dataset,
                    "batch_size": result.batch_size,
                    "latency_ms": result.latency_seconds * 1e3,
                    "throughput": result.throughput,
                    "bottleneck": result.bottleneck,
                })
        return ResultTable("Fig 8: end-to-end performance", rows)

    # ------------------------------------------------------------------
    def run(self) -> StudyReport:
        """Run every experiment; the full Section 4 reproduction."""
        return StudyReport(tables={
            "table1": self.table1(),
            "table2": self.table2(),
            "table3": self.table3(),
            "fig5_6_engine": self.engine_scaling(),
            "fig7_preprocessing": self.preprocessing(),
            "fig8_end_to_end": self.end_to_end(),
        })
