"""Application-specific tuning guidance (Sections 3.3 and 5).

The paper's takeaway is advisory: "For smaller models, moderate batch
sizes often suffice to utilize most platform capability and meet inference
requirements.  Beyond this threshold, increasing batch size yields
diminishing returns, making multi-instance strategies more effective for
improving responsiveness."  :class:`TuningAdvisor` turns the calibrated
models into that advice:

* :meth:`recommend_batch` — the optimal operating batch for a
  (model, platform) pair under a latency budget, with a multi-instance
  suggestion when saturation leaves headroom;
* :meth:`recommend_model` — model selection for a (dataset, platform)
  deployment: the most accurate-capable (largest) model that still meets
  the latency target end to end.
"""

from __future__ import annotations

import dataclasses

from repro.continuum.pipeline import EndToEndPipeline, e2e_batch_size
from repro.data.datasets import DatasetSpec
from repro.engine.calibration import LATENCY_TARGET_SECONDS, batch_grid
from repro.engine.latency import LatencyModel
from repro.engine.oom import max_batch_size
from repro.hardware.platform import PlatformSpec
from repro.models.graph import ModelGraph
from repro.models.zoo import list_models


@dataclasses.dataclass(frozen=True)
class BatchRecommendation:
    """Tuning advice for one (model, platform) deployment."""

    model: str
    platform: str
    batch_size: int | None           # None: latency target unreachable
    expected_throughput: float
    expected_latency_seconds: float
    mfu_at_batch: float
    memory_limited_batch: int
    #: True when throughput has saturated well below the memory limit, so
    #: extra capacity is better spent on a second engine instance.
    multi_instance_suggested: bool
    meets_target: bool


@dataclasses.dataclass(frozen=True)
class ModelRecommendation:
    """Ranked model choice for a (dataset, platform) deployment."""

    model: str
    batch_size: int
    throughput: float
    latency_seconds: float
    meets_target: bool
    bottleneck: str


class TuningAdvisor:
    """Generates deployment guidance from the calibrated models."""

    def __init__(self, platform: PlatformSpec,
                 latency_target_seconds: float = LATENCY_TARGET_SECONDS,
                 saturation_fraction: float = 0.9):
        if latency_target_seconds <= 0:
            raise ValueError("latency target must be positive")
        if not 0.0 < saturation_fraction < 1.0:
            raise ValueError("saturation fraction must be in (0, 1)")
        self.platform = platform
        self.latency_target = latency_target_seconds
        self.saturation_fraction = saturation_fraction

    # ------------------------------------------------------------------
    def recommend_batch(self, graph: ModelGraph) -> BatchRecommendation:
        """Pick the operating batch size for a deployed model."""
        grid = batch_grid(self.platform.name)
        mem_limit = max_batch_size(graph, self.platform, grid)
        feasible = tuple(b for b in grid if b <= mem_limit)
        model = LatencyModel(graph, self.platform)

        best = model.optimal_operating_batch(
            feasible, self.latency_target, self.saturation_fraction)
        if best is None:
            # Saturation unreachable on budget: fall back to the largest
            # latency-feasible batch (the Jetson's "narrower margins").
            best = model.max_batch_within_latency(feasible,
                                                  self.latency_target)
        if best is None:
            point = model.point(1)
            return BatchRecommendation(
                model=graph.name, platform=self.platform.name,
                batch_size=None,
                expected_throughput=point.throughput,
                expected_latency_seconds=point.latency_seconds,
                mfu_at_batch=point.mfu,
                memory_limited_batch=mem_limit,
                multi_instance_suggested=False,
                meets_target=False)

        point = model.point(best)
        saturated_headroom = (
            point.mfu >= self.saturation_fraction * model.mfu_model.mfu_peak
            and mem_limit >= 2 * best)
        return BatchRecommendation(
            model=graph.name, platform=self.platform.name,
            batch_size=best,
            expected_throughput=point.throughput,
            expected_latency_seconds=point.latency_seconds,
            mfu_at_batch=point.mfu,
            memory_limited_batch=mem_limit,
            multi_instance_suggested=bool(saturated_headroom),
            meets_target=True)

    # ------------------------------------------------------------------
    def recommend_batch_energy_aware(
            self, graph: ModelGraph) -> BatchRecommendation:
        """Energy-optimal batch among latency-feasible ones.

        The conclusion's "balancing latency requirements with energy
        efficiency": among grid batches meeting the latency target (and
        fitting memory), pick the one minimizing joules/image instead of
        maximizing throughput.  On these models the two usually agree at
        large batch — the interesting cases are edge deployments where
        the latency budget cuts the grid short.
        """
        from repro.hardware.power import EnergyModel

        grid = batch_grid(self.platform.name)
        mem_limit = max_batch_size(graph, self.platform, grid)
        model = LatencyModel(graph, self.platform)
        feasible = [b for b in grid if b <= mem_limit
                    and model.latency(b) <= self.latency_target]
        if not feasible:
            rec = self.recommend_batch(graph)
            return dataclasses.replace(rec, meets_target=False)
        energy = EnergyModel(graph, self.platform)
        best = min(feasible,
                   key=lambda b: energy.point(b).joules_per_image)
        point = model.point(best)
        return BatchRecommendation(
            model=graph.name, platform=self.platform.name,
            batch_size=best,
            expected_throughput=point.throughput,
            expected_latency_seconds=point.latency_seconds,
            mfu_at_batch=point.mfu,
            memory_limited_batch=mem_limit,
            multi_instance_suggested=False,
            meets_target=True)

    # ------------------------------------------------------------------
    def recommend_model(self, dataset: DatasetSpec,
                        ) -> list[ModelRecommendation]:
        """Rank the zoo for a dataset on this platform.

        Ordered largest-capacity first among target-meeting models (the
        accuracy/latency trade-off: prefer the most capable model that
        still meets the deadline), then the rest by throughput.
        """
        rankings = []
        for entry in list_models():
            graph = entry.graph
            pipeline = EndToEndPipeline(graph, self.platform)
            if dataset.dataset_specific_preprocessing and \
                    not pipeline.framework.supports_warp:
                continue
            batch = e2e_batch_size(self.platform, graph)
            result = pipeline.evaluate(dataset, batch)
            rankings.append(ModelRecommendation(
                model=graph.name,
                batch_size=batch,
                throughput=result.throughput,
                latency_seconds=result.latency_seconds,
                meets_target=result.latency_seconds <= self.latency_target,
                bottleneck=result.bottleneck,
            ))

        def sort_key(rec: ModelRecommendation):
            entry = next(e for e in list_models() if e.name == rec.model)
            return (not rec.meets_target,
                    -entry.graph.total_params() if rec.meets_target
                    else -rec.throughput)

        return sorted(rankings, key=sort_key)
