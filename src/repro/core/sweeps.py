"""Parameter sweeps: the experiment grids behind Figs. 5–8.

Free functions so they compose (the study orchestrator, benchmarks, and
examples all call them directly).
"""

from __future__ import annotations

import dataclasses

from repro.continuum.pipeline import EndToEndPipeline, EndToEndResult
from repro.data.datasets import DatasetSpec, list_datasets
from repro.engine.calibration import batch_grid
from repro.engine.latency import EnginePoint, LatencyModel
from repro.engine.oom import max_batch_size
from repro.hardware.platform import PlatformSpec, list_platforms
from repro.models.graph import ModelGraph
from repro.models.zoo import list_models
from repro.preprocessing.frameworks import (
    PreprocessEstimate,
    PreprocessFramework,
    framework_catalog,
)


@dataclasses.dataclass(frozen=True)
class SweepGrid:
    """The full experiment grid of the paper's evaluation section."""

    platforms: tuple[PlatformSpec, ...]
    models: tuple[ModelGraph, ...]
    datasets: tuple[DatasetSpec, ...]
    frameworks: tuple[PreprocessFramework, ...]

    def batch_sizes(self, platform: PlatformSpec) -> tuple[int, ...]:
        """The Fig. 5/6 batch axis for a platform."""
        return batch_grid(platform.name)


def default_grid() -> SweepGrid:
    """The paper's grid: 3 platforms × 4 models × 6 datasets × 5 framework
    configurations."""
    return SweepGrid(
        platforms=tuple(list_platforms()),
        models=tuple(entry.graph for entry in list_models()),
        datasets=tuple(list_datasets()),
        frameworks=tuple(framework_catalog()),
    )


def engine_sweep(graph: ModelGraph, platform: PlatformSpec,
                 batch_sizes: tuple[int, ...] | None = None,
                 ) -> list[EnginePoint]:
    """One Fig. 5/6 curve: engine performance over the feasible batch grid.

    The sweep stops at the OOM boundary, exactly as the paper's curves do
    on the Jetson.
    """
    grid = batch_sizes or batch_grid(platform.name)
    limit = max_batch_size(graph, platform, grid)
    model = LatencyModel(graph, platform)
    return model.sweep(tuple(b for b in grid if b <= limit))


def preprocessing_sweep(platform: PlatformSpec,
                        datasets: tuple[DatasetSpec, ...] | None = None,
                        frameworks: tuple[PreprocessFramework, ...] | None = None,
                        ) -> list[PreprocessEstimate]:
    """One Fig. 7 panel: every (framework, dataset) cell on a platform.

    Matches the figure's conventions: the CV2 row is only evaluated for
    CRSA ("OpenCV, employed specifically for the CRSA dataset"), and CRSA
    is skipped for the torchvision baseline, which lacks the dataset's
    perspective stage.
    """
    datasets = datasets or tuple(list_datasets())
    frameworks = frameworks or tuple(framework_catalog())
    estimates = []
    for framework in frameworks:
        for dataset in datasets:
            if framework.name == "CV2" and \
                    not dataset.dataset_specific_preprocessing:
                continue
            if framework.name == "PyTorch" and \
                    dataset.dataset_specific_preprocessing:
                continue
            estimates.append(framework.estimate(dataset, platform))
    return estimates


def e2e_sweep(platform: PlatformSpec,
              models: tuple[ModelGraph, ...] | None = None,
              datasets: tuple[DatasetSpec, ...] | None = None,
              ) -> list[EndToEndResult]:
    """One Fig. 8 panel: end-to-end results for every (model, dataset)."""
    if models is None:
        models = tuple(entry.graph for entry in list_models())
    datasets = datasets or tuple(list_datasets())
    results = []
    for graph in models:
        pipeline = EndToEndPipeline(graph, platform)
        results.extend(pipeline.sweep_datasets(list(datasets)))
    return results
