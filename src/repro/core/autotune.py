"""Online SLO autotuning of the dynamic batcher.

The paper's guidance is static (pick a batch size from the Fig. 6
analysis); real load varies.  :class:`SLOAutotuner` closes the loop at
runtime: it periodically measures the recent p95 latency of a served
model and adjusts the batcher's queue-delay budget with an AIMD-style
rule — shrink multiplicatively when the SLO is violated, grow additively
when there is comfortable headroom (larger delay → larger batches →
better MFU, the Fig. 5 efficiency axis).

Runs entirely on the discrete-event simulator; the ablation bench shows
it tracking a load step that a static configuration misses.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.serving.batcher import BatcherConfig
from repro.serving.server import TritonLikeServer


@dataclasses.dataclass(frozen=True)
class TuningStep:
    """One controller decision (for post-run inspection)."""

    time: float
    observed_p95: float | None
    queue_delay: float
    action: str  # "shrink" | "grow" | "hold" | "idle"


class SLOAutotuner:
    """AIMD controller on ``max_queue_delay`` for one served model.

    Parameters
    ----------
    server / model:
        The serving stack and the model entry to control.
    target_p95_seconds:
        The latency SLO.
    interval_seconds:
        Control period (measurement window).
    shrink_factor / grow_step:
        Multiplicative decrease on violation, additive increase (in
        seconds) when p95 sits below ``headroom`` of the target.
    """

    def __init__(self, server: TritonLikeServer, model: str,
                 target_p95_seconds: float,
                 interval_seconds: float = 0.25,
                 min_delay: float = 1e-4, max_delay: float = 0.05,
                 shrink_factor: float = 0.5, grow_step: float = 1e-3,
                 headroom: float = 0.6):
        if target_p95_seconds <= 0 or interval_seconds <= 0:
            raise ValueError("target and interval must be positive")
        if not 0 < min_delay <= max_delay:
            raise ValueError("need 0 < min_delay <= max_delay")
        if not 0 < shrink_factor < 1:
            raise ValueError("shrink_factor must be in (0, 1)")
        if not 0 < headroom < 1:
            raise ValueError("headroom must be in (0, 1)")
        self.server = server
        self.model = model
        self.target = target_p95_seconds
        self.interval = interval_seconds
        self.min_delay = min_delay
        self.max_delay = max_delay
        self.shrink_factor = shrink_factor
        self.grow_step = grow_step
        self.headroom = headroom
        self.history: list[TuningStep] = []
        self._seen = 0
        self._running = False

    # ------------------------------------------------------------------
    def start(self, duration: float | None = None) -> None:
        """Arm the control loop (optionally for a bounded duration)."""
        if self._running:
            raise RuntimeError("autotuner already started")
        self._running = True
        self._deadline = (None if duration is None
                          else self.server.sim.now + duration)
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self._deadline is not None and \
                self.server.sim.now >= self._deadline:
            self._running = False
            return
        self.server.sim.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        window = [r for r in self.server.responses[self._seen:]
                  if r.ok and r.request.model_name == self.model]
        self._seen = len(self.server.responses)
        config = self.server.batcher_config(self.model)
        delay = config.max_queue_delay

        if not window:
            self.history.append(TuningStep(self.server.sim.now, None,
                                           delay, "idle"))
            self._schedule_next()
            return

        p95 = float(np.percentile([r.latency for r in window], 95))
        if p95 > self.target:
            new_delay = max(self.min_delay, delay * self.shrink_factor)
            action = "shrink"
        elif p95 < self.headroom * self.target:
            new_delay = min(self.max_delay, delay + self.grow_step)
            action = "grow"
        else:
            new_delay = delay
            action = "hold"
        if new_delay != delay:
            self.server.reconfigure_batcher(
                self.model,
                dataclasses.replace(config, max_queue_delay=new_delay))
        self.history.append(TuningStep(self.server.sim.now, p95,
                                       new_delay, action))
        self._schedule_next()

    # ------------------------------------------------------------------
    @property
    def current_delay(self) -> float:
        """The batcher's live queue-delay setting."""
        return self.server.batcher_config(self.model).max_queue_delay

    def violations(self) -> int:
        """Control periods whose window p95 exceeded the target."""
        return sum(1 for step in self.history
                   if step.observed_p95 is not None
                   and step.observed_p95 > self.target)
