"""Paper-vs-model comparison: the data behind EXPERIMENTS.md.

Collects every quantitative anchor printed in the paper next to what this
reproduction produces for it, with the relative error.  Run
``python -m repro.analysis.compare`` to print the table.
"""

from __future__ import annotations

import dataclasses

from repro.core.sweeps import engine_sweep
from repro.engine.calibration import THROUGHPUT_ANCHORS
from repro.hardware.platform import get_platform, list_platforms
from repro.models.zoo import list_models


@dataclasses.dataclass(frozen=True)
class ComparisonRow:
    """One anchor: paper value vs model value."""

    experiment: str
    quantity: str
    paper: float
    model: float

    @property
    def relative_error(self) -> float:
        """Absolute error relative to the paper value."""
        if self.paper == 0:
            return float("inf") if self.model else 0.0
        return abs(self.model - self.paper) / abs(self.paper)


def paper_comparison() -> list[ComparisonRow]:
    """Every numeric anchor the paper prints, compared."""
    rows: list[ComparisonRow] = []

    # Table 1: practical TFLOPS and efficiency.
    for platform in list_platforms():
        rows.append(ComparisonRow(
            "table1", f"{platform.name} practical TFLOPS",
            paper=platform.practical_tflops,
            model=platform.practical_tflops))  # definitionally anchored
    rows.append(ComparisonRow(
        "table1", "V100 efficiency %", paper=82.68,
        model=get_platform("v100").flops_efficiency * 100))
    rows.append(ComparisonRow(
        "table1", "A100 efficiency %", paper=75.74,
        model=get_platform("a100").flops_efficiency * 100))

    # Table 3: params / GFLOPs / upper bounds.
    upper_bounds = {
        ("a100", "vit_tiny"): 172508, ("a100", "vit_small"): 43214,
        ("a100", "vit_base"): 14013, ("a100", "resnet50"): 57775,
        ("v100", "vit_tiny"): 67602, ("v100", "vit_small"): 16935,
        ("v100", "vit_base"): 5491, ("v100", "resnet50"): 22641,
        ("jetson", "vit_tiny"): 8322, ("jetson", "vit_small"): 2085,
        ("jetson", "vit_base"): 676, ("jetson", "resnet50"): 2787,
    }
    for entry in list_models():
        graph = entry.graph
        rows.append(ComparisonRow(
            "table3", f"{entry.name} params (M)",
            paper=entry.paper_params_millions,
            model=graph.total_params() / 1e6))
        rows.append(ComparisonRow(
            "table3", f"{entry.name} GFLOPs/image",
            paper=entry.paper_gflops_per_image,
            model=graph.reported_gflops()))
        for platform in list_platforms():
            key = (platform.name.lower(), entry.name)
            rows.append(ComparisonRow(
                "table3",
                f"{entry.name} upper bound on {platform.name} (img/s)",
                paper=float(upper_bounds[key]),
                model=platform.throughput_upper_bound(
                    graph.flops_per_image())))

    # Section 4.0.2 FLOP splits.
    vit_tiny = next(e for e in list_models() if e.name == "vit_tiny").graph
    mlp, attn = vit_tiny.mlp_attention_split()
    rows.append(ComparisonRow("sec4", "ViT Tiny MLP share %",
                              paper=81.73, model=mlp * 100))
    rows.append(ComparisonRow("sec4", "ViT Tiny attention share %",
                              paper=18.23, model=attn * 100))
    resnet = next(e for e in list_models() if e.name == "resnet50").graph
    from repro.models.layers import LayerCategory

    conv_share = resnet.compute_breakdown()[LayerCategory.CONV]
    rows.append(ComparisonRow("sec4", "ResNet50 conv share %",
                              paper=99.5, model=conv_share * 100))

    # Fig 5/6 legend throughputs at max batch.
    for (plat, model), (batch, paper_thr) in sorted(THROUGHPUT_ANCHORS.items()):
        graph = next(e for e in list_models() if e.name == model).graph
        points = engine_sweep(graph, get_platform(plat))
        at_anchor = next(p for p in points if p.batch_size == batch)
        rows.append(ComparisonRow(
            "fig5", f"{model} on {plat} img/s @BS{batch}",
            paper=paper_thr, model=at_anchor.throughput))

    return rows


def render_comparison(rows: list[ComparisonRow] | None = None) -> str:
    """Render the paper-vs-model diff as an ASCII table."""
    from repro.core.results import render_table

    rows = rows if rows is not None else paper_comparison()
    return render_table("Paper vs model", [
        {
            "experiment": r.experiment,
            "quantity": r.quantity,
            "paper": r.paper,
            "model": round(r.model, 3),
            "rel_err_pct": round(r.relative_error * 100, 2),
        }
        for r in rows
    ])


if __name__ == "__main__":  # pragma: no cover
    print(render_comparison())
