"""Text rendering of the full reproduction report."""

from __future__ import annotations

from repro.analysis.figures import FigureSeries, fig5, fig6, fig7, fig8
from repro.analysis.tables import table1, table2, table3
from repro.core.results import render_table


def render_series(series: list[FigureSeries], max_points: int = 6) -> str:
    """Compact text rendering of figure series (legend + endpoints)."""
    lines = []
    current_panel = None
    for s in series:
        if (s.figure, s.panel) != current_panel:
            current_panel = (s.figure, s.panel)
            lines.append(f"-- {s.figure} [{s.panel}] --")
        pts = list(zip(s.x, s.y))
        if len(pts) > max_points:
            shown = pts[:max_points // 2] + [("...", "...")] + \
                pts[-max_points // 2:]
        else:
            shown = pts
        rendered = ", ".join(
            f"{x}:{y:.4g}" if isinstance(y, float) else f"{x}:{y}"
            for x, y in shown)
        lines.append(f"  {s.name}: {rendered}")
    return "\n".join(lines) + "\n"


def render_report(artifact: str) -> str:
    """Render one named artifact ("table1".."table3", "fig5".."fig8")."""
    generators = {
        "table1": lambda: table1().render(),
        "table2": lambda: table2().render(),
        "table3": lambda: table3().render(),
        "fig5": lambda: render_series(fig5()),
        "fig6": lambda: render_series(fig6()),
        "fig7": lambda: render_series(fig7()),
        "fig8": lambda: render_series(fig8()),
    }
    if artifact not in generators:
        raise KeyError(
            f"unknown artifact {artifact!r}; available: "
            f"{sorted(generators)}")
    return generators[artifact]()


def full_report() -> str:
    """Every table and figure, rendered to one text document."""
    parts = [render_report(name)
             for name in ("table1", "table2", "table3",
                          "fig5", "fig6", "fig7", "fig8")]
    return "\n".join(parts)


def render_rows(title: str, rows: list[dict]) -> str:
    """Convenience re-export of the core renderer."""
    return render_table(title, rows)


def registry_stage_breakdown(registry) -> dict[str, dict]:
    """Per-stage time summary from a live metrics registry.

    The same shape as :func:`repro.serving.tracing.stage_breakdown` —
    {stage: {count, total_seconds, mean_seconds, retried_attempts}}
    plus the ``"queued"`` pseudo-stage — but computed from the
    registry's ``execution_seconds`` / ``queue_wait_seconds``
    histograms instead of re-walking completed response traces, so it
    works mid-run and at production request volumes.  One difference in
    granularity: stage counts here are *batch executions* (what an
    instance actually ran), while the tracing view counts per-request
    spans; queue waits are per request in both.
    """
    out: dict[str, dict] = {}
    exec_hist = registry.get("execution_seconds")
    retries = registry.get("retries_total")
    if exec_hist is not None:
        for key, series in exec_hist.items():
            stage = dict(key).get("stage", "")
            out[stage] = {
                "count": series.count,
                "total_seconds": series.sum,
                "mean_seconds": (series.sum / series.count
                                 if series.count else 0.0),
                "retried_attempts": (int(retries.value(stage=stage))
                                     if retries is not None else 0),
            }
    wait_hist = registry.get("queue_wait_seconds")
    if wait_hist is not None:
        count = sum(s.count for _, s in wait_hist.items())
        total = sum(s.sum for _, s in wait_hist.items())
        out["queued"] = {
            "count": count,
            "total_seconds": total,
            "mean_seconds": total / count if count else 0.0,
            "retried_attempts": 0,
        }
    return out


def render_scaling_timeline(events, slo_seconds: float | None = None,
                            width: int = 24) -> str:
    """Text timeline of autoscaler actions.

    ``events`` is a sequence of
    :class:`~repro.scale.autoscaler.ScaleEvent`; each row shows the
    action, the pool size after it (with a bar), and the signals that
    triggered it.  ``slo_seconds`` annotates p95 readings that breached
    the SLO with ``!``.
    """
    if width < 4:
        raise ValueError("width must be >= 4")
    if not events:
        return "(no scale events)\n"
    peak = max(max(e.replicas for e in events), 1)
    lines = [f"{'t (s)':>8s}  {'action':<10s} {'repl':>4s}  "
             f"{'p95 ms':>8s}  {'queue':>6s}  {'util':>5s}  "
             f"pool                      reason"]
    for event in events:
        if event.p95_seconds is None:
            p95 = "-"
        else:
            p95 = f"{event.p95_seconds * 1e3:.1f}"
            if (slo_seconds is not None
                    and event.p95_seconds > slo_seconds):
                p95 += "!"
        bar = "#" * max(1, round(event.replicas / peak * width))
        lines.append(
            f"{event.time:8.2f}  {event.action:<10s} "
            f"{event.replicas:4d}  {p95:>8s}  "
            f"{event.queue_per_replica:6.1f}  "
            f"{event.utilization:5.0%}  {bar:<{width}s}  "
            f"{event.reason}")
    return "\n".join(lines) + "\n"


def render_slo_alerts(alerts, config=None) -> str:
    """Text table of SLO burn-rate alerts.

    ``alerts`` is a sequence of
    :class:`~repro.serving.slo.BurnAlert`; ``config`` (an
    :class:`~repro.serving.slo.SLOConfig`) adds a header line naming
    the objective and windows.
    """
    lines = []
    if config is not None:
        lines.append(
            f"objective: {config.objective:.1%} under "
            f"{config.latency_threshold_seconds * 1e3:g} ms "
            f"(windows {config.fast_window_seconds:g}s/"
            f"{config.slow_window_seconds:g}s, burn thresholds "
            f"{config.fast_burn_threshold:g}/"
            f"{config.slow_burn_threshold:g})")
    if not alerts:
        lines.append("(no burn-rate alerts)")
        return "\n".join(lines) + "\n"
    lines.append(f"{'t (s)':>8s}  {'fast burn':>9s}  {'slow burn':>9s}  "
                 f"{'err rate':>8s}  {'budget left':>11s}")
    for alert in alerts:
        lines.append(
            f"{alert.time:8.2f}  {alert.fast_burn_rate:9.1f}  "
            f"{alert.slow_burn_rate:9.1f}  "
            f"{alert.window_error_rate:8.1%}  "
            f"{alert.budget_remaining:11.1%}")
    return "\n".join(lines) + "\n"


def render_cache_table(summaries: list[dict]) -> str:
    """Text table of per-tier cache behaviour.

    ``summaries`` is :meth:`repro.cache.tiers.CacheHierarchy.summaries`
    output: one row per tier with lookup counts, hit ratio, stale and
    eviction counts, and byte residency against capacity.
    """
    if not summaries:
        return "(no cache tiers)\n"
    lines = [f"{'tier':<14s} {'lookups':>8s} {'hits':>7s} "
             f"{'miss':>6s} {'stale':>6s} {'ratio':>6s} "
             f"{'evict':>6s} {'entries':>7s} {'resident':>12s}"]
    for row in summaries:
        resident = (f"{row['used_bytes'] / 1024:.0f}/"
                    f"{row['capacity_bytes'] / 1024:.0f}KiB")
        lines.append(
            f"{row['tier']:<14s} {row['lookups']:8d} {row['hits']:7d} "
            f"{row['misses']:6d} {row['stale']:6d} "
            f"{row['hit_ratio']:6.1%} {row['evictions']:6d} "
            f"{row['entries']:7d} {resident:>12s}")
    return "\n".join(lines) + "\n"


def render_stage_breakdown(breakdown: dict[str, dict]) -> str:
    """Text table for a stage breakdown (tracing- or registry-built)."""
    lines = [f"{'stage':<16s} {'count':>7s} {'total s':>10s} "
             f"{'mean ms':>9s} {'retried':>8s}"]
    for stage in sorted(breakdown):
        row = breakdown[stage]
        lines.append(
            f"{stage:<16s} {row['count']:7d} "
            f"{row['total_seconds']:10.4f} "
            f"{row['mean_seconds'] * 1e3:9.3f} "
            f"{row.get('retried_attempts', 0):8d}")
    return "\n".join(lines) + "\n"
