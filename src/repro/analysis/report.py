"""Text rendering of the full reproduction report."""

from __future__ import annotations

from repro.analysis.figures import FigureSeries, fig5, fig6, fig7, fig8
from repro.analysis.tables import table1, table2, table3
from repro.core.results import render_table


def render_series(series: list[FigureSeries], max_points: int = 6) -> str:
    """Compact text rendering of figure series (legend + endpoints)."""
    lines = []
    current_panel = None
    for s in series:
        if (s.figure, s.panel) != current_panel:
            current_panel = (s.figure, s.panel)
            lines.append(f"-- {s.figure} [{s.panel}] --")
        pts = list(zip(s.x, s.y))
        if len(pts) > max_points:
            shown = pts[:max_points // 2] + [("...", "...")] + \
                pts[-max_points // 2:]
        else:
            shown = pts
        rendered = ", ".join(
            f"{x}:{y:.4g}" if isinstance(y, float) else f"{x}:{y}"
            for x, y in shown)
        lines.append(f"  {s.name}: {rendered}")
    return "\n".join(lines) + "\n"


def render_report(artifact: str) -> str:
    """Render one named artifact ("table1".."table3", "fig5".."fig8")."""
    generators = {
        "table1": lambda: table1().render(),
        "table2": lambda: table2().render(),
        "table3": lambda: table3().render(),
        "fig5": lambda: render_series(fig5()),
        "fig6": lambda: render_series(fig6()),
        "fig7": lambda: render_series(fig7()),
        "fig8": lambda: render_series(fig8()),
    }
    if artifact not in generators:
        raise KeyError(
            f"unknown artifact {artifact!r}; available: "
            f"{sorted(generators)}")
    return generators[artifact]()


def full_report() -> str:
    """Every table and figure, rendered to one text document."""
    parts = [render_report(name)
             for name in ("table1", "table2", "table3",
                          "fig5", "fig6", "fig7", "fig8")]
    return "\n".join(parts)


def render_rows(title: str, rows: list[dict]) -> str:
    """Convenience re-export of the core renderer."""
    return render_table(title, rows)
