"""Table 1–3 regeneration."""

from __future__ import annotations

from repro.core.results import ResultTable
from repro.core.study import CharacterizationStudy


def table1(real_host_run: bool = False) -> ResultTable:
    """Table 1: platforms, theoretical vs practical TFLOPS.

    ``real_host_run=True`` appends a row measured with real NumPy GEMMs on
    this host — demonstrating the methodology on hardware that actually
    exists here.
    """
    table = CharacterizationStudy().table1()
    if real_host_run:
        from repro.hardware.gemm import GemmBenchmark

        sweep = GemmBenchmark(sizes=(256, 512, 1024), repeats=2).run_host()
        table.rows.append({
            "platform": "host (measured)",
            "cpu_cores": 1,
            "gpu": "none (NumPy BLAS)",
            "memory_gb": 0.0,
            "theory_tflops": round(
                sweep.results[-1].theoretical_tflops, 3),
            "practical_tflops": round(sweep.practical_tflops, 3),
            "efficiency_pct": round(sweep.efficiency * 100, 2),
            "precision": "fp32",
        })
    return table


def table2() -> ResultTable:
    """Table 2: evaluated agriculture datasets."""
    return CharacterizationStudy().table2()


def table3() -> ResultTable:
    """Table 3: model specs and per-platform throughput upper bounds."""
    return CharacterizationStudy().table3()
