"""Statistical utilities for benchmark results.

Measurement hygiene for the harness: bootstrap confidence intervals on
latency/throughput summaries, and a rank-based A/B comparison so
ablations can claim "X beats Y" with an error probability instead of a
single-run delta.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class ConfidenceInterval:
    """A bootstrap interval for one statistic."""

    statistic: str
    estimate: float
    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        """Interval width (high - low)."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether the interval covers ``value``."""
        return self.low <= value <= self.high


def bootstrap_ci(samples, statistic=np.mean, confidence: float = 0.95,
                 resamples: int = 2000, seed: int = 0,
                 name: str = "mean") -> ConfidenceInterval:
    """Percentile-bootstrap CI of ``statistic`` over ``samples``."""
    samples = np.asarray(list(samples), dtype=float)
    if samples.size < 2:
        raise ValueError("need at least two samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if resamples < 10:
        raise ValueError("resamples must be >= 10")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, samples.size, size=(resamples, samples.size))
    stats = statistic(samples[indices], axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(stats, [100 * alpha, 100 * (1 - alpha)])
    return ConfidenceInterval(
        statistic=name,
        estimate=float(statistic(samples)),
        low=float(low),
        high=float(high),
        confidence=confidence,
    )


def latency_cis(latencies, confidence: float = 0.95,
                seed: int = 0) -> dict[str, ConfidenceInterval]:
    """Bootstrap CIs for the summary statistics the harness reports."""
    latencies = np.asarray(list(latencies), dtype=float)
    return {
        "mean": bootstrap_ci(latencies, np.mean, confidence, seed=seed,
                             name="mean"),
        "p95": bootstrap_ci(
            latencies, lambda a, axis=None: np.percentile(a, 95,
                                                          axis=axis),
            confidence, seed=seed, name="p95"),
    }


def probability_a_beats_b(a, b, resamples: int = 2000,
                          seed: int = 0) -> float:
    """Bootstrap P(mean(A) < mean(B)) — for "A is faster" claims.

    Values are latencies, so *lower is better*; returns the probability
    that A's mean latency is below B's under resampling.
    """
    a = np.asarray(list(a), dtype=float)
    b = np.asarray(list(b), dtype=float)
    if a.size < 2 or b.size < 2:
        raise ValueError("need at least two samples per group")
    rng = np.random.default_rng(seed)
    a_means = a[rng.integers(0, a.size, size=(resamples, a.size))].mean(
        axis=1)
    b_means = b[rng.integers(0, b.size, size=(resamples, b.size))].mean(
        axis=1)
    return float(np.mean(a_means < b_means))
