"""Figure 4–8 series regeneration.

Each ``figN`` function returns a list of :class:`FigureSeries` — named
(x, y) series with panel/axis metadata — the exact data a plotting script
would draw, and what the paper's figures printed as curves/bars.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.sweeps import e2e_sweep, engine_sweep, preprocessing_sweep
from repro.data.datasets import list_datasets
from repro.data.distributions import density_grid, empirical_mode
from repro.engine.calibration import LATENCY_TARGET_SECONDS, batch_grid
from repro.hardware.platform import get_platform, list_platforms
from repro.models.zoo import list_models


@dataclasses.dataclass(frozen=True)
class FigureSeries:
    """One named series within one panel of a figure."""

    figure: str
    panel: str              # e.g. the platform name
    name: str               # legend entry
    x: tuple
    y: tuple
    meta: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"{self.figure}/{self.name}: x and y lengths differ "
                f"({len(self.x)} vs {len(self.y)})")


# ----------------------------------------------------------------------
def fig4(samples: int = 20000, seed: int = 0) -> list[FigureSeries]:
    """Image-size density distributions per dataset (Fig. 4).

    Each series is the flattened density grid; ``meta`` carries the grid
    shape and the estimated mode label (the figure's "233x233" text).
    """
    series = []
    rng = np.random.default_rng(seed)
    for spec in list_datasets():
        dist = spec.size_distribution
        if dist.is_uniform:
            mode = dist.mode
            series.append(FigureSeries(
                "fig4", spec.name, spec.display_name,
                x=(mode[0],), y=(mode[1],),
                meta={"mode_label": f"{mode[0]}x{mode[1]}",
                      "uniform": True}))
            continue
        sizes = dist.sample(samples, rng)
        density, w_edges, h_edges = density_grid(sizes)
        mode = empirical_mode(sizes)
        series.append(FigureSeries(
            "fig4", spec.name, spec.display_name,
            x=tuple(np.repeat(w_edges[:-1], len(h_edges) - 1)),
            y=tuple(np.tile(h_edges[:-1], len(w_edges) - 1)),
            meta={"density": tuple(density.ravel()),
                  "mode_label": f"{mode[0]}x{mode[1]}",
                  "uniform": False}))
    return series


# ----------------------------------------------------------------------
def fig5(platform_name: str | None = None) -> list[FigureSeries]:
    """TFLOPS vs batch size per platform (Fig. 5): solid achieved lines
    plus the dashed theoretical ceiling."""
    platforms = ([get_platform(platform_name)] if platform_name
                 else list_platforms())
    series = []
    for platform in platforms:
        grid = batch_grid(platform.name)
        series.append(FigureSeries(
            "fig5", platform.name, "theoretical",
            x=grid, y=tuple(
                platform.theoretical_tflops[platform.benchmark_precision]
                for _ in grid),
            meta={"style": "dashed"}))
        series.append(FigureSeries(
            "fig5", platform.name, "practical_bound",
            x=grid, y=tuple(platform.practical_tflops for _ in grid),
            meta={"style": "dashed"}))
        for entry in list_models():
            points = engine_sweep(entry.graph, platform)
            series.append(FigureSeries(
                "fig5", platform.name, entry.display_name,
                x=tuple(p.batch_size for p in points),
                y=tuple(p.achieved_tflops for p in points),
                meta={"throughput_at_max":
                      points[-1].throughput,
                      "max_batch": points[-1].batch_size}))
    return series


# ----------------------------------------------------------------------
def fig6(platform_name: str | None = None) -> list[FigureSeries]:
    """Request latency vs batch size (Fig. 6), with the 60-QPS red line."""
    platforms = ([get_platform(platform_name)] if platform_name
                 else list_platforms())
    series = []
    for platform in platforms:
        grid = batch_grid(platform.name)
        series.append(FigureSeries(
            "fig6", platform.name, "60qps_threshold",
            x=grid, y=tuple(LATENCY_TARGET_SECONDS * 1e3 for _ in grid),
            meta={"style": "threshold"}))
        for entry in list_models():
            points = engine_sweep(entry.graph, platform)
            series.append(FigureSeries(
                "fig6", platform.name, entry.display_name,
                x=tuple(p.batch_size for p in points),
                y=tuple(p.latency_seconds * 1e3 for p in points),
                meta={"theoretical_ms": tuple(
                    p.theoretical_latency_seconds * 1e3 for p in points)}))
    return series


# ----------------------------------------------------------------------
def fig7(platform_name: str | None = None) -> list[FigureSeries]:
    """Preprocessing latency and throughput (Fig. 7).

    Two series per (platform, framework): latency bars and throughput
    bars, with datasets along x (as legend groups in the paper).
    """
    platforms = ([get_platform(platform_name)] if platform_name
                 else list_platforms())
    series = []
    for platform in platforms:
        estimates = preprocessing_sweep(platform)
        frameworks = sorted({e.framework for e in estimates},
                            key=lambda f: [e.framework
                                           for e in estimates].index(f))
        for framework in frameworks:
            cells = [e for e in estimates if e.framework == framework]
            datasets = tuple(c.dataset for c in cells)
            series.append(FigureSeries(
                "fig7", platform.name, f"{framework} latency",
                x=datasets,
                y=tuple(c.batch_latency_seconds * 1e3 for c in cells),
                meta={"metric": "latency_ms",
                      "batch_size": cells[0].batch_size}))
            series.append(FigureSeries(
                "fig7", platform.name, f"{framework} throughput",
                x=datasets,
                y=tuple(c.throughput for c in cells),
                meta={"metric": "images_per_second",
                      "batch_size": cells[0].batch_size}))
    return series


# ----------------------------------------------------------------------
def fig8(platform_name: str | None = None) -> list[FigureSeries]:
    """End-to-end latency and throughput (Fig. 8)."""
    platforms = ([get_platform(platform_name)] if platform_name
                 else list_platforms())
    series = []
    for platform in platforms:
        results = e2e_sweep(platform)
        models = sorted({r.model for r in results},
                        key=lambda m: [r.model for r in results].index(m))
        for model in models:
            cells = [r for r in results if r.model == model]
            datasets = tuple(c.dataset for c in cells)
            label = f"{model}@BS{cells[0].batch_size}"
            series.append(FigureSeries(
                "fig8", platform.name, f"{label} latency",
                x=datasets,
                y=tuple(c.latency_seconds * 1e3 for c in cells),
                meta={"metric": "latency_ms",
                      "batch_size": cells[0].batch_size}))
            series.append(FigureSeries(
                "fig8", platform.name, f"{label} throughput",
                x=datasets,
                y=tuple(c.throughput for c in cells),
                meta={"metric": "images_per_second",
                      "batch_size": cells[0].batch_size,
                      "bottlenecks": tuple(c.bottleneck for c in cells)}))
    return series
