"""Per-layer roofline placement (Section 3.1's intensity analysis).

"Computational cost varies by layer type.  For instance, attention
layers in Transformer models generally have much higher computational
intensity than CNN layers with comparable parameter counts."  This
module computes each fused engine layer's arithmetic intensity
(FLOPs per byte moved: weights read once, activations in + out) and
places it on the platform roofline, classifying it compute- or
bandwidth-bound — the per-layer view behind the whole-model MFU story.
"""

from __future__ import annotations

import dataclasses

from repro.hardware.platform import PlatformSpec
from repro.hardware.roofline import RooflineModel
from repro.models.graph import ModelGraph
from repro.models.trt import TRTEngineBuilder


@dataclasses.dataclass(frozen=True)
class LayerRooflinePoint:
    """One fused layer on the roofline."""

    layer: str
    category: str
    gmacs: float
    intensity: float            # FLOPs / byte at the given batch
    attainable_tflops: float
    compute_bound: bool
    time_fraction: float        # share of the model's roofline time


def model_layer_roofline(graph: ModelGraph, platform: PlatformSpec,
                         batch_size: int = 64,
                         bytes_per_elem: int = 2,
                         ) -> list[LayerRooflinePoint]:
    """Place every fused layer of a model on the platform roofline.

    Intensity per layer at batch ``b``:

        FLOPs  = 2 · b · MACs  (+ elementwise)
        bytes  = weights + b · (input + output activations) · width

    Weight traffic amortizes over the batch — exactly why batching
    raises MFU (Fig. 5) and why small batches leave matmuls
    bandwidth-bound.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    builder = TRTEngineBuilder(platform)
    fused = builder.fuse(graph)
    roofline = RooflineModel(platform)

    # Per-layer time under the roofline: FLOPs / attainable rate.
    points = []
    times = []
    # Input activations approximated by the previous layer's output.
    prev_elems = (graph.input_shape[0] * graph.input_shape[1]
                  * graph.input_shape[2])
    for layer in fused:
        weights = sum(
            spec.params() for spec in graph.layers
            if spec.name in layer.source_layers) * bytes_per_elem
        act_bytes = (prev_elems + layer.activation_elements) \
            * bytes_per_elem * batch_size
        flops = 2.0 * batch_size * layer.macs \
            + batch_size * layer.elementwise_flops
        if flops <= 0:
            prev_elems = layer.activation_elements
            continue
        intensity = flops / max(weights + act_bytes, 1.0)
        placed = roofline.attainable(intensity)
        seconds = flops / (placed.attainable_tflops * 1e12)
        times.append(seconds)
        points.append((layer, flops, intensity, placed, seconds))
        prev_elems = layer.activation_elements

    total = sum(times) or 1.0
    return [
        LayerRooflinePoint(
            layer=layer.name,
            category=layer.category.value,
            gmacs=layer.macs / 1e9,
            intensity=intensity,
            attainable_tflops=placed.attainable_tflops,
            compute_bound=placed.compute_bound,
            time_fraction=seconds / total,
        )
        for (layer, flops, intensity, placed, seconds) in points
    ]


def roofline_summary(graph: ModelGraph, platform: PlatformSpec,
                     batch_size: int = 64) -> dict:
    """Aggregate view: compute-bound share, dominant categories."""
    points = model_layer_roofline(graph, platform, batch_size)
    compute_share = sum(p.time_fraction for p in points
                        if p.compute_bound)
    by_category: dict[str, float] = {}
    for p in points:
        by_category[p.category] = by_category.get(p.category, 0.0) \
            + p.time_fraction
    return {
        "model": graph.name,
        "platform": platform.name,
        "batch_size": batch_size,
        "layers": len(points),
        "compute_bound_time_fraction": compute_share,
        "time_by_category": by_category,
    }
