"""Analysis harness: regenerate every table and figure of the paper.

One function per artifact (``table1``..``table3``, ``fig4``..``fig8``),
each returning structured data plus a ``render_*`` helper producing the
text report, and :mod:`repro.analysis.compare` producing the
paper-vs-model deltas recorded in EXPERIMENTS.md.
"""

from repro.analysis.tables import table1, table2, table3
from repro.analysis.figures import (
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    FigureSeries,
)
from repro.analysis.report import render_report, full_report
from repro.analysis.compare import (
    paper_comparison,
    ComparisonRow,
)
from repro.analysis.stats import (
    ConfidenceInterval,
    bootstrap_ci,
    latency_cis,
    probability_a_beats_b,
)

__all__ = [
    "table1",
    "table2",
    "table3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "FigureSeries",
    "render_report",
    "full_report",
    "paper_comparison",
    "ComparisonRow",
    "ConfidenceInterval",
    "bootstrap_ci",
    "latency_cis",
    "probability_a_beats_b",
]
