"""The inference engine facade.

An :class:`InferenceEngine` combines a built TRT-like plan with the
calibrated performance and memory models, and optionally the *functional*
NumPy forward pass, behind one `infer(batch)`-shaped API that the serving
layer hosts as a backend instance.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.engine.latency import EnginePoint, LatencyModel
from repro.engine.mfu import MFUModel
from repro.engine.oom import EngineMemoryModel
from repro.hardware.platform import PlatformSpec
from repro.hardware.precision import Precision
from repro.models.functional import FunctionalModel, build_functional
from repro.models.graph import ModelGraph
from repro.models.trt import BuiltEngineSpec, TRTEngineBuilder


@dataclasses.dataclass(frozen=True)
class InferenceResult:
    """Outcome of one (possibly simulated) batch inference."""

    batch_size: int
    latency_seconds: float
    outputs: np.ndarray | None  # logits when run functionally, else None

    @property
    def throughput(self) -> float:
        """Images per second implied by the batch latency."""
        return self.batch_size / self.latency_seconds


class InferenceEngine:
    """A deployed model instance on one platform.

    Parameters
    ----------
    graph:
        The model to deploy.
    platform:
        Target device.
    precision:
        Engine numeric format (defaults to the platform's benchmark
        precision, the paper's setup).
    functional:
        When True, :meth:`infer` actually executes the NumPy forward pass
        and returns logits; the *timing* still comes from the calibrated
        model (this process is not a GPU).
    max_batch_size:
        Engine profile limit; memory feasibility at this batch is checked
        at construction (build-time OOM, like ``trtexec``).
    """

    def __init__(self, graph: ModelGraph, platform: PlatformSpec,
                 precision: Precision | None = None,
                 functional: bool = False,
                 max_batch_size: int = 1024,
                 memory_budget_bytes: float | None = None):
        self.graph = graph
        self.platform = platform
        builder = TRTEngineBuilder(platform, precision)
        self.precision = builder.precision
        self.spec: BuiltEngineSpec = builder.build(
            graph, max_batch_size=max_batch_size)
        self.memory_model = EngineMemoryModel(graph, platform,
                                              self.precision)
        self.mfu_model = MFUModel(graph, platform)
        self.latency_model = LatencyModel(graph, platform, self.mfu_model,
                                          precision=self.precision)
        self._budget = memory_budget_bytes
        self.max_batch_size = max_batch_size
        # Build-time check: batch 1 must fit.
        self.memory_model.require(1, self._budget)
        self._functional: FunctionalModel | None = (
            build_functional(graph.name) if functional else None)

    # ------------------------------------------------------------------
    def memory_bytes(self, batch_size: int) -> float:
        """Predicted engine memory at a batch size."""
        return self.memory_model.engine_bytes(batch_size)

    def check_batch(self, batch_size: int) -> None:
        """Validate a batch against the profile and memory (raises)."""
        if not 1 <= batch_size <= self.max_batch_size:
            raise ValueError(
                f"batch {batch_size} outside engine profile "
                f"[1, {self.max_batch_size}]")
        self.memory_model.require(batch_size, self._budget)

    def predict_point(self, batch_size: int) -> EnginePoint:
        """Predicted performance at a batch size (validates memory)."""
        self.check_batch(batch_size)
        return self.latency_model.point(batch_size)

    def infer(self, batch: "np.ndarray | int") -> InferenceResult:
        """Serve one batch.

        ``batch`` is either a real input array ``(N, C, H, W)`` (functional
        mode executes it) or an integer batch size (pure simulation).
        """
        if isinstance(batch, (int, np.integer)):
            batch_size = int(batch)
            inputs = None
        else:
            if batch.ndim != 4:
                raise ValueError(
                    f"expected (N, C, H, W) input, got shape {batch.shape}")
            if tuple(batch.shape[1:]) != self.graph.input_shape:
                raise ValueError(
                    f"engine {self.graph.name} expects per-image shape "
                    f"{self.graph.input_shape}, got {tuple(batch.shape[1:])}")
            batch_size = batch.shape[0]
            inputs = batch
        self.check_batch(batch_size)
        latency = self.latency_model.latency(batch_size)
        outputs = None
        if self._functional is not None and inputs is not None:
            outputs = self._functional(
                inputs.astype(self.precision.numpy_dtype, copy=False)
                .astype(np.float32, copy=False))
        return InferenceResult(batch_size, latency, outputs)

    def __repr__(self) -> str:
        return (f"InferenceEngine({self.graph.name!r} on "
                f"{self.platform.name}, {self.precision.value}, "
                f"max_batch={self.max_batch_size})")
