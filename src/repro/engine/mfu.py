"""Model FLOPs Utilization (MFU) as a function of batch size.

Section 4.1: "a substantial gap exists between the Model FLOPs Utilization
(MFU) and the practical upper bound ... This gap can be narrowed through
two primary mechanisms: increasing batch size, which enhances
computational intensity, and deploying larger models ... increasing batch
size demonstrates diminishing returns: MFU improves gradually before
eventually plateauing".

The law used here is a saturating exponential,

    MFU(b) = MFU_peak · (1 − exp(−b / b_sat)),

with ``b_sat = K_SAT(platform) · REF_GFLOPS / model_gflops`` (heavier
models saturate at smaller batches) and ``MFU_peak`` solved so the curve
passes exactly through the paper's Fig. 5 legend anchor for that
(platform, model) pair.  For unanchored models, ``MFU_peak`` is
interpolated from the anchored models' peaks by arithmetic intensity.
"""

from __future__ import annotations

import math

from repro.engine import calibration
from repro.hardware.platform import PlatformSpec
from repro.models.graph import ModelGraph


def _b_sat_for(platform_name: str, gflops: float) -> float:
    """Saturation batch scale for (platform, model GFLOPs).

    Cloud GPUs: inversely proportional to model FLOPs (heavier models
    fill the device sooner).  The Jetson: a fixed occupancy-driven scale
    (see :data:`repro.engine.calibration.FIXED_B_SAT`).
    """
    plat = platform_name.lower()
    fixed = calibration.FIXED_B_SAT.get(plat)
    if fixed is not None:
        return fixed
    k = calibration.K_SAT.get(plat, 8.0)
    return max(1.0, k * calibration.REF_GFLOPS / gflops)


class MFUModel:
    """MFU(batch) for one (model, platform) pair.

    Parameters
    ----------
    graph:
        The model (its per-image FLOPs set the saturation scale and turn
        throughput anchors into MFU anchors).
    platform:
        The target device (practical FLOPS, saturation constant).
    """

    def __init__(self, graph: ModelGraph, platform: PlatformSpec):
        self.graph = graph
        self.platform = platform
        self.b_sat = _b_sat_for(platform.name, graph.reported_gflops())
        self.mfu_peak = self._solve_peak()

    # ------------------------------------------------------------------
    def _solve_peak(self) -> float:
        key = (self.platform.name.lower(), self.graph.name.lower())
        anchor = calibration.THROUGHPUT_ANCHORS.get(key)
        if anchor is not None:
            batch, images_per_s = anchor
            mfu_at_anchor = (images_per_s * self.graph.flops_per_image()
                             / self.platform.practical_flops)
            peak = mfu_at_anchor / (1.0 - math.exp(-batch / self.b_sat))
            return min(peak, 1.0)
        return self._interpolated_peak()

    def _interpolated_peak(self) -> float:
        """Peak MFU for unanchored models: log-linear in GFLOPs/image
        between the anchored models of the same platform (clamped at the
        ends)."""
        plat = self.platform.name.lower()
        points = []
        for (p, model), (batch, images_per_s) in sorted(
                calibration.THROUGHPUT_ANCHORS.items()):
            if p != plat:
                continue
            from repro.models.zoo import MODEL_ZOO  # local: avoid cycle

            graph = MODEL_ZOO[model].graph
            mfu = (images_per_s * graph.flops_per_image()
                   / self.platform.practical_flops)
            b_sat = _b_sat_for(plat, graph.reported_gflops())
            peak = min(mfu / (1.0 - math.exp(-batch / b_sat)), 1.0)
            points.append((math.log(graph.reported_gflops()), peak))
        if not points:
            raise KeyError(
                f"no calibration anchors for platform {self.platform.name}; "
                "cannot build an MFU model")
        points.sort()
        x = math.log(self.graph.reported_gflops())
        if x <= points[0][0]:
            return points[0][1]
        if x >= points[-1][0]:
            return points[-1][1]
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            if x0 <= x <= x1:
                t = (x - x0) / (x1 - x0)
                return y0 + t * (y1 - y0)
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    def mfu(self, batch_size: int) -> float:
        """Utilization fraction at a batch size (0 < MFU <= MFU_peak)."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return self.mfu_peak * (1.0 - math.exp(-batch_size / self.b_sat))

    def achieved_tflops(self, batch_size: int) -> float:
        """The Fig. 5 y-axis: practical TFLOPS actually sustained."""
        return self.platform.practical_tflops * self.mfu(batch_size)

    def near_saturation_batch(self, fraction: float = 0.9) -> int:
        """Smallest batch reaching ``fraction`` of the MFU plateau.

        This is the "optimal operating region" boundary of Section 4.1.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        return max(1, math.ceil(-self.b_sat * math.log(1.0 - fraction)))
