"""Inference engine substrate: calibrated performance + memory models.

The paper's engine measurements (Figs. 5, 6, 8) come from TensorRT engines
on real GPUs.  This package reproduces them with:

* :mod:`repro.engine.calibration` — the anchor values printed in the paper
  (Fig. 5/6 legend throughputs, OOM batch limits, batch grids);
* :mod:`repro.engine.mfu` — a Model-FLOPs-Utilization saturation law fit
  through the anchors, giving the full TFLOPS-vs-batch curves of Fig. 5;
* :mod:`repro.engine.latency` — the latency/throughput laws of Fig. 6,
  including the 16.7 ms / 60 QPS operating threshold;
* :mod:`repro.engine.oom` — the memory model bounding usable batch sizes
  (ping-pong activations on discrete GPUs; calibrated effective footprints
  on the unified-memory Jetson);
* :mod:`repro.engine.engine` — the :class:`InferenceEngine` facade tying
  the above to a built TRT-like plan, with an optional *functional* mode
  that really executes the NumPy forward pass.
"""

from repro.engine.calibration import (
    BATCH_GRIDS,
    THROUGHPUT_ANCHORS,
    JETSON_ACT_BYTES,
    E2E_BATCH_SIZES,
    LATENCY_TARGET_SECONDS,
    TARGET_QPS,
    batch_grid,
    anchor_for,
)
from repro.engine.mfu import MFUModel
from repro.engine.latency import LatencyModel, EnginePoint
from repro.engine.oom import EngineMemoryModel, max_batch_size
from repro.engine.engine import InferenceEngine, InferenceResult

__all__ = [
    "BATCH_GRIDS",
    "THROUGHPUT_ANCHORS",
    "JETSON_ACT_BYTES",
    "E2E_BATCH_SIZES",
    "LATENCY_TARGET_SECONDS",
    "TARGET_QPS",
    "batch_grid",
    "anchor_for",
    "MFUModel",
    "LatencyModel",
    "EnginePoint",
    "EngineMemoryModel",
    "max_batch_size",
    "InferenceEngine",
    "InferenceResult",
]
