"""Engine latency and throughput laws (Fig. 6).

For a batch of size ``b`` on an engine whose MFU model gives utilization
``MFU(b)``:

* throughput(b) = practical_FLOPS · MFU(b) / FLOPs_per_image
* latency(b)    = b / throughput(b)
* theoretical latency(b) = b · FLOPs_per_image / practical_FLOPS
  (the Fig. 6 dashed lines — "Under ideal conditions, latency scales
  linearly with batch size")

At small batches MFU ≈ MFU_peak · b / b_sat, so latency flattens to a
constant floor — the paper's "initial nonlinear region (preceding the
solid line), indicating computational underutilization."
"""

from __future__ import annotations

import dataclasses

from repro.engine.calibration import LATENCY_TARGET_SECONDS
from repro.engine.mfu import MFUModel
from repro.hardware.platform import PlatformSpec
from repro.models.graph import ModelGraph


@dataclasses.dataclass(frozen=True)
class EnginePoint:
    """One point of the Fig. 5/6 sweeps."""

    batch_size: int
    mfu: float
    achieved_tflops: float
    throughput: float          # images / second
    latency_seconds: float     # per batch request
    theoretical_latency_seconds: float

    @property
    def meets_60qps(self) -> bool:
        """Below the Fig. 6 red line (16.7 ms for 60 queries/second)."""
        return self.latency_seconds <= LATENCY_TARGET_SECONDS


class LatencyModel:
    """Latency/throughput curves for one (model, platform) pair.

    ``precision`` scales the compute rate by the ratio of the format's
    theoretical peak to the platform's benchmark precision (e.g. INT8 on
    the A100 doubles the BF16 rate) — the Section 3.1 "lower-precision
    formats offer faster inference" axis.  The default (None) is the
    benchmark precision, i.e. the paper's calibrated setup.
    """

    def __init__(self, graph: ModelGraph, platform: PlatformSpec,
                 mfu_model: MFUModel | None = None,
                 precision=None):
        self.graph = graph
        self.platform = platform
        self.mfu_model = (MFUModel(graph, platform) if mfu_model is None
                          else mfu_model)
        if precision is None:
            self.precision_speedup = 1.0
        else:
            from repro.hardware.precision import parse_precision

            precision = parse_precision(precision)
            if not platform.supports(precision):
                raise ValueError(
                    f"{platform.name} lacks support for {precision.value}")
            self.precision_speedup = (
                platform.theoretical_tflops[precision]
                / platform.theoretical_tflops[
                    platform.benchmark_precision])

    @property
    def effective_flops(self) -> float:
        """Practical FLOPS scaled by the precision speedup."""
        return self.platform.practical_flops * self.precision_speedup

    def throughput(self, batch_size: int) -> float:
        """Images/second sustained at a batch size."""
        mfu = self.mfu_model.mfu(batch_size)
        return self.effective_flops * mfu / self.graph.flops_per_image()

    def latency(self, batch_size: int) -> float:
        """Seconds to serve one batch request."""
        return batch_size / self.throughput(batch_size)

    def theoretical_latency(self, batch_size: int) -> float:
        """The ideal (dashed-line) latency at 100% practical FLOPS."""
        return (batch_size * self.graph.flops_per_image()
                / self.effective_flops)

    def point(self, batch_size: int) -> EnginePoint:
        """Evaluate every Fig. 5/6 quantity at one batch size."""
        mfu = self.mfu_model.mfu(batch_size)
        thr = self.throughput(batch_size)
        return EnginePoint(
            batch_size=batch_size,
            mfu=mfu,
            achieved_tflops=(self.mfu_model.achieved_tflops(batch_size)
                             * self.precision_speedup),
            throughput=thr,
            latency_seconds=batch_size / thr,
            theoretical_latency_seconds=self.theoretical_latency(batch_size),
        )

    def sweep(self, batch_sizes: tuple[int, ...]) -> list[EnginePoint]:
        """Evaluate a whole batch grid (one Fig. 5/6 curve)."""
        return [self.point(b) for b in batch_sizes]

    # ------------------------------------------------------------------
    def max_batch_within_latency(
            self, batch_sizes: tuple[int, ...],
            target_seconds: float = LATENCY_TARGET_SECONDS) -> int | None:
        """Largest grid batch whose request latency meets the target.

        The Fig. 6 operating-region analysis: "The intersection with
        near-saturated performance defines an optimal operating region."
        Returns None when even batch 1 misses the target.
        """
        fitting = [b for b in batch_sizes if self.latency(b) <= target_seconds]
        return max(fitting) if fitting else None

    def optimal_operating_batch(
            self, batch_sizes: tuple[int, ...],
            target_seconds: float = LATENCY_TARGET_SECONDS,
            saturation_fraction: float = 0.9) -> int | None:
        """Smallest grid batch that is near-saturated *and* on budget.

        Returns None when saturation and the latency target cannot be met
        simultaneously (the Jetson's "considerably narrower operating
        margins").
        """
        needed = self.mfu_model.near_saturation_batch(saturation_fraction)
        candidates = [b for b in batch_sizes
                      if b >= needed and self.latency(b) <= target_seconds]
        return min(candidates) if candidates else None
