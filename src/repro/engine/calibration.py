"""Calibration anchors taken from the paper's printed results.

Everything here is *data from the paper*, kept in one module so the
model-vs-paper provenance is auditable:

* ``THROUGHPUT_ANCHORS`` — the images/second values printed in the
  legends of Fig. 5/6 (each at its largest evaluated batch size);
* ``BATCH_GRIDS`` — the x-axes of Figs. 5/6;
* ``JETSON_MAX_BATCH`` — the largest batch before OOM visible in Fig. 5c;
* ``E2E_BATCH_SIZES`` — the "largest batch size before OOM" labels of
  Fig. 8 per platform;
* ``JETSON_ACT_BYTES`` — effective per-image engine memory footprints on
  the unified-memory Jetson, *inverted* from the Fig. 5c/8c OOM
  boundaries (the unified-memory allocator, FP32 fallback copies and
  TensorRT workspaces make these much larger than raw activation math;
  see DESIGN.md §5);
* the 60 QPS / 16.7 ms latency threshold of Fig. 6.
"""

from __future__ import annotations

#: Fig. 6: "the red line demarcates the 16.7ms threshold necessary to
#: sustain 60 queries per second".
TARGET_QPS = 60.0
LATENCY_TARGET_SECONDS = 1.0 / TARGET_QPS

#: Fig. 5/6 x-axes.
BATCH_GRIDS: dict[str, tuple[int, ...]] = {
    "a100": (1, 2, 4, 8, 16, 32, 64, 96, 128, 196, 256, 384, 512, 640,
             768, 1024),
    "v100": (1, 2, 4, 8, 16, 32, 64, 96, 128, 196, 256, 384, 512, 640,
             768, 1024),
    "jetson": (1, 2, 4, 8, 16, 32, 64, 128, 196),
}

#: Fig. 5/6 legend values: (platform, model) -> (batch, images/second).
THROUGHPUT_ANCHORS: dict[tuple[str, str], tuple[int, float]] = {
    ("a100", "vit_tiny"): (1024, 22879.3),
    ("a100", "vit_small"): (1024, 9344.2),
    ("a100", "vit_base"): (1024, 4095.9),
    ("a100", "resnet50"): (1024, 16230.7),
    ("v100", "vit_tiny"): (1024, 7179.0),
    ("v100", "vit_small"): (1024, 2929.3),
    ("v100", "vit_base"): (1024, 1482.6),
    ("v100", "resnet50"): (1024, 8107.3),
    ("jetson", "vit_tiny"): (196, 1170.1),
    ("jetson", "vit_small"): (64, 469.4),
    ("jetson", "vit_base"): (8, 201.0),
    ("jetson", "resnet50"): (64, 842.9),
}

#: Fig. 5c: largest batch each model reaches on the Jetson before OOM
#: (ViT Tiny reaches the end of the grid without OOM).
JETSON_MAX_BATCH: dict[str, int] = {
    "vit_tiny": 196,
    "vit_small": 64,
    "vit_base": 8,
    "resnet50": 64,
}

#: Effective per-image engine memory on the Jetson, inverted from the OOM
#: boundaries above (largest fitting batch b: weights + b·a <= budget <
#: weights + next_grid(b)·a).  See DESIGN.md §5.
JETSON_ACT_BYTES: dict[str, float] = {
    "vit_tiny": 16e6,
    "vit_small": 60e6,
    "vit_base": 480e6,
    "resnet50": 60e6,
}

#: Engine memory budget on the Jetson when a DALI preprocessing instance
#: is co-resident (Fig. 8 setup): the preprocessing queues claim ~2.15 GB
#: of the unified pool.  Inverted jointly with JETSON_ACT_BYTES from the
#: Fig. 8c batch labels.
JETSON_E2E_ENGINE_BUDGET_BYTES = 2.01e9

#: Fig. 8 x-labels: "The largest Batch Size before Out-of-memory (OOM)
#: was used" for the end-to-end experiment, per platform.
E2E_BATCH_SIZES: dict[tuple[str, str], int] = {
    ("a100", "vit_tiny"): 64,
    ("a100", "vit_small"): 64,
    ("a100", "vit_base"): 64,
    ("a100", "resnet50"): 64,
    ("v100", "vit_tiny"): 64,
    ("v100", "vit_small"): 32,
    ("v100", "vit_base"): 2,
    ("v100", "resnet50"): 32,
    ("jetson", "vit_tiny"): 64,
    ("jetson", "vit_small"): 32,
    ("jetson", "vit_base"): 2,
    ("jetson", "resnet50"): 32,
}

#: MFU saturation scale: batch at which utilization reaches ~63% of its
#: plateau is ``K_SAT · REF_GFLOPS / model_gflops`` — heavier models
#: saturate the device at smaller batches (Section 4.1).
K_SAT: dict[str, float] = {"a100": 10.0, "v100": 6.0}
REF_GFLOPS = 4.0

#: On the Jetson the saturation batch is set by the occupancy of its
#: small GPU (8 SMs) rather than per-model FLOPs: a fixed scale
#: reproduces both Fig. 6c's ViT-Tiny behaviour ("MFU deteriorates below
#: batch size 8") and Fig. 8c's severe ViT-Base throughput loss when
#: memory contention forces BS 8 -> 2.
FIXED_B_SAT: dict[str, float] = {"jetson": 4.0}


def batch_grid(platform_name: str) -> tuple[int, ...]:
    """The Fig. 5/6 batch-size axis for a platform."""
    try:
        return BATCH_GRIDS[platform_name.lower()]
    except KeyError:
        raise KeyError(
            f"no batch grid for platform {platform_name!r}") from None


def anchor_for(platform_name: str, model_name: str) -> tuple[int, float]:
    """The (batch, images/s) legend anchor for a (platform, model) pair."""
    key = (platform_name.lower(), model_name.lower())
    try:
        return THROUGHPUT_ANCHORS[key]
    except KeyError:
        raise KeyError(f"no throughput anchor for {key}") from None
