"""Engine memory model and OOM-bounded batch limits.

Two regimes, matching the hardware:

* **Discrete GPUs (A100, V100)** — TensorRT-style engines reuse activation
  buffers, so live memory is weights + batch × (2 × peak tensor).  All
  four models fit the full batch grid (Fig. 5a/5b reach BS 1024).
* **Unified memory (Jetson)** — the effective per-image footprint is far
  larger (allocator granularity, FP32 fallback copies, shared pool
  pressure); the model uses the calibrated
  :data:`repro.engine.calibration.JETSON_ACT_BYTES` values inverted from
  the Fig. 5c OOM boundaries, and a reduced budget when a preprocessing
  instance is co-resident (Fig. 8c).
"""

from __future__ import annotations

from repro.engine import calibration
from repro.hardware.memory import OutOfMemoryError
from repro.hardware.platform import PlatformSpec
from repro.hardware.precision import Precision
from repro.models.graph import ModelGraph


class EngineMemoryModel:
    """Predicts engine memory for (model, platform, precision)."""

    def __init__(self, graph: ModelGraph, platform: PlatformSpec,
                 precision: Precision | None = None):
        self.graph = graph
        self.platform = platform
        self.precision = (platform.benchmark_precision if precision is None
                          else precision)
        if not platform.supports(self.precision):
            raise ValueError(
                f"{platform.name} lacks support for {self.precision.value}")

    @property
    def weight_bytes(self) -> float:
        """Engine weight storage at the chosen precision."""
        return self.graph.weight_bytes(self.precision.bytes)

    @property
    def activation_bytes_per_image(self) -> float:
        """Effective per-image activation footprint."""
        if self.platform.unified_memory:
            calibrated = calibration.JETSON_ACT_BYTES.get(
                self.graph.name.lower())
            if calibrated is not None:
                return calibrated
            # Unanchored model on unified memory: scale the analytic
            # footprint by the ratio observed on the anchored models
            # (median ≈ 25× the ping-pong estimate).
            return 25.0 * self.graph.activation_bytes_per_image(
                self.precision.bytes, reuse=True)
        return self.graph.activation_bytes_per_image(
            self.precision.bytes, reuse=True)

    def engine_bytes(self, batch_size: int) -> float:
        """Live engine memory at a batch size."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return (self.weight_bytes
                + batch_size * self.activation_bytes_per_image)

    def fits(self, batch_size: int,
             budget_bytes: float | None = None) -> bool:
        """Whether the engine fits the platform (or explicit) budget."""
        budget = (self.platform.usable_gpu_memory_bytes
                  if budget_bytes is None else budget_bytes)
        return self.engine_bytes(batch_size) <= budget

    def require(self, batch_size: int,
                budget_bytes: float | None = None) -> None:
        """Raise :class:`OutOfMemoryError` when the batch does not fit."""
        budget = (self.platform.usable_gpu_memory_bytes
                  if budget_bytes is None else budget_bytes)
        needed = self.engine_bytes(batch_size)
        if needed > budget:
            raise OutOfMemoryError(needed, budget,
                                   f"{self.platform.name}-engine")


def max_batch_size(graph: ModelGraph, platform: PlatformSpec,
                   batch_sizes: tuple[int, ...] | None = None,
                   budget_bytes: float | None = None,
                   precision: Precision | None = None) -> int:
    """Largest grid batch that fits memory (the Fig. 5 curve endpoint).

    Raises :class:`OutOfMemoryError` when even batch 1 does not fit.
    """
    if batch_sizes is None:
        batch_sizes = calibration.batch_grid(platform.name)
    model = EngineMemoryModel(graph, platform, precision)
    budget = (platform.usable_gpu_memory_bytes if budget_bytes is None
              else budget_bytes)
    fitting = [b for b in batch_sizes if model.fits(b, budget)]
    if not fitting:
        model.require(min(batch_sizes), budget)
    return max(fitting)
