"""Minimal SVG chart toolkit (no plotting dependencies).

Just enough vector drawing to render the paper's figure styles: line
charts with optional log axes and dashed series (Figs. 5/6), grouped bar
charts (Figs. 7/8), and a legend.  Output is a valid standalone SVG
document (tests parse it back with ``xml.etree``).
"""

from __future__ import annotations

import dataclasses
import math
from xml.sax.saxutils import escape

#: A color cycle distinguishable in grayscale print, like the paper's.
PALETTE = ("#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
           "#8c564b", "#e377c2", "#7f7f7f")


@dataclasses.dataclass
class Axis:
    """One chart axis."""

    label: str
    log: bool = False

    def transform(self, value: float, lo: float, hi: float) -> float:
        """Map a data value to [0, 1] along this axis."""
        if self.log:
            if value <= 0 or lo <= 0:
                raise ValueError("log axis requires positive values")
            return (math.log10(value) - math.log10(lo)) / (
                math.log10(hi) - math.log10(lo))
        return (value - lo) / (hi - lo)


class SvgCanvas:
    """Accumulates SVG elements and serializes the document."""

    def __init__(self, width: int = 640, height: int = 420):
        if width < 1 or height < 1:
            raise ValueError("canvas dimensions must be positive")
        self.width = width
        self.height = height
        self._elements: list[str] = []

    def line(self, x1: float, y1: float, x2: float, y2: float,
             color: str = "#000", width: float = 1.0,
             dashed: bool = False) -> None:
        """Draw a straight line segment."""
        dash = ' stroke-dasharray="6,4"' if dashed else ""
        self._elements.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
            f'y2="{y2:.1f}" stroke="{color}" '
            f'stroke-width="{width}"{dash}/>')

    def polyline(self, points: list[tuple[float, float]],
                 color: str = "#000", width: float = 1.5,
                 dashed: bool = False) -> None:
        """Draw a connected line through the points."""
        if len(points) < 2:
            raise ValueError("a polyline needs at least two points")
        coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        dash = ' stroke-dasharray="6,4"' if dashed else ""
        self._elements.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="{width}"{dash}/>')

    def rect(self, x: float, y: float, w: float, h: float,
             fill: str = "#888") -> None:
        """Draw a filled rectangle."""
        self._elements.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" fill="{fill}"/>')

    def text(self, x: float, y: float, content: str, size: int = 12,
             anchor: str = "start", rotate: float | None = None) -> None:
        """Draw a text label."""
        transform = (f' transform="rotate({rotate} {x:.1f} {y:.1f})"'
                     if rotate is not None else "")
        self._elements.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'text-anchor="{anchor}" '
            f'font-family="sans-serif"{transform}>'
            f"{escape(content)}</text>")

    def to_svg(self) -> str:
        """Serialize the document to SVG text."""
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" '
            f'fill="white"/>\n{body}\n</svg>\n')


@dataclasses.dataclass
class Series:
    """One chart series."""

    name: str
    x: list[float]
    y: list[float]
    dashed: bool = False


_MARGIN = 60


class LineChart:
    """Multi-series line chart with optional log axes."""

    def __init__(self, title: str, x_axis: Axis, y_axis: Axis,
                 width: int = 640, height: int = 420):
        self.title = title
        self.x_axis = x_axis
        self.y_axis = y_axis
        self.canvas = SvgCanvas(width, height)
        self.series: list[Series] = []

    def add(self, name: str, x, y, dashed: bool = False) -> None:
        """Add one line series."""
        x, y = list(map(float, x)), list(map(float, y))
        if len(x) != len(y):
            raise ValueError("x and y lengths differ")
        if len(x) < 2:
            raise ValueError("a series needs at least two points")
        self.series.append(Series(name, x, y, dashed))

    def _bounds(self) -> tuple[float, float, float, float]:
        xs = [v for s in self.series for v in s.x]
        ys = [v for s in self.series for v in s.y]
        return min(xs), max(xs), min(ys), max(ys)

    def _to_px(self, x: float, y: float, bounds) -> tuple[float, float]:
        x_lo, x_hi, y_lo, y_hi = bounds
        w = self.canvas.width - 2 * _MARGIN
        h = self.canvas.height - 2 * _MARGIN
        px = _MARGIN + self.x_axis.transform(x, x_lo, x_hi) * w
        py = self.canvas.height - _MARGIN - \
            self.y_axis.transform(y, y_lo, y_hi) * h
        return px, py

    def render(self) -> str:
        """Render the chart to SVG text."""
        if not self.series:
            raise ValueError("nothing to draw")
        bounds = self._bounds()
        c = self.canvas
        # Frame + labels.
        c.text(c.width / 2, 24, self.title, size=15, anchor="middle")
        c.line(_MARGIN, c.height - _MARGIN, c.width - _MARGIN,
               c.height - _MARGIN)
        c.line(_MARGIN, _MARGIN, _MARGIN, c.height - _MARGIN)
        c.text(c.width / 2, c.height - 16, self.x_axis.label, size=12,
               anchor="middle")
        c.text(18, c.height / 2, self.y_axis.label, size=12,
               anchor="middle", rotate=-90)
        # Series + legend.
        for i, series in enumerate(self.series):
            color = PALETTE[i % len(PALETTE)]
            points = [self._to_px(x, y, bounds)
                      for x, y in zip(series.x, series.y)]
            c.polyline(points, color=color, dashed=series.dashed)
            ly = _MARGIN + 16 * i
            c.line(c.width - _MARGIN - 110, ly, c.width - _MARGIN - 90,
                   ly, color=color, width=2, dashed=series.dashed)
            c.text(c.width - _MARGIN - 84, ly + 4, series.name, size=10)
        return c.to_svg()


class BarChart:
    """Grouped bar chart: categories on x, one bar per series member."""

    def __init__(self, title: str, y_label: str, width: int = 720,
                 height: int = 420, log_y: bool = False):
        self.title = title
        self.y_axis = Axis(y_label, log=log_y)
        self.canvas = SvgCanvas(width, height)
        self.categories: list[str] = []
        self.groups: list[tuple[str, list[float]]] = []

    def set_categories(self, categories: list[str]) -> None:
        """Define the x-axis categories."""
        if not categories:
            raise ValueError("need at least one category")
        self.categories = list(categories)

    def add_group(self, name: str, values: list[float]) -> None:
        """Add one bar group (a value per category)."""
        if len(values) != len(self.categories):
            raise ValueError(
                f"group {name!r} has {len(values)} values for "
                f"{len(self.categories)} categories")
        self.groups.append((name, list(map(float, values))))

    def render(self) -> str:
        """Render the chart to SVG text."""
        if not self.groups:
            raise ValueError("nothing to draw")
        c = self.canvas
        values = [v for _, vs in self.groups for v in vs]
        positive = [v for v in values if v > 0]
        y_lo = (min(positive) * 0.5 if self.y_axis.log else 0.0)
        y_hi = max(values) * 1.05
        c.text(c.width / 2, 24, self.title, size=15, anchor="middle")
        c.text(18, c.height / 2, self.y_axis.label, size=12,
               anchor="middle", rotate=-90)
        c.line(_MARGIN, c.height - _MARGIN, c.width - _MARGIN,
               c.height - _MARGIN)

        plot_w = c.width - 2 * _MARGIN
        plot_h = c.height - 2 * _MARGIN
        slot = plot_w / len(self.categories)
        bar_w = slot * 0.8 / len(self.groups)
        for ci, category in enumerate(self.categories):
            c.text(_MARGIN + slot * (ci + 0.5), c.height - _MARGIN + 16,
                   category, size=9, anchor="middle")
            for gi, (name, values) in enumerate(self.groups):
                value = values[ci]
                if value <= 0 and self.y_axis.log:
                    continue
                frac = self.y_axis.transform(max(value, y_lo or value),
                                             y_lo or value, y_hi) \
                    if self.y_axis.log else value / y_hi
                h = max(0.0, frac) * plot_h
                x = _MARGIN + slot * ci + slot * 0.1 + gi * bar_w
                c.rect(x, c.height - _MARGIN - h, bar_w * 0.92, h,
                       fill=PALETTE[gi % len(PALETTE)])
        for gi, (name, _) in enumerate(self.groups):
            ly = _MARGIN + 16 * gi
            c.rect(c.width - _MARGIN - 110, ly - 8, 18, 10,
                   fill=PALETTE[gi % len(PALETTE)])
            c.text(c.width - _MARGIN - 86, ly, name, size=10)
        return c.to_svg()
