"""Figure-to-SVG rendering: draw the reproduced Figs. 5-8.

Consumes the same :class:`~repro.analysis.figures.FigureSeries` data the
text report uses, so the drawn figures and the tabulated ones can never
disagree.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.analysis.figures import FigureSeries, fig5, fig6, fig7, fig8
from repro.viz.svg import Axis, BarChart, LineChart, SvgCanvas


def _line_figure(series: list[FigureSeries], panel: str, title: str,
                 y_label: str, log_y: bool) -> str:
    chart = LineChart(title, Axis("batch size", log=True),
                      Axis(y_label, log=log_y))
    for s in series:
        if s.panel != panel:
            continue
        dashed = s.meta.get("style") in ("dashed", "threshold")
        chart.add(s.name, s.x, s.y, dashed=dashed)
    return chart.render()


def _bar_figure(series: list[FigureSeries], panel: str, title: str,
                metric: str, y_label: str) -> str:
    groups = [s for s in series
              if s.panel == panel and s.meta.get("metric") == metric]
    if not groups:
        raise ValueError(f"no {metric} series for panel {panel!r}")
    categories = list(groups[0].x)
    chart = BarChart(title, y_label, log_y=True)
    chart.set_categories(categories)
    for s in groups:
        values = [dict(zip(s.x, s.y)).get(c, 0.0) for c in categories]
        chart.add_group(s.name.rsplit(" ", 1)[0], values)
    return chart.render()


def render_figure_svg(figure: str, panel: str) -> str:
    """Render one panel of one figure ("fig5".."fig8") to SVG text."""
    if figure == "fig5":
        return _line_figure(fig5(panel.lower()), panel,
                            f"Fig 5 ({panel}): achieved TFLOPS vs batch",
                            "TFLOPS", log_y=False)
    if figure == "fig6":
        return _line_figure(fig6(panel.lower()), panel,
                            f"Fig 6 ({panel}): request latency vs batch",
                            "latency (ms)", log_y=True)
    if figure == "fig7":
        return _bar_figure(fig7(panel.lower()), panel,
                           f"Fig 7 ({panel}): preprocessing throughput",
                           "images_per_second", "images/s")
    if figure == "fig8":
        return _bar_figure(fig8(panel.lower()), panel,
                           f"Fig 8 ({panel}): end-to-end throughput",
                           "images_per_second", "images/s")
    raise KeyError(f"unknown figure {figure!r}; use fig5..fig8")


def render_heatmap_svg(grid: np.ndarray, title: str = "field heatmap",
                       cell: int = 14) -> str:
    """Render a class-index grid (the offline workflow's output).

    Cells with value < 0 are uncovered (left white); classes map onto a
    green-to-brown agricultural ramp.
    """
    grid = np.asarray(grid)
    if grid.ndim != 2:
        raise ValueError("heatmap grid must be 2D")
    h, w = grid.shape
    canvas = SvgCanvas(width=w * cell + 20, height=h * cell + 40)
    canvas.text(10, 20, title, size=13)
    peak = max(int(grid.max()), 1)
    for y in range(h):
        for x in range(w):
            value = int(grid[y, x])
            if value < 0:
                continue
            t = value / peak
            r = int(60 + 150 * t)
            g = int(160 - 90 * t)
            b = 40
            canvas.rect(10 + x * cell, 30 + y * cell, cell - 1, cell - 1,
                        fill=f"rgb({r},{g},{b})")
    return canvas.to_svg()


def render_trace_svg(trace, width: int = 640,
                     row_height: int = 22) -> str:
    """SVG Gantt timeline of one request's spans.

    ``trace`` is a :class:`repro.serving.tracing.RequestTrace`; queueing
    gaps show as empty track, spans as colored bars.
    """
    from repro.viz.svg import PALETTE

    if not trace.spans:
        raise ValueError("trace has no spans to draw")
    total = max(trace.latency, 1e-12)
    height = 50 + row_height * len(trace.spans)
    canvas = SvgCanvas(width, height)
    canvas.text(10, 18,
                f"request {trace.request_id} ({trace.status}) — "
                f"{trace.latency * 1e3:.2f} ms, queued "
                f"{trace.queued_seconds * 1e3:.2f} ms", size=12)
    track_x, track_w = 150, width - 170
    for i, span in enumerate(trace.spans):
        y = 34 + i * row_height
        canvas.text(10, y + 12, span.stage, size=10)
        x0 = track_x + (span.start - trace.arrival) / total * track_w
        bar = max(1.0, span.duration / total * track_w)
        canvas.rect(x0, y, bar, row_height - 6,
                    fill=PALETTE[i % len(PALETTE)])
    return canvas.to_svg()


def save_all_figures(directory: "str | pathlib.Path") -> list[pathlib.Path]:
    """Write every figure panel as an SVG file; returns the paths."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for figure in ("fig5", "fig6", "fig7", "fig8"):
        for panel in ("A100", "V100", "Jetson"):
            path = directory / f"{figure}_{panel.lower()}.svg"
            path.write_text(render_figure_svg(figure, panel))
            paths.append(path)
    return paths
