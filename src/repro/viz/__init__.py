"""Result visualization (the HARVEST-2.0 "visualization components").

A dependency-free SVG renderer so the reproduced figures can be *drawn*,
not just tabulated: :mod:`repro.viz.svg` is a minimal chart toolkit
(line/bar charts, log axes, legends) and :mod:`repro.viz.charts` turns
:class:`~repro.analysis.figures.FigureSeries` lists into Fig. 5-8 style
SVG documents, plus a field heatmap renderer for the offline workflow.
"""

from repro.viz.svg import SvgCanvas, LineChart, BarChart, Axis
from repro.viz.charts import (
    render_figure_svg,
    render_heatmap_svg,
    save_all_figures,
)

__all__ = [
    "SvgCanvas",
    "LineChart",
    "BarChart",
    "Axis",
    "render_figure_svg",
    "render_heatmap_svg",
    "save_all_figures",
]
