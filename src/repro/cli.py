"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``report [artifact]``   print a reproduced table/figure (default: all)
``compare``             paper-vs-model anchor diff table
``advise``              tuning advice for a (platform, dataset) pair
``predict``             expectation report for a (model, platform) pair
``figures``             write the Fig 5-8 panels as SVG files
``backtest``            leave-one-platform-out predictor validation
``metrics``             run a serving scenario; print its live time
                        series, stage breakdown, and metrics scrape
``autoscale``           replay a step-load trace through the balancer
                        with admission control and the replica
                        autoscaler; print the scaling timeline
``trace``               replay a bursty trace across the continuum
                        with end-to-end tracing; emit Perfetto JSON,
                        the critical-path table, and SLO burn alerts
``cache``               replay a correlated field-camera frame
                        sequence through the two-tier cache hierarchy
                        at several scene-change rates; print the
                        tier-by-tier hit table, uplink bytes saved,
                        and p95 with/without the cache
``bench``               run the BENCH_core perf harness: time each
                        optimized hot path against its preserved seed
                        implementation, optionally write results JSON
                        and check them against a committed reference
``fluid``               run the BENCH_fluid harness: replay saturated
                        farm traces through the exact DES and the
                        hybrid fluid/DES engine, verify the parity
                        contract, and time both engines
``profile``             run deterministic serving scenarios with the
                        sim-time profiler and exemplars enabled; print
                        the cost tree, folded stacks, the exemplar-
                        joined tail attribution, and the fluid regime
                        timeline
``profile-bench``       run the BENCH_profile harness: verify the
                        zero-cost-when-disabled contract (scrapes stay
                        byte-identical) and bound the enabled
                        profiler's overhead
``faas``                replay a sparse nighttime diurnal trace
                        through the serverless backend: cold-start
                        p99 inflation, scale-to-zero reaping, the
                        GB-second cost meter, and the serverless-vs-
                        provisioned break-even
``faas-bench``          run the BENCH_faas harness: the serverless
                        backend vs a provisioned replica on the same
                        sparse trace, and scale-to-zero vs never-reap
``sweep``               fan a seed-replicated sparse-diurnal sweep
                        across worker processes; print the
                        deterministic per-shard table, aggregate
                        confidence intervals, and merged quantiles
                        (byte-identical output for any --jobs)
``sweep-bench``         run the BENCH_sweep harness: the same sweep
                        sequential vs pooled, verifying merged
                        scrapes stay byte-identical and gating the
                        wall-clock speedup with a core-count-aware
                        floor
"""

from __future__ import annotations

import argparse
import sys


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import full_report, render_report

    if args.format == "text":
        text = (full_report() if args.artifact == "all"
                else render_report(args.artifact))
    else:
        table = _structured_table(args.artifact)
        text = (table.to_json(indent=2) if args.format == "json"
                else table.to_csv())
    if args.out:
        import pathlib

        pathlib.Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _structured_table(artifact: str):
    """A ResultTable for machine-readable export."""
    from repro.core.study import CharacterizationStudy

    study = CharacterizationStudy()
    generators = {
        "table1": study.table1,
        "table2": study.table2,
        "table3": study.table3,
        "fig5": study.engine_scaling,
        "fig6": study.engine_scaling,
        "fig7": study.preprocessing,
        "fig8": study.end_to_end,
    }
    if artifact not in generators:
        raise KeyError(
            f"structured export supports {sorted(generators)}, "
            f"not {artifact!r}")
    return generators[artifact]()


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import render_comparison

    print(render_comparison())
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.core.guidance import TuningAdvisor
    from repro.data.datasets import get_dataset
    from repro.hardware.platform import get_platform

    advisor = TuningAdvisor(get_platform(args.platform),
                            latency_target_seconds=args.latency_ms / 1e3)
    dataset = get_dataset(args.dataset)
    print(f"deployment advice for {dataset.display_name} on "
          f"{args.platform} (target {args.latency_ms:.1f} ms):")
    for rec in advisor.recommend_model(dataset):
        status = "meets target" if rec.meets_target else "misses target"
        print(f"  {rec.model:10s} @BS{rec.batch_size:<4d} "
              f"{rec.throughput:8.0f} img/s  "
              f"{rec.latency_seconds * 1e3:7.1f} ms  "
              f"{rec.bottleneck}-bound  [{status}]")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.hardware.platform import get_platform
    from repro.models.zoo import get_model
    from repro.predict.predictor import PerformancePredictor

    predictor = PerformancePredictor(get_platform(args.platform))
    report = predictor.expectation_report(get_model(args.model).graph)
    for key, value in report.items():
        if isinstance(value, float):
            value = f"{value:.4g}"
        print(f"  {key}: {value}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.viz.charts import save_all_figures

    paths = save_all_figures(args.out)
    for path in paths:
        print(path)
    return 0


def _cmd_backtest(args: argparse.Namespace) -> int:
    from repro.predict.validation import backtest_platform

    results = backtest_platform(args.platform, args.donor)
    print(f"predicting {args.platform} from {args.donor} calibration:")
    for r in results:
        print(f"  {r.model:10s} @BS{r.batch:<5d} paper "
              f"{r.paper_images_per_second:9.1f}  predicted "
              f"{r.predicted_images_per_second:9.1f}  "
              f"({r.relative_error:+.1%})")
    mean = sum(r.relative_error for r in results) / len(results)
    print(f"  mean relative error: {mean:.1%}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.analysis.report import (
        registry_stage_breakdown,
        render_stage_breakdown,
    )
    from repro.serving.batcher import BatcherConfig
    from repro.serving.client import OpenLoopClient
    from repro.serving.exporter import export_metrics
    from repro.serving.observability import TimeSeriesSampler
    from repro.serving.server import ModelConfig, TritonLikeServer

    if args.rate <= 0:
        raise ValueError("--rate must be positive")
    server = TritonLikeServer()
    server.register(ModelConfig(
        "preprocess", lambda n: 0.0008 * n,
        batcher=BatcherConfig(max_batch_size=16,
                              max_queue_delay=0.002)))
    server.register(ModelConfig(
        "infer", lambda n: 0.004 + 0.0012 * n,
        batcher=BatcherConfig(max_batch_size=32,
                              max_queue_delay=0.005,
                              max_queue_size=args.queue_limit),
        instances=args.instances,
        preprocess_model="preprocess"))
    client = OpenLoopClient(server, "infer", rate_per_second=args.rate,
                            num_requests=args.requests, seed=args.seed)
    sampler = TimeSeriesSampler(server, interval=args.interval)
    client.start()
    sampler.start()
    server.run()

    print(f"scenario: preprocess->infer, {args.requests} requests @ "
          f"{args.rate:g} rps, sampled every {args.interval:g} s")
    print("== timeline ==")
    print(sampler.render_timeline(), end="")
    print("== stage breakdown ==")
    breakdown = registry_stage_breakdown(server.metrics)
    print(render_stage_breakdown(breakdown), end="")
    print("== scrape ==")
    print(export_metrics(server), end="")
    return 0


def _cmd_autoscale(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_scaling_timeline
    from repro.engine.latency import LatencyModel
    from repro.hardware.platform import get_platform
    from repro.models.zoo import get_model
    from repro.predict.capacity import CapacityPlanner, WorkloadSpec
    from repro.scale.admission import AdmissionConfig, AdmissionController
    from repro.scale.autoscaler import (
        Autoscaler,
        AutoscalerConfig,
        replica_ceiling,
    )
    from repro.scale.balancer import JoinShortestQueuePolicy, LoadBalancer
    from repro.serving.batcher import BatcherConfig
    from repro.serving.events import Simulator
    from repro.serving.metrics import summarize_responses
    from repro.serving.observability import MetricsRegistry
    from repro.serving.server import ModelConfig, TritonLikeServer
    from repro.serving.traces import TraceReplayer, step_trace

    platform = get_platform(args.platform)
    graph = get_model(args.model).graph
    latency = LatencyModel(graph, platform)
    slo = args.slo_ms / 1e3

    max_replicas = args.max_replicas
    ceiling_note = f"{max_replicas} (--max-replicas)"
    if max_replicas == 0:
        # The planner bounds what reacting may cost: size the ceiling
        # for the trace's peak demand, with scale-out safety slack.
        workload = WorkloadSpec(images_per_second=args.step_rate,
                                latency_slo_seconds=slo)
        plan = CapacityPlanner(workload).plan(graph, platform)
        max_replicas = replica_ceiling(plan, safety_factor=1.25)
        ceiling_note = (f"{max_replicas} (capacity plan: {plan.devices} "
                        f"device(s) x 1.25 safety)")

    sim = Simulator()
    registry = MetricsRegistry(clock=lambda: sim.now)

    def replica_factory() -> TritonLikeServer:
        server = TritonLikeServer(sim, registry=registry)
        server.register(ModelConfig(
            "infer", lambda n: latency.latency(max(1, n)),
            batcher=BatcherConfig(max_batch_size=32,
                                  max_queue_delay=0.01)))
        return server

    admission = AdmissionController(AdmissionConfig(
        rate_per_second=args.admit_rate, burst=args.admit_burst,
        max_queued_requests=args.shed_queue))
    balancer = LoadBalancer([replica_factory()],
                            policy=JoinShortestQueuePolicy(),
                            registry=registry, admission=admission)
    autoscaler = Autoscaler(balancer, replica_factory, AutoscalerConfig(
        slo_p95_seconds=slo, interval=args.interval,
        min_replicas=1, max_replicas=max_replicas,
        cooldown_seconds=args.cooldown))

    trace = step_trace(duration=args.duration, base_rate=args.base_rate,
                       step_rate=args.step_rate,
                       step_start=args.step_start,
                       step_end=args.step_end, seed=args.seed)
    replayer = TraceReplayer(balancer, "infer")
    replayer.schedule(trace)
    autoscaler.start()
    responses = balancer.run()

    print(f"autoscale scenario: {args.model} on {args.platform} "
          f"replicas, p95 SLO {args.slo_ms:g} ms")
    print(f"trace: {args.base_rate:g}->{args.step_rate:g}->"
          f"{args.base_rate:g} rps over {args.duration:g} s "
          f"(step {args.step_start:g}..{args.step_end:g} s, "
          f"seed {args.seed}), {len(trace)} requests")
    print(f"replica ceiling: {ceiling_note}")
    print("== scaling timeline ==")
    print(render_scaling_timeline(autoscaler.events, slo_seconds=slo),
          end="")
    ok = [r for r in responses if r.ok]
    shed = balancer.metrics.get("admission_rejected_total")
    peak = max((e.replicas for e in autoscaler.events),
               default=len(balancer.backends))
    print("== summary ==")
    print(f"  submitted {replayer.submitted}  admitted "
          f"{replayer.submitted - int(shed.total())}  "
          f"shed rate={int(shed.value(reason='rate'))} "
          f"queue={int(shed.value(reason='queue'))}")
    by_status: dict[str, int] = {}
    for response in responses:
        by_status[response.status] = by_status.get(response.status,
                                                   0) + 1
    rendered = "  ".join(f"{status}={count}" for status, count
                         in sorted(by_status.items()))
    print(f"  responses: {rendered}")
    if ok:
        stats = summarize_responses(ok)
        print(f"  served p50 {stats.p50_latency * 1e3:.1f} ms  "
              f"p95 {stats.p95_latency * 1e3:.1f} ms  "
              f"throughput {stats.throughput_ips:.0f} img/s")
    print(f"  replicas: peak {peak}, final {len(balancer.backends)}")
    print("== control metrics ==")
    from repro.serving.exporter import export_registry

    control = [line for line in
               export_registry(registry).splitlines()
               if ("autoscale" in line or "admission" in line
                   or "balancer" in line)]
    print("\n".join(control))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.report import (
        render_scaling_timeline,
        render_slo_alerts,
    )
    from repro.continuum.network import get_link
    from repro.continuum.pipeline import ContinuumReplayer
    from repro.engine.latency import LatencyModel
    from repro.hardware.platform import get_platform
    from repro.models.zoo import get_model
    from repro.scale.admission import AdmissionConfig, AdmissionController
    from repro.scale.autoscaler import Autoscaler, AutoscalerConfig
    from repro.scale.balancer import JoinShortestQueuePolicy, LoadBalancer
    from repro.serving.batcher import BatcherConfig
    from repro.serving.events import Simulator
    from repro.serving.observability import DEFAULT_BUCKETS, MetricsRegistry
    from repro.serving.server import ModelConfig, TritonLikeServer
    from repro.serving.slo import SLOConfig, SLOMonitor
    from repro.serving.trace_export import (
        critical_path_summary,
        export_chrome_trace,
        render_critical_path,
    )
    from repro.serving.traces import TraceReplayer, step_trace

    platform = get_platform(args.platform)
    latency = LatencyModel(get_model(args.model).graph, platform)
    link = get_link(args.link)
    threshold = args.slo_ms / 1e3

    sim = Simulator()
    registry = MetricsRegistry(clock=lambda: sim.now)
    # Bucket boundary exactly at the SLO threshold, so the monitor's
    # conservative bucket counting is exact at the objective.
    buckets = tuple(sorted({*DEFAULT_BUCKETS, threshold}))

    replayer: ContinuumReplayer | None = None

    def replica_factory() -> TritonLikeServer:
        server = TritonLikeServer(sim, registry=registry)
        server.register(ModelConfig(
            args.model, lambda n: latency.latency(max(1, n)),
            batcher=BatcherConfig(max_batch_size=args.batch,
                                  max_queue_delay=0.002)))
        if replayer is not None:
            replayer.attach_backend(server)
        return server

    admission = AdmissionController(AdmissionConfig(
        rate_per_second=args.admit_rate, burst=args.admit_burst,
        max_queued_requests=args.shed_queue))
    first = replica_factory()
    balancer = LoadBalancer([first], policy=JoinShortestQueuePolicy(),
                            registry=registry, admission=admission)
    replayer = ContinuumReplayer(
        balancer, link,
        edge_preprocess_time=lambda n: args.edge_preprocess_ms / 1e3 * n,
        image_bytes=args.image_kb * 1024.0,
        registry=registry, latency_buckets=buckets)
    replayer.attach_backend(first)

    autoscaler = Autoscaler(balancer, replica_factory, AutoscalerConfig(
        slo_p95_seconds=threshold, interval=0.25, min_replicas=1,
        max_replicas=args.max_replicas, cooldown_seconds=1.0))
    slo_config = SLOConfig(
        latency_threshold_seconds=threshold, objective=args.objective,
        fast_window_seconds=1.0, slow_window_seconds=5.0,
        rearm_seconds=2.0)
    monitor = SLOMonitor(sim, registry, slo_config,
                         histogram_name="continuum_latency_seconds")
    monitor.on_alert(autoscaler.notify_slo_alert)

    trace = step_trace(duration=args.duration, base_rate=args.base_rate,
                       step_rate=args.step_rate,
                       step_start=args.step_start,
                       step_end=args.step_end, seed=args.seed)
    driver = TraceReplayer(replayer, args.model)
    driver.schedule(trace)
    autoscaler.start()
    monitor.start()
    balancer.run()

    print(f"trace scenario: {args.model} on {args.platform} replicas "
          f"behind {link.name}, {args.slo_ms:g} ms / "
          f"{args.objective:.0%} SLO")
    print(f"trace: {args.base_rate:g}->{args.step_rate:g}->"
          f"{args.base_rate:g} rps over {args.duration:g} s "
          f"(step {args.step_start:g}..{args.step_end:g} s, "
          f"seed {args.seed}), {len(trace)} requests")

    closed = replayer.completed_traces()
    by_status: dict[str, int] = {}
    for ctx in closed:
        by_status[ctx.status] = by_status.get(ctx.status, 0) + 1
    rendered = "  ".join(f"{status}={count}" for status, count
                         in sorted(by_status.items()))
    print(f"  traces: {len(closed)} closed of {len(replayer.traces)} "
          f"({rendered})")

    print("== critical path ==")
    served = [t for t in closed if t.status == "ok"]
    if served:
        print(render_critical_path(critical_path_summary(served)),
              end="")
    else:
        print("(no served requests)")
    print("== slo burn alerts ==")
    print(render_slo_alerts(monitor.alerts, slo_config), end="")
    print("== scaling timeline ==")
    print(render_scaling_timeline(autoscaler.events,
                                  slo_seconds=threshold), end="")
    if args.out:
        import pathlib

        text = export_chrome_trace(closed)
        pathlib.Path(args.out).write_text(text)
        events = text.count('"ph"')
        print(f"wrote {args.out} ({len(closed)} traces, "
              f"{events} events)")
    return 0


def _cache_p95(traces: list) -> float:
    """p95 end-to-end latency over served traces (0.0 when empty)."""
    import math

    latencies = sorted(t.latency for t in traces)
    if not latencies:
        return 0.0
    return latencies[max(0, math.ceil(0.95 * len(latencies)) - 1)]


def _cmd_cache(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.analysis.report import render_cache_table
    from repro.cache.keys import fingerprint
    from repro.cache.store import CacheStore, FrequencySketch
    from repro.cache.tiers import (
        CLOUD_TENSOR,
        EDGE_RESULT,
        CacheHierarchy,
        CacheTier,
    )
    from repro.continuum.network import get_link
    from repro.continuum.pipeline import ContinuumReplayer
    from repro.data.datasets import get_dataset
    from repro.data.synthetic import synth_frame_sequence
    from repro.predict.whatif import cache_effective_qps
    from repro.serving.batcher import BatcherConfig
    from repro.serving.events import Simulator
    from repro.serving.observability import MetricsRegistry
    from repro.serving.request import Request
    from repro.serving.server import ModelConfig, TritonLikeServer

    rates = [float(token) for token in
             args.scene_change_rates.split(",") if token.strip()]
    if not rates:
        raise ValueError("--scene-change-rates must name at least one "
                         "rate")
    for rate in rates:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"scene change rate {rate} not in [0, 1]")
    if args.rate <= 0:
        raise ValueError("--rate must be positive")
    spec = get_dataset(args.dataset)
    link = get_link(args.link)
    interval = 1.0 / args.rate

    def build_cache(registry, clock) -> CacheHierarchy:
        edge = CacheStore(
            capacity_bytes=args.edge_capacity_kb * 1024.0, clock=clock,
            match_threshold=args.threshold,
            ttl_seconds=args.edge_ttl,
            admission=FrequencySketch(), name=EDGE_RESULT)
        cloud = CacheStore(
            capacity_bytes=args.cloud_capacity_mb * 1024.0 * 1024.0,
            clock=clock, match_threshold=args.threshold,
            name=CLOUD_TENSOR)
        return CacheHierarchy(
            edge=CacheTier(EDGE_RESULT, edge, stage="uplink+serving",
                           registry=registry),
            cloud=CacheTier(CLOUD_TENSOR, cloud, stage="preprocess",
                            registry=registry))

    def replay(fingerprints, image_bytes: float, cached: bool):
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        server = TritonLikeServer(sim, registry=registry)
        # CRSA's CPU-bound perspective warp: linear in batch size, so
        # batching does not raise throughput and the uncached run
        # saturates whenever rate * preprocess time > 1.
        server.register(ModelConfig(
            "preprocess", lambda n: args.preprocess_ms / 1e3 * n,
            batcher=BatcherConfig(max_batch_size=8,
                                  max_queue_delay=0.001)))
        server.register(ModelConfig(
            "infer", lambda n: 0.004 + 0.0012 * n,
            batcher=BatcherConfig(max_batch_size=8,
                                  max_queue_delay=0.002),
            preprocess_model="preprocess"))
        cache = (build_cache(registry, lambda: sim.now)
                 if cached else None)
        replayer = ContinuumReplayer(
            server, link,
            edge_preprocess_time=lambda n: 0.002 * n,
            image_bytes=image_bytes, registry=registry, cache=cache)
        if cache is not None:
            server.attach_cache(cache)
        for index, fp in enumerate(fingerprints):
            request = Request("infer", num_images=1,
                              request_id=index + 1, cache_key=fp)
            sim.schedule(index * interval,
                         lambda r=request: replayer.submit(r))
        server.run()
        served = [t for t in replayer.completed_traces()
                  if t.status == "ok"]
        return replayer, cache, served

    print(f"cache scenario: {spec.name} frames behind {link.name}, "
          f"{args.frames} frames @ {args.rate:g} rps")
    print(f"fingerprint: 8x8 dhash + 4x4 blocks, Hamming threshold "
          f"{args.threshold}; edge ttl {args.edge_ttl:g} s, edge "
          f"{args.edge_capacity_kb:g} KiB, cloud "
          f"{args.cloud_capacity_mb:g} MiB (seed {args.seed})")
    report_rows = []
    for rate in rates:
        rng = np.random.default_rng([args.seed,
                                     int(round(rate * 1000))])
        frames = synth_frame_sequence(spec, args.frames, rate, rng)
        fingerprints = [fingerprint(frame) for frame in frames]
        image_bytes = float(frames[0].nbytes)
        base_replayer, _, base_served = replay(fingerprints,
                                               image_bytes, False)
        replayer, cache, served = replay(fingerprints, image_bytes,
                                         True)
        p95_uncached = _cache_p95(base_served)
        p95_cached = _cache_p95(served)
        edge_ratio = cache.edge.hit_ratio
        multiplier = (cache_effective_qps(args.rate, edge_ratio, 1.0)
                      / args.rate)
        saved_frames = len(replayer.cache_responses)
        print(f"== scene change rate {rate:.2f} ==")
        print(render_cache_table(cache.summaries()), end="")
        print(f"  p95 latency: cached {p95_cached * 1e3:.1f} ms / "
              f"uncached {p95_uncached * 1e3:.1f} ms "
              f"({len(served)} and {len(base_served)} served)")
        print(f"  uplink bytes saved: "
              f"{replayer.uplink_bytes_saved:.0f} "
              f"({saved_frames} of {args.frames} frames)")
        print(f"  whatif: edge hit ratio {edge_ratio:.1%} over the "
              f"full path -> {multiplier:.1f}x sustainable rate")
        report_rows.append({
            "scene_change_rate": rate,
            "frames": args.frames,
            "edge_hit_ratio": round(edge_ratio, 6),
            "cloud_hit_ratio": round(cache.cloud.hit_ratio, 6),
            "cached_p95_ms": round(p95_cached * 1e3, 3),
            "uncached_p95_ms": round(p95_uncached * 1e3, 3),
            "uplink_bytes_saved": replayer.uplink_bytes_saved,
            "cache_served_frames": saved_frames,
            "capacity_multiplier": round(multiplier, 3),
            "tiers": cache.summaries(),
        })
    if args.out:
        import json
        import pathlib

        payload = {
            "scenario": {
                "dataset": spec.name, "link": link.name,
                "frames": args.frames, "rate_per_second": args.rate,
                "threshold": args.threshold,
                "edge_ttl_seconds": args.edge_ttl,
                "seed": args.seed,
            },
            "rates": report_rows,
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        pathlib.Path(args.out).write_text(text)
        print(f"wrote {args.out} ({len(report_rows)} rates)")
    return 0


def _cmd_network(args: argparse.Namespace) -> int:
    import dataclasses as _dc

    import numpy as np

    from repro.cache.keys import fingerprint
    from repro.cache.store import CacheStore
    from repro.cache.tiers import (
        CLOUD_TENSOR,
        EDGE_RESULT,
        CacheHierarchy,
        CacheTier,
    )
    from repro.continuum.broker import Broker
    from repro.continuum.network import get_link
    from repro.continuum.pipeline import ContinuumReplayer
    from repro.continuum.uplink import SharedUplink, StoreAndForward
    from repro.data.datasets import get_dataset
    from repro.data.synthetic import synth_frame_sequence
    from repro.engine.latency import LatencyModel
    from repro.hardware.platform import get_platform
    from repro.models.zoo import get_model
    from repro.predict.whatif import uplink_fair_share_rate
    from repro.serving.batcher import BatcherConfig
    from repro.serving.events import Simulator
    from repro.serving.exporter import export_registry
    from repro.serving.faults import LinkOutageModel
    from repro.serving.observability import MetricsRegistry
    from repro.serving.request import Request
    from repro.serving.server import ModelConfig, TritonLikeServer

    if args.endpoints < 1:
        raise ValueError("--endpoints must be >= 1")
    if args.frames < 1:
        raise ValueError("--frames must be >= 1")
    if args.rate <= 0:
        raise ValueError("--rate must be positive")
    link = get_link(args.link)
    if args.loss is not None or args.jitter_ms is not None:
        link = _dc.replace(
            link,
            loss_probability=(link.loss_probability if args.loss is None
                              else args.loss),
            jitter_seconds=(link.jitter_seconds
                            if args.jitter_ms is None
                            else args.jitter_ms / 1e3))
    outage = None
    if args.outage_start > 0:
        outage = LinkOutageModel(windows=(
            (args.outage_start,
             args.outage_start + args.outage_seconds),))
    spec = get_dataset(args.dataset)
    platform = get_platform(args.platform)
    latency = LatencyModel(get_model(args.model).graph, platform)
    image_bytes = args.image_kb * 1024.0
    interval = 1.0 / args.rate
    horizon = args.frames * interval + 60.0

    # Per-endpoint correlated frame sequences (shared seed family).
    sequences = []
    for endpoint in range(args.endpoints):
        rng = np.random.default_rng([args.seed, endpoint])
        frames = synth_frame_sequence(spec, args.frames,
                                      args.scene_change_rate, rng)
        sequences.append([fingerprint(frame) for frame in frames])

    def replay(cached: bool):
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        server = TritonLikeServer(sim, registry=registry)
        server.register(ModelConfig(
            "infer", lambda n: latency.latency(max(1, n)),
            batcher=BatcherConfig(max_batch_size=8,
                                  max_queue_delay=0.002)))
        uplink = SharedUplink(link, sim, seed=args.seed,
                              registry=registry)
        transport = uplink
        buffer = None
        if outage is not None:
            buffer = StoreAndForward(uplink, sim, outage=outage,
                                     registry=registry)
            buffer.start(horizon)
            transport = buffer
        cache = None
        if cached:
            edge = CacheStore(capacity_bytes=64.0 * 1024.0,
                              clock=lambda: sim.now,
                              ttl_seconds=args.edge_ttl,
                              name=EDGE_RESULT)
            cloud = CacheStore(capacity_bytes=32.0 * 1024.0 * 1024.0,
                               clock=lambda: sim.now, name=CLOUD_TENSOR)
            cache = CacheHierarchy(
                edge=CacheTier(EDGE_RESULT, edge,
                               stage="uplink+serving",
                               registry=registry),
                cloud=CacheTier(CLOUD_TENSOR, cloud, stage="preprocess",
                                registry=registry))
        replayer = ContinuumReplayer(
            server, transport,
            edge_preprocess_time=lambda n: 0.002 * n,
            image_bytes=image_bytes, registry=registry, cache=cache)
        if cache is not None:
            server.attach_cache(cache)
        # Co-located endpoints capture in lockstep (synchronized
        # triggers), so every tick puts `endpoints` transfers on the
        # bottleneck at once — the contention the uplink must absorb.
        for index in range(args.frames):
            for endpoint in range(args.endpoints):
                request = Request(
                    "infer", num_images=1,
                    request_id=index * args.endpoints + endpoint + 1,
                    cache_key=sequences[endpoint][index])
                request.endpoint = endpoint
                sim.schedule_at(index * interval,
                                lambda r=request: replayer.submit(r))
        server.run()
        closed = replayer.completed_traces()
        served = [t for t in closed if t.status == "ok"]
        return {
            "replayer": replayer, "uplink": uplink, "buffer": buffer,
            "cache": cache, "registry": registry, "served": served,
            "closed": closed,
        }

    def uplink_span_stats(closed):
        durations = sorted(
            span.duration
            for trace in closed for span in trace.find("uplink"))
        if not durations:
            return {"transfers": 0, "mean_ms": 0.0, "max_ms": 0.0}
        return {
            "transfers": len(durations),
            "mean_ms": round(
                sum(durations) / len(durations) * 1e3, 3),
            "max_ms": round(durations[-1] * 1e3, 3),
        }

    uncontended_ms = link.transfer_seconds(image_bytes) * 1e3
    total = args.frames * args.endpoints
    print(f"network scenario: {args.endpoints} co-located endpoints on "
          f"{link.name} ({link.bandwidth_bps / 1e6:g} Mbps, rtt "
          f"{link.round_trip_seconds * 1e3:g} ms, jitter ±"
          f"{link.jitter_seconds * 1e3:g} ms, loss "
          f"{link.loss_probability:.2%})")
    print(f"frames: {args.frames} per endpoint @ {args.rate:g} fps, "
          f"{args.image_kb:g} KiB images, scene change "
          f"{args.scene_change_rate:g}, {spec.name} (seed {args.seed})")
    if outage is not None:
        print(f"outage: link down {args.outage_start:g}.."
              f"{args.outage_start + args.outage_seconds:g} s "
              f"(store-and-forward)")
    fair = uplink_fair_share_rate(link, args.endpoints, image_bytes)
    print(f"whatif: fair share {fair:.2f} img/s per endpoint "
          f"({fair * args.endpoints:.2f} aggregate ceiling, expected "
          f"uncontended transfer {uncontended_ms:.0f} ms)")

    results = {}
    for label, cached in (("uncached", False), ("cached", True)):
        run = replay(cached)
        results[label] = run
        spans = uplink_span_stats(run["closed"])
        p95 = _cache_p95(run["served"])
        latencies = sorted(t.latency for t in run["served"])
        p50 = latencies[len(latencies) // 2] if latencies else 0.0
        print(f"== {label} replay ==")
        print(f"  served {len(run['served'])}/{total}  p50 "
              f"{p50 * 1e3:.1f} ms  p95 {p95 * 1e3:.1f} ms")
        uplink = run["uplink"]
        print(f"  uplink: {spans['transfers']} transfers, "
              f"{uplink.total_retransmits} retransmits, peak "
              f"concurrency {uplink.peak_concurrency}")
        if spans["transfers"]:
            print(f"  uplink spans: mean {spans['mean_ms']:.1f} ms / "
                  f"max {spans['max_ms']:.1f} ms "
                  f"({spans['mean_ms'] / uncontended_ms:.2f}x the "
                  f"uncontended transfer)")
        if run["buffer"] is not None:
            buffer = run["buffer"]
            print(f"  store-and-forward: {buffer.outages} outage(s), "
                  f"{buffer.buffered_total} buffered, max depth "
                  f"{buffer.max_buffer_depth}, {buffer.dropped} "
                  f"dropped")
        if cached:
            cache = run["cache"]
            replayer = run["replayer"]
            print(f"  edge cache: hit ratio "
                  f"{cache.edge.hit_ratio:.1%}, uplink bytes saved "
                  f"{replayer.uplink_bytes_saved:.0f} "
                  f"({len(replayer.cache_responses)} of {total} "
                  f"frames)")
        run["summary"] = {
            "served": len(run["served"]),
            "p50_ms": round(p50 * 1e3, 3),
            "p95_ms": round(p95 * 1e3, 3),
            "uplink_spans": spans,
            "retransmits": uplink.total_retransmits,
            "peak_concurrency": uplink.peak_concurrency,
        }
        if cached:
            run["summary"]["edge_hit_ratio"] = round(
                run["cache"].edge.hit_ratio, 6)
            run["summary"]["uplink_bytes_saved"] = \
                run["replayer"].uplink_bytes_saved

    # Broker leg: co-located sensors publishing telemetry over the same
    # (idle) link — QoS 0 pays loss in drops, QoS 1 in duplicates.
    broker_stats = {}
    print(f"== broker (QoS over {link.name}) ==")
    for qos in (0, 1):
        sim = Simulator()
        broker = Broker(sim, link, seed=args.seed + qos)
        received = []
        broker.subscribe("telemetry",
                         lambda t, b, dup: received.append(dup))
        for index in range(args.broker_messages):
            sim.schedule_at(index * 0.05,
                            lambda: broker.publish(
                                "telemetry", 2048.0, qos=qos))
        sim.run()
        stats = {
            "published": broker.published,
            "delivered": broker.delivered,
            "dropped": broker.dropped,
            "duplicates": broker.duplicates,
            "retries": broker.retries,
            "failed": broker.failed,
        }
        broker_stats[f"qos{qos}"] = stats
        print(f"  qos{qos}: published {stats['published']}  delivered "
              f"{stats['delivered']}  dropped {stats['dropped']}  "
              f"duplicates {stats['duplicates']}  retries "
              f"{stats['retries']}  failed {stats['failed']}")
    loss_2k = Broker(Simulator(), link).message_loss_probability(2048.0)
    print(f"  message loss probability (2 KiB, unacknowledged): "
          f"{loss_2k:.2%}")

    print("== link metrics (cached run) ==")
    lines = [line for line in
             export_registry(results["cached"]["registry"]).splitlines()
             if "link_" in line]
    print("\n".join(lines))

    if args.trace_out:
        import pathlib

        from repro.serving.trace_export import export_chrome_trace

        text = export_chrome_trace(results["uncached"]["closed"])
        pathlib.Path(args.trace_out).write_text(text)
        print(f"wrote {args.trace_out} "
              f"({len(results['uncached']['closed'])} traces)")
    if args.out:
        import json
        import pathlib

        payload = {
            "scenario": {
                "link": link.name,
                "bandwidth_mbps": link.bandwidth_bps / 1e6,
                "rtt_ms": link.round_trip_seconds * 1e3,
                "jitter_ms": link.jitter_seconds * 1e3,
                "loss_probability": link.loss_probability,
                "endpoints": args.endpoints,
                "frames_per_endpoint": args.frames,
                "rate_per_second": args.rate,
                "image_kb": args.image_kb,
                "scene_change_rate": args.scene_change_rate,
                "dataset": spec.name,
                "model": args.model,
                "platform": args.platform,
                "seed": args.seed,
            },
            "uncached": results["uncached"]["summary"],
            "cached": results["cached"]["summary"],
            "broker": broker_stats,
            "fair_share_images_per_second": round(fair, 6),
        }
        cached_p95 = results["cached"]["summary"]["p95_ms"]
        if cached_p95 > 0:
            payload["p95_speedup"] = round(
                results["uncached"]["summary"]["p95_ms"] / cached_p95,
                3)
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        pathlib.Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import (
        check_regression,
        load_results,
        render_results,
        run_bench,
        write_results,
    )

    if args.check and not 0.0 <= args.tolerance < 1.0:
        raise ValueError("tolerance must lie in [0, 1)")
    mode = "quick" if args.quick else "full"
    print(f"BENCH_core ({mode} workloads, best of "
          f"{args.repeats or ('2' if args.quick else '4')} repeats)")
    results = run_bench(quick=args.quick, repeats=args.repeats,
                        jobs=args.jobs)
    print(render_results(results))
    if args.out:
        write_results(results, args.out)
        print(f"wrote {args.out}")
    if args.check:
        reference = load_results(args.check)
        failures = check_regression(results, reference,
                                    tolerance=args.tolerance)
        if failures:
            print(f"== regression check vs {args.check}: FAIL ==")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"== regression check vs {args.check}: ok ==")
    return 0


def _cmd_fluid(args: argparse.Namespace) -> int:
    from repro.perf.bench import (
        check_regression,
        load_results,
        render_results,
        run_fluid_bench,
        write_results,
    )

    if args.check and not 0.0 <= args.tolerance < 1.0:
        raise ValueError("tolerance must lie in [0, 1)")
    mode = "quick" if args.quick else "full"
    print(f"BENCH_fluid ({mode} traces, best of "
          f"{args.repeats or ('2' if args.quick else '1')} repeats)")
    results = run_fluid_bench(quick=args.quick, repeats=args.repeats)
    print(render_results(results))
    if args.out:
        write_results(results, args.out)
        print(f"wrote {args.out}")
    if args.check:
        reference = load_results(args.check)
        failures = check_regression(results, reference,
                                    tolerance=args.tolerance)
        if failures:
            print(f"== regression check vs {args.check}: FAIL ==")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"== regression check vs {args.check}: ok ==")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.continuum.network import get_link
    from repro.continuum.pipeline import ContinuumReplayer
    from repro.serving.batcher import BatcherConfig
    from repro.serving.events import Simulator
    from repro.serving.exporter import export_registry
    from repro.serving.fluid import HybridReplayer, render_regime_timeline
    from repro.serving.observability import MetricsRegistry
    from repro.serving.profiler import SimProfiler
    from repro.serving.server import ModelConfig, TritonLikeServer
    from repro.serving.trace_export import explain_tail, render_attribution
    from repro.serving.traces import TraceReplayer, burst_trace, step_trace

    if not 0.0 < args.sample_rate <= 1.0:
        raise ValueError("--sample-rate must lie in (0, 1]")
    link = get_link(args.link)

    # Leg 1: a continuum step trace with the profiler and exemplars on.
    # Everything printed derives from sim time, so two runs with the
    # same arguments produce byte-identical output (the CI contract).
    sim = Simulator()
    registry = MetricsRegistry(clock=lambda: sim.now)
    profiler = SimProfiler(clock=lambda: sim.now)
    server = TritonLikeServer(sim, registry=registry)
    server.register(ModelConfig(
        "infer", lambda n: 0.004 + 0.0012 * n,
        batcher=BatcherConfig(max_batch_size=8,
                              max_queue_delay=0.002)))
    server.attach_profiler(profiler)
    server.enable_exemplars()
    replayer = ContinuumReplayer(
        server, link,
        edge_preprocess_time=lambda n: 0.002 * n,
        image_bytes=args.image_kb * 1024.0,
        registry=registry, trace_sample_rate=args.sample_rate,
        exemplars=True, profiler=profiler)
    trace = step_trace(duration=args.duration, base_rate=args.base_rate,
                       step_rate=args.step_rate,
                       step_start=args.duration * 0.2,
                       step_end=args.duration * 0.6, seed=args.seed)
    driver = TraceReplayer(replayer, "infer")
    driver.schedule(trace)
    server.run()

    closed = replayer.completed_traces()
    print(f"profile scenario: continuum step trace behind {link.name}, "
          f"{len(trace)} requests over {args.duration:g} s "
          f"(sample rate {args.sample_rate:g}, seed {args.seed})")
    print(f"  traces: {len(closed)} closed of {len(replayer.traces)} "
          f"retained")
    print("== profile tree (sim-time) ==")
    print(profiler.render_tree("sim"), end="")
    print("== folded stacks (sim-time) ==")
    print(profiler.render_folded("sim"), end="")
    print("== exemplars ==")
    exemplar_lines = [line for line in
                      export_registry(registry).splitlines()
                      if " # {" in line]
    print("\n".join(exemplar_lines))
    print("== tail attribution ==")
    report = explain_tail(registry, replayer.traces,
                          quantile=args.quantile)
    print(render_attribution(report), end="")

    # Leg 2: a saturated burst trace through the hybrid engine, so the
    # regime controller's decisions become visible.
    sim2 = Simulator()
    registry2 = MetricsRegistry(clock=lambda: sim2.now)
    profiler2 = SimProfiler(clock=lambda: sim2.now)
    server2 = TritonLikeServer(sim2, registry=registry2)
    server2.register(ModelConfig(
        "infer", lambda n: 0.004 + 0.0012 * n,
        batcher=BatcherConfig(max_batch_size=32,
                              max_queue_delay=0.005)))
    server2.attach_profiler(profiler2)
    hybrid = HybridReplayer(server2, "infer")
    trace2 = burst_trace(duration=args.fluid_duration,
                         background_rate=2.0, bursts=2,
                         burst_rate=args.burst_rate,
                         burst_seconds=args.fluid_duration * 0.15,
                         seed=args.seed)
    hybrid.schedule(trace2)
    server2.run()

    intervals = int(registry2.get("fluid_intervals_total").total())
    folded = int(registry2.get("fluid_folded_arrivals_total").total())
    print(f"== fluid regime ({len(trace2)} burst arrivals over "
          f"{args.fluid_duration:g} s) ==")
    print(render_regime_timeline(hybrid), end="")
    print(f"  fluid_intervals_total {intervals}  "
          f"fluid_folded_arrivals_total {folded}")
    print("== fluid profile tree (sim-time) ==")
    print(profiler2.render_tree("sim"), end="")

    if args.forward:
        # Kernel-phase attribution for one real forward pass.  Wall
        # times never reproduce, so only the sim column (zeros) and
        # the deterministic phase/count structure are printed.
        import numpy as np

        from repro.models.functional import (
            init_vit_weights,
            set_kernel_profiler,
            vit_forward,
        )
        from repro.models.vit import VIT_CONFIGS

        cfg = VIT_CONFIGS["vit_tiny"]
        weights = init_vit_weights(cfg, seed=args.seed)
        rng = np.random.default_rng(args.seed)
        x = rng.standard_normal(
            (2, cfg.in_channels, cfg.img_size, cfg.img_size),
            ).astype(np.float32)
        kernel_profiler = SimProfiler()
        set_kernel_profiler(kernel_profiler)
        try:
            vit_forward(cfg, weights, x)
        finally:
            set_kernel_profiler(None)
        print("== kernel phases (vit_tiny forward, counts) ==")
        for path, (_, _, count) in kernel_profiler.nodes().items():
            print(f"  {';'.join(path):<24s} x{count}")

    if args.folded_out:
        import pathlib

        pathlib.Path(args.folded_out).write_text(
            profiler.render_folded("sim"))
        print(f"wrote {args.folded_out}")
    if args.speedscope:
        import pathlib

        pathlib.Path(args.speedscope).write_text(
            profiler.export_speedscope("repro-profile", "sim"))
        print(f"wrote {args.speedscope}")
    if args.out:
        import json
        import pathlib

        payload = {
            "scenario": {
                "link": link.name,
                "duration_seconds": args.duration,
                "base_rate": args.base_rate,
                "step_rate": args.step_rate,
                "sample_rate": args.sample_rate,
                "fluid_duration_seconds": args.fluid_duration,
                "burst_rate": args.burst_rate,
                "quantile": args.quantile,
                "seed": args.seed,
            },
            "continuum": {
                "folded_sim": profiler.folded("sim"),
                "closed_traces": len(closed),
                "attribution": report,
            },
            "fluid": {
                "folded_sim": profiler2.folded("sim"),
                "intervals": intervals,
                "folded_arrivals": folded,
            },
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        pathlib.Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    return 0


def _cmd_profile_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import (
        check_regression,
        load_results,
        render_results,
        run_profile_bench,
        write_results,
    )

    if args.check and not 0.0 <= args.tolerance < 1.0:
        raise ValueError("tolerance must lie in [0, 1)")
    mode = "quick" if args.quick else "full"
    print(f"BENCH_profile ({mode} workloads, best of "
          f"{args.repeats or ('2' if args.quick else '4')} repeats)")
    results = run_profile_bench(quick=args.quick, repeats=args.repeats)
    print(render_results(results))
    if args.out:
        write_results(results, args.out)
        print(f"wrote {args.out}")
    if args.check:
        reference = load_results(args.check)
        failures = check_regression(results, reference,
                                    tolerance=args.tolerance)
        if failures:
            print(f"== regression check vs {args.check}: FAIL ==")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"== regression check vs {args.check}: ok ==")
    return 0


def _cmd_faas(args: argparse.Namespace) -> int:
    import json

    from repro.engine.latency import LatencyModel
    from repro.faas import (
        FaaSBackend,
        FaaSFunctionConfig,
        get_faas_platform,
    )
    from repro.hardware.platform import get_platform
    from repro.models.zoo import get_model
    from repro.predict.whatif import compare_serverless
    from repro.scale.autoscaler import (
        FaaSConcurrencyPolicy,
        FaaSPolicyConfig,
    )
    from repro.serving.events import Simulator
    from repro.serving.exporter import export_registry
    from repro.serving.observability import MetricsRegistry
    from repro.serving.slo import SLOConfig, SLOMonitor
    from repro.serving.traces import TraceReplayer, sparse_diurnal_trace

    platform = get_platform(args.platform)
    faas_platform = get_faas_platform(args.faas_platform)
    latency = LatencyModel(get_model(args.model).graph, platform)
    execute_seconds = latency.latency(1)

    trace = sparse_diurnal_trace(
        duration=args.duration, peak_rate=args.peak_rate,
        night_rate=args.night_rate, seed=args.seed)

    sim = Simulator()
    registry = MetricsRegistry(clock=lambda: sim.now)
    backend = FaaSBackend(sim, registry=registry, seed=args.seed)
    backend.register(FaaSFunctionConfig(
        "infer", lambda n: latency.latency(max(1, n)),
        platform=faas_platform,
        concurrency_limit=args.concurrency,
        keep_alive_seconds=args.keep_alive))

    # SLO burn alerts drive the provisioned-concurrency floor: the
    # windows are sized so the sparse nighttime rate still produces
    # enough completions to evaluate (cold starts at night are the
    # breach this policy exists to absorb).
    monitor = SLOMonitor(sim, registry, SLOConfig(
        latency_threshold_seconds=args.slo_ms / 1e3,
        objective=0.99, interval=10.0, fast_window_seconds=150.0,
        slow_window_seconds=600.0, min_window_samples=2,
        rearm_seconds=60.0))
    policy = FaaSConcurrencyPolicy(backend, "infer", FaaSPolicyConfig(
        interval=10.0, min_provisioned=0,
        max_provisioned=args.max_provisioned, step=1,
        hold_seconds=args.hold_seconds))
    monitor.on_alert(policy.notify_slo_alert)

    replayer = TraceReplayer(backend, "infer")
    replayer.schedule(trace)
    monitor.start()
    policy.start()
    sim.run()

    stats = backend.function_stats("infer")
    served = [r for r in backend.responses if r.status == "ok"]
    cold = [r.latency for r in served
            if "faas:cold_start_seconds" in r.request.stage_times]
    warm = [r.latency for r in served
            if "faas:cold_start_seconds" not in r.request.stage_times]

    def quantile(values: list[float], frac: float) -> float:
        if not values:
            return 0.0
        ordered = sorted(values)
        return ordered[min(len(ordered) - 1,
                           round(frac * (len(ordered) - 1)))]

    warm_p50, warm_p99 = quantile(warm, 0.50), quantile(warm, 0.99)
    cold_p50, cold_p99 = quantile(cold, 0.50), quantile(cold, 0.99)
    inflation = cold_p99 / warm_p99 if warm_p99 > 0 else float("inf")

    print("== faas scenario ==")
    print(f"  function 'infer': {args.model} on {args.platform}, "
          f"platform {faas_platform.name}")
    print(f"  execute {execute_seconds * 1e3:.1f} ms/image, memory "
          f"{faas_platform.memory_gb:.1f} GB, concurrency limit "
          f"{args.concurrency}")
    print(f"  cold start: sandbox "
          f"{faas_platform.cold_start_base_seconds:.2f} s +/- "
          f"{faas_platform.cold_start_jitter_seconds:.2f} s, init "
          f"{faas_platform.init_seconds:.2f} s "
          f"({faas_platform.artifact_bytes / 1e6:.0f} MB artifact)")
    print(f"  keep-alive {args.keep_alive:.0f} s, trace {trace.name}: "
          f"{len(trace.arrival_times)} arrivals over "
          f"{trace.duration:.0f} s (peak {args.peak_rate:g} rps, "
          f"night floor {args.night_rate:g} rps)")

    print("== cold-start inflation ==")
    print(f"  invocations {stats.invocations} (cold "
          f"{stats.cold_starts} / warm {stats.warm_starts})")
    print(f"  warm latency p50 {warm_p50 * 1e3:8.1f} ms  p99 "
          f"{warm_p99 * 1e3:8.1f} ms")
    print(f"  cold latency p50 {cold_p50 * 1e3:8.1f} ms  p99 "
          f"{cold_p99 * 1e3:8.1f} ms  ({inflation:.1f}x warm p99)")

    print("== scale-to-zero ==")
    print(f"  sandboxes spawned {stats.cold_starts + stats.prewarms} "
          f"(prewarmed {stats.prewarms}), reaped {stats.reaps}, peak "
          f"pool {stats.peak_instances}")
    print(f"  warm pool at end {backend.total_instances()}")

    print("== provisioned-concurrency policy ==")
    print(f"  slo burn alerts {len(monitor.alerts)} -> policy events "
          f"{len(policy.events)}")
    shown = policy.events[:args.max_events]
    for event in shown:
        print(f"  t={event.time:8.1f}s {event.action:<9} -> "
              f"{event.provisioned} ({event.reason})")
    if len(policy.events) > len(shown):
        print(f"  ... {len(policy.events) - len(shown)} more")

    costs = backend.cost_summary()
    print("== cost (GB-seconds meter) ==")
    print(f"  on-demand {costs['gb_seconds']:.1f} GB-s "
          f"(${costs['compute_usd']:.6f}) + {costs['invocations']} "
          f"invocations (${costs['invocation_usd']:.6f})")
    print(f"  provisioned-warm {costs['provisioned_gb_seconds']:.1f} "
          f"GB-s (${costs['provisioned_usd']:.6f})")
    print(f"  total ${costs['total_usd']:.6f}")

    whatif = compare_serverless(
        trace, execute_seconds=execute_seconds,
        memory_gb=faas_platform.memory_gb,
        replica_cost_per_hour=args.replica_cost_per_hour,
        replica_qps_capacity=1.0 / execute_seconds,
        cost_model=backend.cost.model)
    print("== whatif: serverless vs provisioned ==")
    print(f"  per-invocation ${whatif['per_invocation_usd']:.7f}, "
          f"replica ${args.replica_cost_per_hour:.3f}/h x "
          f"{whatif['replicas']} (sized for the "
          f"{whatif['peak_rate']:.1f} rps peak)")
    print(f"  break-even {whatif['break_even_qps']:.2f} qps: "
          f"provisioned becomes cheaper above this rate")
    print(f"  trace verdict: serverless "
          f"${whatif['serverless_total_usd']:.6f} vs provisioned "
          f"${whatif['provisioned_total_usd']:.6f} -> "
          f"{whatif['cheaper']}")
    print(f"  serverless is the cheaper regime in "
          f"{whatif['crossover_hours']:.1f} h of the trace's "
          f"{trace.duration / 3600:.1f} h")

    print("== faas metrics ==")
    for line in export_registry(registry).splitlines():
        if line.startswith("harvest_faas_") and \
                not line.startswith("# "):
            print(f"  {line}")

    if args.out:
        import pathlib

        payload = {
            "scenario": {
                "model": args.model,
                "platform": args.platform,
                "faas_platform": faas_platform.name,
                "execute_seconds": round(execute_seconds, 6),
                "keep_alive_seconds": args.keep_alive,
                "concurrency_limit": args.concurrency,
                "duration": trace.duration,
                "arrivals": len(trace.arrival_times),
                "seed": args.seed,
            },
            "latency": {
                "invocations": stats.invocations,
                "cold_starts": stats.cold_starts,
                "warm_starts": stats.warm_starts,
                "warm_p50": round(warm_p50, 6),
                "warm_p99": round(warm_p99, 6),
                "cold_p50": round(cold_p50, 6),
                "cold_p99": round(cold_p99, 6),
                "inflation_x": round(inflation, 3),
            },
            "scale_to_zero": {
                "spawned": stats.cold_starts + stats.prewarms,
                "prewarms": stats.prewarms,
                "reaps": stats.reaps,
                "peak_pool": stats.peak_instances,
            },
            "policy": {
                "alerts": len(monitor.alerts),
                "events": [
                    {"time": round(e.time, 3), "action": e.action,
                     "provisioned": e.provisioned, "reason": e.reason}
                    for e in policy.events],
            },
            "cost": {k: round(v, 8) if isinstance(v, float) else v
                     for k, v in costs.items()},
            "whatif": {
                k: (round(v, 8) if isinstance(v, float) else v)
                for k, v in whatif.items() if k != "bins"},
        }
        pathlib.Path(args.out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    return 0


def _cmd_faas_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import (
        check_regression,
        load_results,
        render_results,
        run_faas_bench,
        write_results,
    )

    if args.check and not 0.0 <= args.tolerance < 1.0:
        raise ValueError("tolerance must lie in [0, 1)")
    mode = "quick" if args.quick else "full"
    print(f"BENCH_faas ({mode} workloads, best of "
          f"{args.repeats or ('2' if args.quick else '4')} repeats)")
    results = run_faas_bench(quick=args.quick, repeats=args.repeats)
    print(render_results(results))
    if args.out:
        write_results(results, args.out)
        print(f"wrote {args.out}")
    if args.check:
        reference = load_results(args.check)
        failures = check_regression(results, reference,
                                    tolerance=args.tolerance)
        if failures:
            print(f"== regression check vs {args.check}: FAIL ==")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"== regression check vs {args.check}: ok ==")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.serving.exporter import export_registry
    from repro.sweep import (
        SweepRunner,
        SweepSpec,
        merge_registries,
        merge_summaries,
        normal_ci,
    )

    spec = SweepSpec(
        worker="repro.sweep.workloads:replay_sparse_diurnal",
        base_params={
            "duration": args.duration,
            "peak_rate": args.peak_rate,
            "night_rate": args.night_rate,
            "instances": args.instances,
        },
        replications=args.replications,
        base_seed=args.seed)
    result = SweepRunner(jobs=args.jobs).run(spec)
    errors = result.errors()
    if errors:
        print(f"sweep failed: {len(errors)}/{len(result.shards)} "
              "shards errored", file=sys.stderr)
        for error in errors:
            print(f"  {error.summary()}", file=sys.stderr)
        return 1
    values = result.values()

    # Everything below prints only simulation-derived quantities, so
    # the table is byte-identical for any --jobs value; host timings
    # (which are not) stay behind --wall.
    print(f"sweep: {len(values)} seed replications of the sparse "
          f"diurnal day (duration {args.duration:.0f}s, peak "
          f"{args.peak_rate:g}/s, night {args.night_rate:g}/s, base "
          f"seed {args.seed})")
    header = (f"{'shard':>5} {'seed':>16} {'arrivals':>8} "
              f"{'completed':>9} {'p50_ms':>8} {'p95_ms':>8} "
              f"{'p99_ms':>8} {'sim_s':>8}")
    print(header)
    print("-" * len(header))
    for v in values:
        print(f"{v['shard_index']:>5} {v['seed']:016x} "
              f"{v['arrivals']:>8} {v['completed']:>9} "
              f"{v['p50'] * 1e3:>8.2f} {v['p95'] * 1e3:>8.2f} "
              f"{v['p99'] * 1e3:>8.2f} {v['sim_seconds']:>8.1f}")
    merged = merge_summaries(v["summary"] for v in values)
    mean_completed, hw_completed = normal_ci(
        [v["completed"] for v in values])
    mean_p95, hw_p95 = normal_ci([v["p95"] for v in values])
    print(f"aggregate: completed {mean_completed:.1f} ± "
          f"{hw_completed:.1f} per shard (95% CI), per-shard p95 "
          f"{mean_p95 * 1e3:.2f} ± {hw_p95 * 1e3:.2f} ms")
    print(f"merged   : {merged.count} requests, p50 "
          f"{merged.quantile(0.5) * 1e3:.2f} ms, p95 "
          f"{merged.quantile(0.95) * 1e3:.2f} ms, p99 "
          f"{merged.quantile(0.99) * 1e3:.2f} ms "
          "(bucket re-accumulation over all shards)")
    if args.wall:
        wall = [o.wall_seconds for o in result.shards]
        print(f"wall     : {result.wall_seconds:.2f}s total with "
              f"{args.jobs} job(s); per-shard "
              f"{min(wall):.2f}-{max(wall):.2f}s "
              "(host timings; not deterministic)")
    if args.metrics_out:
        import pathlib

        scrape = export_registry(
            merge_registries(v["registry"] for v in values))
        pathlib.Path(args.metrics_out).write_text(scrape)
        print(f"wrote {args.metrics_out}")
    if args.out:
        import json
        import pathlib

        doc = {
            "workload": "sparse_diurnal_replay",
            "params": {
                "duration": args.duration,
                "peak_rate": args.peak_rate,
                "night_rate": args.night_rate,
                "instances": args.instances,
                "replications": args.replications,
                "base_seed": args.seed,
            },
            "shards": [
                {k: v[k] for k in ("shard_index", "seed", "arrivals",
                                   "completed", "p50", "p95", "p99",
                                   "sim_seconds", "events")}
                for v in values
            ],
            "aggregate": {
                "completed_mean": mean_completed,
                "completed_ci95": hw_completed,
                "p95_mean": mean_p95,
                "p95_ci95": hw_p95,
                "merged": merged.as_dict(),
            },
        }
        pathlib.Path(args.out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    return 0


def _cmd_sweep_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import (
        check_regression,
        load_results,
        render_results,
        run_sweep_bench,
        write_results,
    )

    if args.check and not 0.0 <= args.tolerance < 1.0:
        raise ValueError("tolerance must lie in [0, 1)")
    mode = "quick" if args.quick else "full"
    print(f"BENCH_sweep ({mode} workloads, best of "
          f"{args.repeats or ('2' if args.quick else '3')} repeats)")
    results = run_sweep_bench(quick=args.quick, repeats=args.repeats,
                              jobs=args.jobs)
    print(render_results(results))
    print(f"pool: {results['jobs']} job(s) on "
          f"{results['cpu_count']} core(s); floor "
          f"{results['scenarios']['sweep_parallel_replay']['min_speedup']:.2f}x "
          "(core-count aware)")
    if args.out:
        write_results(results, args.out)
        print(f"wrote {args.out}")
    if args.check:
        reference = load_results(args.check)
        failures = check_regression(results, reference,
                                    tolerance=args.tolerance)
        if failures:
            print(f"== regression check vs {args.check}: FAIL ==")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"== regression check vs {args.check}: ok ==")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HARVEST Inference reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="print a reproduced artifact")
    p.add_argument("artifact", nargs="?", default="all",
                   choices=["all", "table1", "table2", "table3",
                            "fig5", "fig6", "fig7", "fig8"])
    p.add_argument("--format", default="text",
                   choices=["text", "json", "csv"])
    p.add_argument("--out", default=None,
                   help="write to a file instead of stdout")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("compare", help="paper-vs-model anchor table")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("advise", help="deployment tuning advice")
    p.add_argument("--platform", required=True)
    p.add_argument("--dataset", required=True)
    p.add_argument("--latency-ms", type=float, default=1000.0 / 60.0)
    p.set_defaults(func=_cmd_advise)

    p = sub.add_parser("predict", help="pre-deployment expectations")
    p.add_argument("--model", required=True)
    p.add_argument("--platform", required=True)
    p.set_defaults(func=_cmd_predict)

    p = sub.add_parser("figures", help="write Fig 5-8 SVG panels")
    p.add_argument("--out", default="figures")
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("backtest", help="validate the predictor")
    p.add_argument("--platform", required=True)
    p.add_argument("--donor", required=True)
    p.set_defaults(func=_cmd_backtest)

    p = sub.add_parser(
        "metrics",
        help="run a serving scenario and print its observability view")
    p.add_argument("--rate", type=float, default=80.0,
                   help="open-loop arrival rate (requests/s)")
    p.add_argument("--requests", type=int, default=200)
    p.add_argument("--interval", type=float, default=0.05,
                   help="time-series sampling interval (s)")
    p.add_argument("--instances", type=int, default=1,
                   help="inference instance-group size")
    p.add_argument("--queue-limit", type=int, default=0,
                   help="bound the infer queue (images; 0 = unbounded)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "autoscale",
        help="replay a step-load trace through the replica autoscaler")
    p.add_argument("--model", default="resnet50",
                   help="model whose latency curve the replicas serve")
    p.add_argument("--platform", default="jetson",
                   help="platform each replica models (one device)")
    p.add_argument("--slo-ms", type=float, default=100.0,
                   help="p95 latency SLO the autoscaler defends")
    p.add_argument("--base-rate", type=float, default=200.0,
                   help="background arrival rate (requests/s)")
    p.add_argument("--step-rate", type=float, default=3000.0,
                   help="arrival rate during the step (requests/s)")
    p.add_argument("--step-start", type=float, default=5.0)
    p.add_argument("--step-end", type=float, default=15.0)
    p.add_argument("--duration", type=float, default=30.0,
                   help="trace length (s); leave tail for scale-in")
    p.add_argument("--interval", type=float, default=0.25,
                   help="autoscaler evaluation interval (s)")
    p.add_argument("--cooldown", type=float, default=1.0,
                   help="seconds between scaling actions")
    p.add_argument("--max-replicas", type=int, default=0,
                   help="replica ceiling (0 = derive from the "
                        "capacity planner at the step rate)")
    p.add_argument("--admit-rate", type=float, default=3500.0,
                   help="token-bucket admission rate (req/s; 0 = off)")
    p.add_argument("--admit-burst", type=int, default=200,
                   help="token-bucket burst capacity")
    p.add_argument("--shed-queue", type=int, default=500,
                   help="shed arrivals past this many queued requests "
                        "(0 = off)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_autoscale)

    p = sub.add_parser(
        "trace",
        help="replay a trace across the continuum with end-to-end "
             "tracing, Perfetto export, and SLO burn-rate alerts")
    p.add_argument("--model", default="resnet50",
                   help="model whose latency curve the replicas serve")
    p.add_argument("--platform", default="jetson",
                   help="platform each cloud replica models")
    p.add_argument("--link", default="station_ethernet",
                   help="edge->cloud network link preset")
    p.add_argument("--slo-ms", type=float, default=1000.0 / 60.0,
                   help="latency threshold (ms); default the paper's "
                        "60 QPS frame budget")
    p.add_argument("--objective", type=float, default=0.99,
                   help="fraction of requests that must meet the "
                        "threshold")
    p.add_argument("--batch", type=int, default=4,
                   help="replica max batch size")
    p.add_argument("--base-rate", type=float, default=60.0,
                   help="background arrival rate (requests/s)")
    p.add_argument("--step-rate", type=float, default=900.0,
                   help="arrival rate during the burst (requests/s)")
    p.add_argument("--step-start", type=float, default=3.0)
    p.add_argument("--step-end", type=float, default=8.0)
    p.add_argument("--duration", type=float, default=15.0)
    p.add_argument("--edge-preprocess-ms", type=float, default=2.0,
                   help="edge preprocessing time per image (ms)")
    p.add_argument("--image-kb", type=float, default=128.0,
                   help="uplink payload per image (KiB)")
    p.add_argument("--max-replicas", type=int, default=4)
    p.add_argument("--admit-rate", type=float, default=0.0,
                   help="token-bucket admission rate (req/s; 0 = off)")
    p.add_argument("--admit-burst", type=int, default=100)
    p.add_argument("--shed-queue", type=int, default=300,
                   help="shed arrivals past this many queued requests "
                        "(0 = off)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None,
                   help="write Chrome/Perfetto trace-event JSON here")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "cache",
        help="replay a correlated frame sequence through the two-tier "
             "cache hierarchy at several scene-change rates")
    p.add_argument("--dataset", default="crsa",
                   help="dataset whose frames the camera captures")
    p.add_argument("--link", default="station_ethernet",
                   help="edge->cloud network link preset")
    p.add_argument("--frames", type=int, default=240,
                   help="frames per scene-change rate")
    p.add_argument("--rate", type=float, default=20.0,
                   help="camera frame rate (frames/s)")
    p.add_argument("--scene-change-rates", default="0.0,0.05,0.5",
                   help="comma-separated per-frame scene-cut "
                        "probabilities")
    p.add_argument("--threshold", type=int, default=8,
                   help="fingerprint Hamming match budget (0 = exact)")
    p.add_argument("--edge-ttl", type=float, default=2.0,
                   help="edge result freshness bound (s)")
    p.add_argument("--edge-capacity-kb", type=float, default=64.0,
                   help="edge result cache capacity (KiB)")
    p.add_argument("--cloud-capacity-mb", type=float, default=32.0,
                   help="cloud tensor cache capacity (MiB)")
    p.add_argument("--preprocess-ms", type=float, default=55.0,
                   help="cloud preprocess time per image (ms; CRSA's "
                        "CPU-bound warp)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None,
                   help="write the per-rate results as JSON here")
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser(
        "network",
        help="replay co-located field endpoints over one contended, "
             "lossy uplink (shared fair-share link, broker QoS, "
             "optional outage with store-and-forward)")
    p.add_argument("--endpoints", type=int, default=4,
                   help="co-located cameras sharing the uplink")
    p.add_argument("--link", default="field_lte_lossy",
                   help="uplink preset (see repro.continuum.network)")
    p.add_argument("--loss", type=float, default=None,
                   help="override the preset's packet loss probability")
    p.add_argument("--jitter-ms", type=float, default=None,
                   help="override the preset's one-way jitter bound "
                        "(ms)")
    p.add_argument("--frames", type=int, default=60,
                   help="frames per endpoint")
    p.add_argument("--rate", type=float, default=1.0,
                   help="per-endpoint capture rate (frames/s)")
    p.add_argument("--image-kb", type=float, default=256.0,
                   help="image payload per frame (KiB)")
    p.add_argument("--scene-change-rate", type=float, default=0.05,
                   help="per-frame scene-cut probability (drives edge "
                        "cache hits)")
    p.add_argument("--dataset", default="crsa",
                   help="dataset whose frames the cameras capture")
    p.add_argument("--model", default="resnet50",
                   help="cloud-side model")
    p.add_argument("--platform", default="a100",
                   help="cloud-side platform")
    p.add_argument("--edge-ttl", type=float, default=30.0,
                   help="edge result freshness bound (s)")
    p.add_argument("--outage-start", type=float, default=0.0,
                   help="link outage start (s; 0 disables the outage)")
    p.add_argument("--outage-seconds", type=float, default=3.0,
                   help="link outage duration (s)")
    p.add_argument("--broker-messages", type=int, default=200,
                   help="sensor messages per QoS level in the broker "
                        "leg")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None,
                   help="write the scenario results as JSON here")
    p.add_argument("--trace-out", default=None,
                   help="write the contended (uncached) replay as "
                        "Chrome trace-event JSON here")
    p.set_defaults(func=_cmd_network)

    p = sub.add_parser(
        "bench",
        help="time each optimized hot path against its seed "
             "implementation; optionally gate on a committed reference")
    p.add_argument("--quick", action="store_true",
                   help="smaller workloads (CI smoke test)")
    p.add_argument("--repeats", type=int, default=None,
                   help="timing repeats per side (default 4, 2 with "
                        "--quick)")
    p.add_argument("--out", default=None,
                   help="write the results JSON here")
    p.add_argument("--check", default=None,
                   help="reference results JSON to gate against "
                        "(exit 1 on regression)")
    p.add_argument("--tolerance", type=float, default=0.5,
                   help="allowed relative loss vs the reference "
                        "speedup (0.5 = half)")
    p.add_argument("--jobs", type=int, default=1,
                   help="fan scenarios across this many worker "
                        "processes (timings then share the machine; "
                        "references should come from --jobs 1)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "fluid",
        help="verify and time the hybrid fluid/DES engine against the "
             "exact replay on saturated traces")
    p.add_argument("--quick", action="store_true",
                   help="smaller traces (CI smoke test)")
    p.add_argument("--repeats", type=int, default=None,
                   help="timing repeats per side (default 1, 2 with "
                        "--quick)")
    p.add_argument("--out", default=None,
                   help="write the results JSON here")
    p.add_argument("--check", default=None,
                   help="reference results JSON to gate against "
                        "(exit 1 on regression)")
    p.add_argument("--tolerance", type=float, default=0.5,
                   help="allowed relative loss vs the reference "
                        "speedup (0.5 = half)")
    p.set_defaults(func=_cmd_fluid)

    p = sub.add_parser(
        "profile",
        help="run deterministic serving scenarios with the profiler "
             "and exemplars on; print the sim-time cost tree, folded "
             "stacks, tail attribution, and fluid regime timeline")
    p.add_argument("--link", default="station_ethernet",
                   help="edge->cloud network link preset")
    p.add_argument("--duration", type=float, default=10.0,
                   help="continuum step-trace length (s)")
    p.add_argument("--base-rate", type=float, default=40.0,
                   help="background arrival rate (requests/s)")
    p.add_argument("--step-rate", type=float, default=120.0,
                   help="arrival rate during the step (requests/s)")
    p.add_argument("--image-kb", type=float, default=128.0,
                   help="uplink payload per image (KiB)")
    p.add_argument("--sample-rate", type=float, default=1.0,
                   help="fraction of traces retained (deterministic "
                        "fractional sampling)")
    p.add_argument("--quantile", type=float, default=0.99,
                   help="tail quantile the attribution report explains")
    p.add_argument("--fluid-duration", type=float, default=120.0,
                   help="hybrid burst-trace length (s)")
    p.add_argument("--burst-rate", type=float, default=1200.0,
                   help="burst arrival rate (requests/s; must exceed "
                        "the pool's saturated rate to go fluid)")
    p.add_argument("--forward", action="store_true",
                   help="also profile one vit_tiny forward pass and "
                        "print its kernel-phase counts")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None,
                   help="write the profile report as JSON here")
    p.add_argument("--speedscope", default=None,
                   help="write the continuum profile as speedscope "
                        "JSON here")
    p.add_argument("--folded-out", default=None,
                   help="write the continuum folded stacks here "
                        "(collapsed flamegraph text)")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "profile-bench",
        help="measure the profiler's overhead contract: attached-but-"
             "disabled must be free, enabled must stay cheap")
    p.add_argument("--quick", action="store_true",
                   help="smaller workloads (CI smoke test)")
    p.add_argument("--repeats", type=int, default=None,
                   help="timing repeats per side (default 4, 2 with "
                        "--quick)")
    p.add_argument("--out", default=None,
                   help="write the results JSON here")
    p.add_argument("--check", default=None,
                   help="reference results JSON to gate against "
                        "(exit 1 on regression)")
    p.add_argument("--tolerance", type=float, default=0.5,
                   help="allowed relative loss vs the reference "
                        "speedup (0.5 = half)")
    p.set_defaults(func=_cmd_profile_bench)

    p = sub.add_parser(
        "faas",
        help="replay a sparse nighttime diurnal trace through the "
             "serverless backend; print cold-start inflation, "
             "scale-to-zero stats, the GB-second bill, and the "
             "serverless-vs-provisioned crossover")
    p.add_argument("--model", default="vit_base",
                   help="model the function serves")
    p.add_argument("--platform", default="jetson",
                   help="hardware whose latency curve the function "
                        "executes at")
    p.add_argument("--faas-platform", default="container_faas",
                   help="serverless platform preset (see "
                        "repro.faas.platform)")
    p.add_argument("--duration", type=float, default=7200.0,
                   help="trace length (s; the daylight window scales "
                        "with it)")
    p.add_argument("--peak-rate", type=float, default=6.0,
                   help="solar-noon arrival rate (requests/s)")
    p.add_argument("--night-rate", type=float, default=0.02,
                   help="nighttime arrival floor (requests/s)")
    p.add_argument("--keep-alive", type=float, default=45.0,
                   help="idle seconds before a warm instance is "
                        "reaped")
    p.add_argument("--concurrency", type=int, default=8,
                   help="per-function instance limit")
    p.add_argument("--slo-ms", type=float, default=100.0,
                   help="latency threshold the burn-rate monitor "
                        "defends (ms)")
    p.add_argument("--max-provisioned", type=int, default=2,
                   help="provisioned-concurrency ceiling for the "
                        "policy")
    p.add_argument("--hold-seconds", type=float, default=900.0,
                   help="calm seconds before the policy releases a "
                        "pinned instance")
    p.add_argument("--replica-cost-per-hour", type=float, default=0.02,
                   help="amortized cost of one provisioned edge "
                        "replica ($/h)")
    p.add_argument("--max-events", type=int, default=12,
                   help="policy events printed before eliding")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--out", default=None,
                   help="write the scenario results as JSON here")
    p.set_defaults(func=_cmd_faas)

    p = sub.add_parser(
        "faas-bench",
        help="run the BENCH_faas harness: the serverless backend vs "
             "a provisioned replica on the same sparse trace, and "
             "scale-to-zero vs never-reap")
    p.add_argument("--quick", action="store_true",
                   help="smaller workloads (CI smoke test)")
    p.add_argument("--repeats", type=int, default=None,
                   help="timing repeats per side (default 4, 2 with "
                        "--quick)")
    p.add_argument("--out", default=None,
                   help="write the results JSON here")
    p.add_argument("--check", default=None,
                   help="reference results JSON to gate against "
                        "(exit 1 on regression)")
    p.add_argument("--tolerance", type=float, default=0.5,
                   help="allowed relative loss vs the reference "
                        "speedup (0.5 = half)")
    p.set_defaults(func=_cmd_faas_bench)

    p = sub.add_parser(
        "sweep",
        help="fan a seed-replicated sparse-diurnal sweep across "
             "worker processes; deterministic table, aggregate CIs, "
             "and merged metrics")
    p.add_argument("--replications", type=int, default=8,
                   help="seed replications (= shards) of the workload")
    p.add_argument("--duration", type=float, default=3600.0,
                   help="trace duration in seconds per shard")
    p.add_argument("--peak-rate", type=float, default=3.0,
                   help="daytime peak arrival rate (req/s)")
    p.add_argument("--night-rate", type=float, default=0.01,
                   help="nighttime arrival rate (req/s)")
    p.add_argument("--instances", type=int, default=1,
                   help="backend instances per shard's server")
    p.add_argument("--seed", type=int, default=42,
                   help="base seed; shard seeds derive from "
                        "(base, shard_index)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes; the printed table is "
                        "byte-identical for any value")
    p.add_argument("--wall", action="store_true",
                   help="append host wall-clock timings "
                        "(nondeterministic; breaks byte-identity)")
    p.add_argument("--out", default=None,
                   help="write the sweep document JSON here")
    p.add_argument("--metrics-out", default=None,
                   help="write the merged metrics scrape here")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "sweep-bench",
        help="run the BENCH_sweep harness: sequential vs pooled "
             "sweep with byte-identical merged results and a "
             "core-count-aware speedup gate")
    p.add_argument("--quick", action="store_true",
                   help="smaller workloads (CI smoke test)")
    p.add_argument("--repeats", type=int, default=None,
                   help="timing repeats per side (default 3, 2 with "
                        "--quick)")
    p.add_argument("--jobs", type=int, default=4,
                   help="pool size for the optimized side")
    p.add_argument("--out", default=None,
                   help="write the results JSON here")
    p.add_argument("--check", default=None,
                   help="reference results JSON to gate against "
                        "(exit 1 on regression)")
    p.add_argument("--tolerance", type=float, default=0.5,
                   help="allowed relative loss vs the reference "
                        "speedup (0.5 = half)")
    p.set_defaults(func=_cmd_sweep_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
