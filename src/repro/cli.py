"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``report [artifact]``   print a reproduced table/figure (default: all)
``compare``             paper-vs-model anchor diff table
``advise``              tuning advice for a (platform, dataset) pair
``predict``             expectation report for a (model, platform) pair
``figures``             write the Fig 5-8 panels as SVG files
``backtest``            leave-one-platform-out predictor validation
``metrics``             run a serving scenario; print its live time
                        series, stage breakdown, and metrics scrape
"""

from __future__ import annotations

import argparse
import sys


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import full_report, render_report

    if args.format == "text":
        text = (full_report() if args.artifact == "all"
                else render_report(args.artifact))
    else:
        table = _structured_table(args.artifact)
        text = (table.to_json(indent=2) if args.format == "json"
                else table.to_csv())
    if args.out:
        import pathlib

        pathlib.Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _structured_table(artifact: str):
    """A ResultTable for machine-readable export."""
    from repro.core.study import CharacterizationStudy

    study = CharacterizationStudy()
    generators = {
        "table1": study.table1,
        "table2": study.table2,
        "table3": study.table3,
        "fig5": study.engine_scaling,
        "fig6": study.engine_scaling,
        "fig7": study.preprocessing,
        "fig8": study.end_to_end,
    }
    if artifact not in generators:
        raise KeyError(
            f"structured export supports {sorted(generators)}, "
            f"not {artifact!r}")
    return generators[artifact]()


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import render_comparison

    print(render_comparison())
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.core.guidance import TuningAdvisor
    from repro.data.datasets import get_dataset
    from repro.hardware.platform import get_platform

    advisor = TuningAdvisor(get_platform(args.platform),
                            latency_target_seconds=args.latency_ms / 1e3)
    dataset = get_dataset(args.dataset)
    print(f"deployment advice for {dataset.display_name} on "
          f"{args.platform} (target {args.latency_ms:.1f} ms):")
    for rec in advisor.recommend_model(dataset):
        status = "meets target" if rec.meets_target else "misses target"
        print(f"  {rec.model:10s} @BS{rec.batch_size:<4d} "
              f"{rec.throughput:8.0f} img/s  "
              f"{rec.latency_seconds * 1e3:7.1f} ms  "
              f"{rec.bottleneck}-bound  [{status}]")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.hardware.platform import get_platform
    from repro.models.zoo import get_model
    from repro.predict.predictor import PerformancePredictor

    predictor = PerformancePredictor(get_platform(args.platform))
    report = predictor.expectation_report(get_model(args.model).graph)
    for key, value in report.items():
        if isinstance(value, float):
            value = f"{value:.4g}"
        print(f"  {key}: {value}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.viz.charts import save_all_figures

    paths = save_all_figures(args.out)
    for path in paths:
        print(path)
    return 0


def _cmd_backtest(args: argparse.Namespace) -> int:
    from repro.predict.validation import backtest_platform

    results = backtest_platform(args.platform, args.donor)
    print(f"predicting {args.platform} from {args.donor} calibration:")
    for r in results:
        print(f"  {r.model:10s} @BS{r.batch:<5d} paper "
              f"{r.paper_images_per_second:9.1f}  predicted "
              f"{r.predicted_images_per_second:9.1f}  "
              f"({r.relative_error:+.1%})")
    mean = sum(r.relative_error for r in results) / len(results)
    print(f"  mean relative error: {mean:.1%}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.analysis.report import (
        registry_stage_breakdown,
        render_stage_breakdown,
    )
    from repro.serving.batcher import BatcherConfig
    from repro.serving.client import OpenLoopClient
    from repro.serving.exporter import export_metrics
    from repro.serving.observability import TimeSeriesSampler
    from repro.serving.server import ModelConfig, TritonLikeServer

    if args.rate <= 0:
        raise ValueError("--rate must be positive")
    server = TritonLikeServer()
    server.register(ModelConfig(
        "preprocess", lambda n: 0.0008 * n,
        batcher=BatcherConfig(max_batch_size=16,
                              max_queue_delay=0.002)))
    server.register(ModelConfig(
        "infer", lambda n: 0.004 + 0.0012 * n,
        batcher=BatcherConfig(max_batch_size=32,
                              max_queue_delay=0.005,
                              max_queue_size=args.queue_limit),
        instances=args.instances,
        preprocess_model="preprocess"))
    client = OpenLoopClient(server, "infer", rate_per_second=args.rate,
                            num_requests=args.requests, seed=args.seed)
    sampler = TimeSeriesSampler(server, interval=args.interval)
    client.start()
    sampler.start()
    server.run()

    print(f"scenario: preprocess->infer, {args.requests} requests @ "
          f"{args.rate:g} rps, sampled every {args.interval:g} s")
    print("== timeline ==")
    print(sampler.render_timeline(), end="")
    print("== stage breakdown ==")
    breakdown = registry_stage_breakdown(server.metrics)
    print(render_stage_breakdown(breakdown), end="")
    print("== scrape ==")
    print(export_metrics(server), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HARVEST Inference reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="print a reproduced artifact")
    p.add_argument("artifact", nargs="?", default="all",
                   choices=["all", "table1", "table2", "table3",
                            "fig5", "fig6", "fig7", "fig8"])
    p.add_argument("--format", default="text",
                   choices=["text", "json", "csv"])
    p.add_argument("--out", default=None,
                   help="write to a file instead of stdout")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("compare", help="paper-vs-model anchor table")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("advise", help="deployment tuning advice")
    p.add_argument("--platform", required=True)
    p.add_argument("--dataset", required=True)
    p.add_argument("--latency-ms", type=float, default=1000.0 / 60.0)
    p.set_defaults(func=_cmd_advise)

    p = sub.add_parser("predict", help="pre-deployment expectations")
    p.add_argument("--model", required=True)
    p.add_argument("--platform", required=True)
    p.set_defaults(func=_cmd_predict)

    p = sub.add_parser("figures", help="write Fig 5-8 SVG panels")
    p.add_argument("--out", default="figures")
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("backtest", help="validate the predictor")
    p.add_argument("--platform", required=True)
    p.add_argument("--donor", required=True)
    p.set_defaults(func=_cmd_backtest)

    p = sub.add_parser(
        "metrics",
        help="run a serving scenario and print its observability view")
    p.add_argument("--rate", type=float, default=80.0,
                   help="open-loop arrival rate (requests/s)")
    p.add_argument("--requests", type=int, default=200)
    p.add_argument("--interval", type=float, default=0.05,
                   help="time-series sampling interval (s)")
    p.add_argument("--instances", type=int, default=1,
                   help="inference instance-group size")
    p.add_argument("--queue-limit", type=int, default=0,
                   help="bound the infer queue (images; 0 = unbounded)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_metrics)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
