"""End-to-end pipeline performance (Fig. 8).

The e2e experiment co-locates a preprocessing instance and a model engine
on one device and streams batches through both.  Steady-state behaviour
under Triton's decoupled backends:

* stages overlap (batch *k* preprocesses while batch *k−1* infers), so
  **throughput is the slower stage's throughput**;
* a single request still traverses both stages, so **request latency is
  the sum of the stage batch latencies**;
* on memory-constrained devices the resident preprocessing buffers shrink
  the engine's feasible batch ("Combined memory consumption from
  preprocessing and inference constrains the model engine's available
  batch size" — the Fig. 8 batch labels), which lowers engine throughput
  and produces the Jetson's "inverted performance dynamics".
"""

from __future__ import annotations

import dataclasses

from repro.data.datasets import DatasetSpec
from repro.engine import calibration
from repro.engine.latency import LatencyModel
from repro.engine.oom import max_batch_size
from repro.hardware.platform import PlatformSpec
from repro.models.graph import ModelGraph
from repro.preprocessing.frameworks import DALI, PreprocessFramework


def e2e_batch_size(platform: PlatformSpec, graph: ModelGraph,
                   batch_sizes: tuple[int, ...] | None = None) -> int:
    """The largest batch usable end to end (the Fig. 8 x-labels).

    Uses the paper's anchored values when available; otherwise falls back
    to the memory model with the e2e-reduced budget (unified memory) or
    the full budget (discrete GPUs, capped at the paper's BS 64 e2e
    operating point).
    """
    key = (platform.name.lower(), graph.name.lower())
    anchored = calibration.E2E_BATCH_SIZES.get(key)
    if anchored is not None:
        return anchored
    budget = None
    if platform.unified_memory:
        budget = calibration.JETSON_E2E_ENGINE_BUDGET_BYTES
    grid = batch_sizes or calibration.batch_grid(platform.name)
    return min(64, max_batch_size(graph, platform, grid,
                                  budget_bytes=budget))


@dataclasses.dataclass(frozen=True)
class EndToEndResult:
    """One Fig. 8 cell: (platform, model, dataset) at its e2e batch."""

    platform: str
    model: str
    dataset: str
    batch_size: int
    preprocess_latency_seconds: float
    engine_latency_seconds: float
    preprocess_throughput: float
    engine_throughput: float

    @property
    def latency_seconds(self) -> float:
        """Request latency: both stages traversed (Fig. 8 upper panels)."""
        return self.preprocess_latency_seconds + self.engine_latency_seconds

    @property
    def throughput(self) -> float:
        """Pipelined steady-state images/s (Fig. 8 lower panels)."""
        return min(self.preprocess_throughput, self.engine_throughput)

    @property
    def bottleneck(self) -> str:
        """Which stage caps throughput ("preprocess" or "engine")."""
        return ("preprocess"
                if self.preprocess_throughput <= self.engine_throughput
                else "engine")


class EndToEndPipeline:
    """Composes a preprocessing framework with an engine on one platform.

    Parameters
    ----------
    graph / platform:
        The deployed model and device.
    framework:
        Preprocessing backend.  Defaults to a DALI instance producing the
        model's input resolution (the paper's e2e configuration).
    """

    def __init__(self, graph: ModelGraph, platform: PlatformSpec,
                 framework: PreprocessFramework | None = None):
        self.graph = graph
        self.platform = platform
        if framework is None:
            framework = DALI(output_size=graph.input_shape[1])
        elif framework.output_size != graph.input_shape[1]:
            raise ValueError(
                f"framework produces {framework.output_size}px inputs but "
                f"{graph.name} expects {graph.input_shape[1]}px")
        self.framework = framework
        self.latency_model = LatencyModel(graph, platform)

    def evaluate(self, dataset: DatasetSpec,
                 batch_size: int | None = None) -> EndToEndResult:
        """Price the pipeline for one dataset (one Fig. 8 bar pair)."""
        if dataset.dataset_specific_preprocessing and \
                not self.framework.supports_warp:
            # The paper's Fig. 8 legend omits CRSA for exactly this
            # reason: its CPU-bound perspective stage is not
            # GPU-accelerated yet.
            raise ValueError(
                f"{dataset.name} needs dataset-specific preprocessing that "
                f"{self.framework.name} does not provide")
        batch = (e2e_batch_size(self.platform, self.graph)
                 if batch_size is None else batch_size)
        if batch < 1:
            raise ValueError("batch_size must be >= 1")
        pre = self.framework.estimate(dataset, self.platform,
                                      batch_size=batch)
        engine_latency = self.latency_model.latency(batch)
        return EndToEndResult(
            platform=self.platform.name,
            model=self.graph.name,
            dataset=dataset.name,
            batch_size=batch,
            preprocess_latency_seconds=pre.batch_latency_seconds,
            engine_latency_seconds=engine_latency,
            preprocess_throughput=pre.throughput,
            engine_throughput=batch / engine_latency,
        )

    def sweep_datasets(self, datasets: list[DatasetSpec],
                       batch_size: int | None = None,
                       ) -> list[EndToEndResult]:
        """Evaluate all (non-CRSA) datasets — one Fig. 8 panel group."""
        results = []
        for dataset in datasets:
            if dataset.dataset_specific_preprocessing and \
                    not self.framework.supports_warp:
                continue
            results.append(self.evaluate(dataset, batch_size))
        return results
