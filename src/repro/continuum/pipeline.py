"""End-to-end pipeline performance (Fig. 8).

The e2e experiment co-locates a preprocessing instance and a model engine
on one device and streams batches through both.  Steady-state behaviour
under Triton's decoupled backends:

* stages overlap (batch *k* preprocesses while batch *k−1* infers), so
  **throughput is the slower stage's throughput**;
* a single request still traverses both stages, so **request latency is
  the sum of the stage batch latencies**;
* on memory-constrained devices the resident preprocessing buffers shrink
  the engine's feasible batch ("Combined memory consumption from
  preprocessing and inference constrains the model engine's available
  batch size" — the Fig. 8 batch labels), which lowers engine throughput
  and produces the Jetson's "inverted performance dynamics".
"""

from __future__ import annotations

import dataclasses
import itertools
from collections.abc import Callable

from repro.continuum.network import NetworkLink
from repro.data.datasets import DatasetSpec
from repro.engine import calibration
from repro.engine.latency import LatencyModel
from repro.engine.oom import max_batch_size
from repro.hardware.platform import PlatformSpec
from repro.models.graph import ModelGraph
from repro.preprocessing.frameworks import DALI, PreprocessFramework
from repro.serving.request import Request, Response
from repro.serving.tracectx import SpanPool, TraceContext


def e2e_batch_size(platform: PlatformSpec, graph: ModelGraph,
                   batch_sizes: tuple[int, ...] | None = None) -> int:
    """The largest batch usable end to end (the Fig. 8 x-labels).

    Uses the paper's anchored values when available; otherwise falls back
    to the memory model with the e2e-reduced budget (unified memory) or
    the full budget (discrete GPUs, capped at the paper's BS 64 e2e
    operating point).
    """
    key = (platform.name.lower(), graph.name.lower())
    anchored = calibration.E2E_BATCH_SIZES.get(key)
    if anchored is not None:
        return anchored
    budget = None
    if platform.unified_memory:
        budget = calibration.JETSON_E2E_ENGINE_BUDGET_BYTES
    grid = batch_sizes or calibration.batch_grid(platform.name)
    return min(64, max_batch_size(graph, platform, grid,
                                  budget_bytes=budget))


@dataclasses.dataclass(frozen=True)
class EndToEndResult:
    """One Fig. 8 cell: (platform, model, dataset) at its e2e batch."""

    platform: str
    model: str
    dataset: str
    batch_size: int
    preprocess_latency_seconds: float
    engine_latency_seconds: float
    preprocess_throughput: float
    engine_throughput: float

    @property
    def latency_seconds(self) -> float:
        """Request latency: both stages traversed (Fig. 8 upper panels)."""
        return self.preprocess_latency_seconds + self.engine_latency_seconds

    @property
    def throughput(self) -> float:
        """Pipelined steady-state images/s (Fig. 8 lower panels)."""
        return min(self.preprocess_throughput, self.engine_throughput)

    @property
    def bottleneck(self) -> str:
        """Which stage caps throughput ("preprocess" or "engine")."""
        return ("preprocess"
                if self.preprocess_throughput <= self.engine_throughput
                else "engine")


class EndToEndPipeline:
    """Composes a preprocessing framework with an engine on one platform.

    Parameters
    ----------
    graph / platform:
        The deployed model and device.
    framework:
        Preprocessing backend.  Defaults to a DALI instance producing the
        model's input resolution (the paper's e2e configuration).
    """

    def __init__(self, graph: ModelGraph, platform: PlatformSpec,
                 framework: PreprocessFramework | None = None):
        self.graph = graph
        self.platform = platform
        if framework is None:
            framework = DALI(output_size=graph.input_shape[1])
        elif framework.output_size != graph.input_shape[1]:
            raise ValueError(
                f"framework produces {framework.output_size}px inputs but "
                f"{graph.name} expects {graph.input_shape[1]}px")
        self.framework = framework
        self.latency_model = LatencyModel(graph, platform)

    def evaluate(self, dataset: DatasetSpec,
                 batch_size: int | None = None) -> EndToEndResult:
        """Price the pipeline for one dataset (one Fig. 8 bar pair)."""
        if dataset.dataset_specific_preprocessing and \
                not self.framework.supports_warp:
            # The paper's Fig. 8 legend omits CRSA for exactly this
            # reason: its CPU-bound perspective stage is not
            # GPU-accelerated yet.
            raise ValueError(
                f"{dataset.name} needs dataset-specific preprocessing that "
                f"{self.framework.name} does not provide")
        batch = (e2e_batch_size(self.platform, self.graph)
                 if batch_size is None else batch_size)
        if batch < 1:
            raise ValueError("batch_size must be >= 1")
        pre = self.framework.estimate(dataset, self.platform,
                                      batch_size=batch)
        engine_latency = self.latency_model.latency(batch)
        return EndToEndResult(
            platform=self.platform.name,
            model=self.graph.name,
            dataset=dataset.name,
            batch_size=batch,
            preprocess_latency_seconds=pre.batch_latency_seconds,
            engine_latency_seconds=engine_latency,
            preprocess_throughput=pre.throughput,
            engine_throughput=batch / engine_latency,
        )

    def sweep_datasets(self, datasets: list[DatasetSpec],
                       batch_size: int | None = None,
                       ) -> list[EndToEndResult]:
        """Evaluate all (non-CRSA) datasets — one Fig. 8 panel group."""
        results = []
        for dataset in datasets:
            if dataset.dataset_specific_preprocessing and \
                    not self.framework.supports_warp:
                continue
            results.append(self.evaluate(dataset, batch_size))
        return results


# ----------------------------------------------------------------------
# Traced continuum replay (edge -> uplink -> cloud -> downlink)
# ----------------------------------------------------------------------
class ContinuumReplayer:
    """Drives requests end-to-end across the continuum on the sim clock.

    :class:`EndToEndPipeline` *prices* the continuum analytically; this
    class *executes* it as discrete events so every leg becomes a traced
    span: per request, an ``edge_preprocess`` span (the field device
    preparing the capture), an ``uplink`` transfer over the
    :class:`~repro.continuum.network.NetworkLink` — or any transport
    sharing its surface: a :class:`~repro.continuum.uplink.SharedUplink`
    (co-located endpoints contend for the bottleneck and the uplink
    spans widen) or a :class:`~repro.continuum.uplink.StoreAndForward`
    buffer (outages delay delivery) — the full serving path
    inside the cloud ``target`` (admission, routing, queueing, batching,
    execution — instrumented by their own layers), and a ``downlink``
    leg returning the result.  With an
    :class:`~repro.continuum.offload.OffloadPolicy` attached, requests
    the policy places on the edge are served locally instead
    (``edge_inference`` span, no network legs).

    The replayer is itself a ``submit``-able target (it has ``sim`` and
    ``submit``), so :class:`~repro.serving.traces.TraceReplayer` can
    drive it from any arrival trace.  Every request gets a fresh
    :class:`~repro.serving.tracectx.TraceContext` with ids allocated
    from a replayer-local counter — two identical runs produce
    byte-identical traces.

    ``target`` is a :class:`~repro.serving.server.TritonLikeServer` (its
    completion callback is wired automatically) or a
    :class:`~repro.scale.balancer.LoadBalancer` — for a balancer, wire
    each backend with :meth:`attach_backend` (replica factories should
    call it for autoscaled replicas too).

    With a :class:`~repro.cache.tiers.CacheHierarchy` attached (and
    requests carrying ``cache_key`` fingerprints), the edge result tier
    is consulted on entry: a hit bypasses edge preprocessing, the
    uplink, and the cloud entirely (``cache_lookup`` instant +
    ``cache_hit`` span, answered after ``cache_lookup_time``), and every
    successfully delivered cloud result is inserted for the frames that
    follow.  Requests without a fingerprint, or a replayer without a
    cache, behave exactly as before.
    """

    def __init__(self, target, link: NetworkLink,
                 edge_preprocess_time: Callable[[int], float],
                 image_bytes: float, result_bytes: float = 1024.0,
                 offload=None, registry=None,
                 latency_buckets=None, cache=None,
                 cache_lookup_time: float = 0.0002,
                 trace_sample_rate: float = 1.0,
                 exemplars: bool = False, profiler=None):
        if image_bytes <= 0:
            raise ValueError("image_bytes must be positive")
        if result_bytes < 0:
            raise ValueError("result_bytes must be >= 0")
        if cache_lookup_time < 0:
            raise ValueError("cache_lookup_time must be >= 0")
        if not 0.0 <= trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must lie in [0, 1]")
        if exemplars and registry is None:
            raise ValueError(
                "exemplars need a registry to record into")
        self.target = target
        self.link = link
        self.edge_preprocess_time = edge_preprocess_time
        self.image_bytes = image_bytes
        self.result_bytes = result_bytes
        self.offload = offload
        #: Optional :class:`~repro.cache.tiers.CacheHierarchy`.  With an
        #: edge result tier, a fingerprinted request that hits answers
        #: locally in ``cache_lookup_time`` — no edge preprocessing, no
        #: uplink, no cloud serving path.
        self.cache = cache
        self.cache_lookup_time = cache_lookup_time
        #: Uplink payload bytes never sent thanks to edge cache hits.
        self.uplink_bytes_saved = 0.0
        #: Fraction of requests whose traces are retained.  Sampling is
        #: deterministic (a fractional accumulator, not a RNG): rate 0.1
        #: keeps exactly every 10th request's trace.  Sampled-out
        #: requests still carry a full context while in flight — every
        #: span, baggage flag, and latency metric behaves identically —
        #: but the records come from a shared pool and are recycled at
        #: finalize, so a long replay retains memory only for the kept
        #: fraction.  The default of 1.0 keeps everything (the
        #: byte-identical legacy behaviour).
        self.trace_sample_rate = trace_sample_rate
        #: Whether end-to-end latency observations carry OpenMetrics
        #: exemplars (deterministic: every finalized request has a
        #: trace id even when its spans are sampled out).
        self._exemplars = bool(exemplars)
        #: Optional :class:`~repro.serving.profiler.SimProfiler`;
        #: attributes each leg's sim time to ``continuum;<leg>``.
        self.profiler = profiler
        self._span_pool = SpanPool()
        self._sample_accum = 0.0
        self._next_trace_id = itertools.count(1)
        #: Every *retained* trace context, in submission order.
        self.traces: list[TraceContext] = []
        #: Responses served locally on the edge (offload policy hits).
        self.edge_responses: list[Response] = []
        #: Responses answered from the edge result cache.
        self.cache_responses: list[Response] = []
        self._h_latency = self._c_requests = None
        self._c_uplink_saved = None
        if registry is not None:
            self._c_uplink_saved = registry.counter(
                "cache_uplink_bytes_saved_total",
                "Uplink payload bytes avoided by edge cache hits.",
                ).labels()
        if registry is not None:
            from repro.serving.observability import DEFAULT_BUCKETS
            self._h_latency = registry.histogram(
                "continuum_latency_seconds",
                "End-to-end continuum latency (edge entry to result "
                "delivery).",
                buckets=(latency_buckets if latency_buckets is not None
                         else DEFAULT_BUCKETS))
            if self._exemplars:
                self._h_latency.enable_exemplars()
            self._c_requests = registry.counter(
                "continuum_requests_total",
                "Continuum requests by placement and final status.")
        #: (model, placement, status) -> bound (histogram, counter)
        #: handles for the finalize hot path.
        self._finalize_handles: dict[tuple[str, str, str], tuple] = {}
        if hasattr(target, "on_response"):
            target.on_response(self.handle_response)

    @property
    def sim(self):
        """The shared simulator clock (TraceReplayer contract)."""
        return self.target.sim

    def attach_backend(self, server) -> None:
        """Route a balancer backend's completions through the replayer.

        Must be called for every backend under a
        :class:`~repro.scale.balancer.LoadBalancer` target (including
        replicas an autoscaler adds later) so the downlink leg runs.
        """
        server.on_response(self.handle_response)

    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Enter one request into the continuum at the current time."""
        sim = self.sim
        if self.trace_sample_rate >= 1.0:
            sampled = True
        else:
            self._sample_accum += self.trace_sample_rate
            sampled = self._sample_accum >= 1.0 - 1e-9
            if sampled:
                self._sample_accum -= 1.0
        ctx = TraceContext(next(self._next_trace_id), start=sim.now,
                           pool=None if sampled else self._span_pool)
        ctx.sampled = sampled
        ctx.baggage["model"] = request.model_name
        endpoint = getattr(request, "endpoint", None)
        if endpoint is not None:
            # Co-located field endpoints sharing one uplink tag their
            # requests so traces and reports can split by device.
            ctx.baggage["endpoint"] = endpoint
        request.trace = ctx
        request.arrival_time = sim.now
        if sampled:
            self.traces.append(ctx)
        if self.cache is not None and request.cache_key is not None:
            from repro.cache.tiers import EDGE_RESULT

            result = self.cache.lookup(EDGE_RESULT, request.cache_key,
                                       trace=ctx, now=sim.now)
            if result is not None:
                self._serve_from_cache(request)
                return
        placement = "cloud"
        if self.offload is not None:
            payload = self.image_bytes * request.num_images
            decision = self.offload.decide(payload, trace=ctx,
                                           now=sim.now)
            placement = decision.placement.value
        ctx.baggage["placement"] = placement
        pre_span = ctx.begin("edge_preprocess", sim.now,
                             category="continuum",
                             images=request.num_images)
        duration = self.edge_preprocess_time(request.num_images)
        if duration < 0:
            raise ValueError("edge preprocess time must be >= 0")
        if self.profiler is not None:
            self.profiler.record(("continuum", "edge_preprocess"),
                                 sim_seconds=duration)
        if placement == "edge":
            sim.schedule(duration,
                         lambda: self._edge_serve(request, pre_span))
        else:
            sim.schedule(duration,
                         lambda: self._uplink(request, pre_span))

    def _serve_from_cache(self, request: Request) -> None:
        """Answer an edge-cache hit locally: no uplink, no cloud.

        The hit still produces a complete trace (a ``cache_hit`` span
        covering the lookup) and a registry latency sample, so the
        critical-path analyzer and the stage breakdown see cache-served
        requests instead of silent gaps.
        """
        ctx = request.trace
        ctx.baggage["placement"] = "edge_cache"
        span = ctx.begin("cache_hit", self.sim.now, category="cache",
                         tier="edge_result", images=request.num_images)
        saved = self.image_bytes * request.num_images
        self.uplink_bytes_saved += saved
        if self._c_uplink_saved is not None:
            self._c_uplink_saved.inc(saved)

        def served() -> None:
            ctx.end(span, self.sim.now)
            ctx.close(self.sim.now, status="ok")
            self.cache_responses.append(
                Response(request, self.sim.now, status="ok"))
            if self.profiler is not None:
                self.profiler.record(("continuum", "cache_hit"),
                                     sim_seconds=self.cache_lookup_time)
            self._finalize(ctx, request)

        self.sim.schedule(self.cache_lookup_time, served)

    def _edge_serve(self, request: Request, pre_span) -> None:
        ctx = request.trace
        ctx.end(pre_span, self.sim.now)
        span = ctx.begin("edge_inference", self.sim.now,
                         category="continuum")
        t0 = self.sim.now

        def done() -> None:
            ctx.end(span, self.sim.now)
            if self.profiler is not None:
                self.profiler.record(("continuum", "edge_inference"),
                                     sim_seconds=self.sim.now - t0)
            ctx.close(self.sim.now, status="ok")
            self.edge_responses.append(
                Response(request, self.sim.now, status="ok"))
            self._finalize(ctx, request)

        self.sim.schedule(self.offload.edge_latency(), done)

    def _uplink(self, request: Request, pre_span) -> None:
        ctx = request.trace
        ctx.end(pre_span, self.sim.now)
        ctx.baggage["awaiting_downlink"] = True
        payload = self.image_bytes * request.num_images
        t0 = self.sim.now

        def arrived() -> None:
            if self.profiler is not None:
                self.profiler.record(("continuum", "uplink"),
                                     sim_seconds=self.sim.now - t0)
            self.target.submit(request)
            # A synchronous rejection (admission shed, drain refusal,
            # queue-full) closes the trace before submit returns and
            # never reaches the completion callback's downlink leg.
            if ctx.closed and ctx.baggage.get("awaiting_downlink"):
                ctx.baggage.pop("awaiting_downlink", None)
                self._finalize(ctx, request)

        self.link.schedule_transfer(self.sim, payload, arrived,
                                    trace=ctx, direction="uplink")

    def handle_response(self, response: Response) -> None:
        """Cloud completion: run the downlink leg, then finish the trace.

        Rejected responses skip the downlink (nothing was computed; the
        refusal is assumed to piggyback on the connection teardown).
        """
        ctx = response.request.trace
        if ctx is None or not ctx.baggage.pop("awaiting_downlink", False):
            return
        if response.status == "rejected":
            self._finalize(ctx, response.request)
            return
        t0 = self.sim.now

        def delivered() -> None:
            if self.profiler is not None:
                self.profiler.record(("continuum", "downlink"),
                                     sim_seconds=self.sim.now - t0)
            ctx.close(self.sim.now, status=response.status)
            if (self.cache is not None and response.status == "ok"
                    and response.request.cache_key is not None):
                from repro.cache.tiers import EDGE_RESULT

                # A delivered result becomes reusable for every
                # near-identical frame that follows (bytes: the stored
                # result payload, floored so 0-byte results still key).
                self.cache.insert(EDGE_RESULT,
                                  response.request.cache_key,
                                  value=response,
                                  size_bytes=max(1.0, self.result_bytes))
            self._finalize(ctx, response.request)

        self.link.schedule_transfer(self.sim, self.result_bytes,
                                    delivered, trace=ctx,
                                    direction="downlink")

    def _finalize(self, ctx: TraceContext, request: Request) -> None:
        if self._h_latency is not None:
            model = str(ctx.baggage.get("model"))
            placement = str(ctx.baggage.get("placement"))
            status = str(ctx.status)
            key = (model, placement, status)
            handles = self._finalize_handles.get(key)
            if handles is None:
                handles = self._finalize_handles[key] = (
                    self._h_latency.labels(model=model),
                    self._c_requests.labels(placement=placement,
                                            status=status))
            if self._exemplars:
                handles[0].observe(ctx.latency,
                                   trace_id=str(ctx.trace_id))
            else:
                handles[0].observe(ctx.latency)
            handles[1].inc()
        if not ctx.sampled:
            # Metrics recorded above; the spans go back to the pool and
            # the request drops its reference so nothing keeps the
            # recycled records reachable.
            request.trace = None
            ctx.recycle()

    # ------------------------------------------------------------------
    def completed_traces(self) -> list[TraceContext]:
        """Closed traces in submission order (the export input)."""
        return [t for t in self.traces if t.closed]
