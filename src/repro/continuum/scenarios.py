"""Deployment scenario specifications (Section 2.2).

Each scenario couples a platform tier with the constraints that drive
tuning: online trades latency for throughput behind a network link,
offline batches a whole field with stitching up front, real-time must hit
a camera-rate deadline on the edge.
"""

from __future__ import annotations

import dataclasses

from repro.continuum.network import NetworkLink, get_link
from repro.engine.calibration import LATENCY_TARGET_SECONDS
from repro.hardware.platform import PlatformKind, PlatformSpec


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """Base scenario: a name plus validation against a platform."""

    name: str

    def validate_platform(self, platform: PlatformSpec) -> None:
        """Raise when the platform cannot host this scenario."""


@dataclasses.dataclass(frozen=True)
class OnlineScenario(ScenarioSpec):
    """Streaming inference on demand (Section 2.2.1).

    "Data is processed and returned in real time upon being uploaded to
    the compute platform ... real-time latency is traded off for high
    throughput."
    """

    name: str = "online"
    link: NetworkLink = dataclasses.field(
        default_factory=lambda: get_link("farm_wifi"))
    #: Service-level objective on request round trip (upload + inference).
    slo_seconds: float = 0.5

    def validate_platform(self, platform: PlatformSpec) -> None:
        if platform.kind is PlatformKind.EDGE:
            # Edge online serving is allowed (the paper's "either edge or
            # cloud"), just without a network hop.
            return

    def upload_seconds(self, image_bytes: float) -> float:
        """One-way upload time of a payload over the scenario link."""
        return self.link.transfer_seconds(image_bytes)


@dataclasses.dataclass(frozen=True)
class OfflineScenario(ScenarioSpec):
    """Field-by-field batch processing (Section 2.2.2).

    "offline inference is performed after a batch of data has been
    collected ... ideal for applications requiring image stitching or
    orthomosaic generation."
    """

    name: str = "offline"
    #: Whether captures are stitched into an orthomosaic first (Fig. 3a).
    stitch_first: bool = True
    #: Model-input tile size cut from the mosaic.
    tile_size: int = 224

    def validate_platform(self, platform: PlatformSpec) -> None:
        if platform.kind is PlatformKind.EDGE:
            raise ValueError(
                "offline field-scale processing targets cloud platforms; "
                f"{platform.name} is an edge device")


@dataclasses.dataclass(frozen=True)
class RealTimeScenario(ScenarioSpec):
    """On-the-fly decision making on the edge (Section 2.2.3).

    "From raw image preprocessing to ML model output, the entire pipeline
    must operate within strict time constraints."
    """

    name: str = "real-time"
    #: Deadline per frame batch; defaults to the Fig. 6 60-QPS line.
    deadline_seconds: float = LATENCY_TARGET_SECONDS
    camera_fps: float = 60.0
    camera_resolution: tuple[int, int] = (3840, 2160)  # the GoPro feed

    def validate_platform(self, platform: PlatformSpec) -> None:
        if platform.kind is not PlatformKind.EDGE:
            raise ValueError(
                "real-time inference runs on the edge device in the "
                f"field; {platform.name} is a {platform.kind.value} "
                "platform")

    @property
    def frame_interval_seconds(self) -> float:
        """Per-frame deadline implied by the camera rate."""
        return 1.0 / self.camera_fps
