"""Compute continuum: deployment scenarios, network, offline stitching.

Section 2.2 defines three deployment scenarios — online (streaming,
throughput-oriented), offline (batch, "field-by-field" with extensive
preprocessing such as orthomosaic stitching), and real-time (edge,
latency-critical).  This package models each, plus the substrates they
need: network links for edge→cloud transfer and a real orthomosaic
stitch/tile pipeline for the offline drone workflow (Fig. 3a).
"""

from repro.continuum.network import (
    LINKS,
    LinkTelemetry,
    NetworkLink,
    Transfer,
    get_link,
    register_link,
)
from repro.continuum.uplink import SharedUplink, StoreAndForward
from repro.continuum.broker import Broker
from repro.continuum.stitching import (
    TilePlacement,
    stitch_mosaic,
    tile_mosaic,
    plan_survey,
    StitchCostModel,
)
from repro.continuum.scenarios import (
    ScenarioSpec,
    OnlineScenario,
    OfflineScenario,
    RealTimeScenario,
)
from repro.continuum.pipeline import (
    EndToEndPipeline,
    EndToEndResult,
    e2e_batch_size,
)
from repro.continuum.offload import (
    OffloadDecision,
    OffloadPolicy,
    Placement,
)
from repro.continuum.deployment import (
    DeploymentManifest,
    ManifestError,
    build_stack,
    load_manifest,
)

__all__ = [
    "NetworkLink",
    "LINKS",
    "get_link",
    "TilePlacement",
    "stitch_mosaic",
    "tile_mosaic",
    "plan_survey",
    "StitchCostModel",
    "ScenarioSpec",
    "OnlineScenario",
    "OfflineScenario",
    "RealTimeScenario",
    "EndToEndPipeline",
    "EndToEndResult",
    "e2e_batch_size",
    "OffloadDecision",
    "OffloadPolicy",
    "Placement",
    "DeploymentManifest",
    "ManifestError",
    "build_stack",
    "load_manifest",
]
