"""MQTT-like pub/sub delivery between field endpoints and the edge.

Continuum deployments rarely speak request/response end to end: sensors
and cameras publish to a broker on the farm gateway, and edge services
subscribe.  This module models that hop with MQTT's delivery semantics:

* **QoS 0** (at most once) — fire and forget.  A message that loses a
  packet end-to-end is simply gone; the publisher never learns.
* **QoS 1** (at least once) — the broker expects a PUBACK.  A lost
  message is republished after ``retry_seconds`` (bounded by
  ``max_retries``); a delivered message whose *ack* is lost is also
  republished, which the subscriber sees as a **duplicate** — the
  at-least-once contract made visible.

Transfers ride any transport sharing the
:class:`~repro.continuum.network.NetworkLink` surface — including a
:class:`~repro.continuum.uplink.SharedUplink`, so broker traffic
contends with image uploads for the same bottleneck, and a
:class:`~repro.continuum.uplink.StoreAndForward` buffer, so publishes
during an outage arrive late rather than never (QoS 0 included: the
loss being modeled is packet loss on the wire, not gateway death).

Delivery outcomes are sampled from a seeded stream in event order, so
replays are deterministic.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np


def _base_link(transport):
    """The underlying NetworkLink behind any transport composition."""
    seen = set()
    obj = transport
    while not hasattr(obj, "loss_probability"):
        if id(obj) in seen:
            raise TypeError("transport does not wrap a NetworkLink")
        seen.add(id(obj))
        inner = getattr(obj, "link", None) or getattr(obj, "transport",
                                                      None)
        if inner is None:
            raise TypeError("transport does not wrap a NetworkLink")
        obj = inner
    return obj


class _Message:
    """One publish in flight (possibly across retries)."""

    __slots__ = ("topic", "payload_bytes", "qos", "trace", "span",
                 "delivered_once")

    def __init__(self, topic, payload_bytes, qos, trace, span):
        self.topic = topic
        self.payload_bytes = payload_bytes
        self.qos = qos
        self.trace = trace
        self.span = span
        self.delivered_once = False


class Broker:
    """Topic-based pub/sub with QoS 0/1 delivery over a lossy link.

    Parameters
    ----------
    sim:
        The shared simulator clock.
    transport:
        Anything with the link transport surface (``schedule_transfer``
        + pricing attributes); publishes travel as ``uplink`` legs.
    seed:
        Seed for the message-loss/ack-loss sample stream.
    registry:
        Optional metrics registry; wires
        ``broker_messages_total{qos, outcome}``.
    retry_seconds:
        QoS 1 republish timeout after a missing PUBACK.
    max_retries:
        Republish budget per QoS 1 message (after which an undelivered
        message counts as ``failed``).

    Subscribers are callables ``callback(topic, payload_bytes,
    duplicate)`` invoked at delivery time on the simulator clock.
    """

    def __init__(self, sim, transport, seed: int = 0, registry=None,
                 retry_seconds: float = 1.0, max_retries: int = 2):
        if retry_seconds <= 0:
            raise ValueError("retry timeout must be positive")
        if max_retries < 0:
            raise ValueError("retry budget must be >= 0")
        self.sim = sim
        self.transport = transport
        self.link = _base_link(transport)
        self.retry_seconds = retry_seconds
        self.max_retries = max_retries
        self._rng = np.random.default_rng(seed)
        self._subs: dict[str, list[Callable]] = {}
        self._c_messages = None
        self._handles: dict[tuple[int, str], object] = {}
        if registry is not None:
            self._c_messages = registry.counter(
                "broker_messages_total",
                "Broker publishes by QoS and delivery outcome.")
        #: Lifetime statistics (deterministic; the CLI prints them).
        self.published = 0
        self.delivered = 0
        self.dropped = 0
        self.duplicates = 0
        self.failed = 0
        self.retries = 0

    def _count(self, qos: int, outcome: str) -> None:
        if self._c_messages is not None:
            key = (qos, outcome)
            handle = self._handles.get(key)
            if handle is None:
                handle = self._handles[key] = self._c_messages.labels(
                    qos=str(qos), outcome=outcome)
            handle.inc()

    # ------------------------------------------------------------------
    def subscribe(self, topic: str,
                  callback: Callable[[str, float, bool], None]) -> None:
        """Register a delivery callback for one topic."""
        self._subs.setdefault(topic, []).append(callback)

    def message_loss_probability(self, payload_bytes: float) -> float:
        """End-to-end loss chance of one unacknowledged message.

        A message survives only if every one of its packets does:
        ``1 - (1 - p) ** packets``.
        """
        p = self.link.loss_probability
        if p == 0.0:
            return 0.0
        return 1.0 - (1.0 - p) ** self.link.packet_count(payload_bytes)

    def publish(self, topic: str, payload_bytes: float, qos: int = 0,
                trace=None) -> None:
        """Publish one message at the current virtual time."""
        if qos not in (0, 1):
            raise ValueError("QoS must be 0 or 1 (QoS 2 is not modeled)")
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        self.published += 1
        span = None
        if trace is not None:
            span = trace.begin("publish", self.sim.now,
                               category="network", topic=topic,
                               qos=qos, payload_bytes=payload_bytes)
        message = _Message(topic, payload_bytes, qos, trace, span)
        self._attempt(message, attempt=1)

    # ------------------------------------------------------------------
    def _attempt(self, message: _Message, attempt: int) -> None:
        self.transport.schedule_transfer(
            self.sim, message.payload_bytes,
            lambda: self._arrived(message, attempt),
            trace=message.trace, direction="uplink")

    def _arrived(self, message: _Message, attempt: int) -> None:
        lost = bool(self._rng.random()
                    < self.message_loss_probability(
                        message.payload_bytes))
        if lost:
            if message.qos == 0:
                self.dropped += 1
                self._finish(message, "dropped")
            elif attempt <= self.max_retries:
                self._retry(message, attempt)
            else:
                self.failed += 1
                self._finish(message, "failed")
            return
        duplicate = message.delivered_once
        message.delivered_once = True
        if duplicate:
            self.duplicates += 1
            self._count(message.qos, "duplicate")
        else:
            self.delivered += 1
        for callback in self._subs.get(message.topic, []):
            callback(message.topic, message.payload_bytes, duplicate)
        if message.qos == 1:
            # The single-packet PUBACK can itself be lost; the
            # publisher then re-sends and the subscriber sees a dupe.
            ack_lost = bool(self._rng.random()
                            < self.link.loss_probability)
            if ack_lost and attempt <= self.max_retries:
                self._retry(message, attempt)
                return
        self._finish(message, "delivered" if not duplicate
                     else None)

    def _retry(self, message: _Message, attempt: int) -> None:
        self.retries += 1
        if message.trace is not None:
            message.trace.instant(
                "publish_retry", self.sim.now, category="network",
                topic=message.topic, attempt=attempt + 1)
        self.sim.schedule(self.retry_seconds,
                          lambda: self._attempt(message, attempt + 1))

    def _finish(self, message: _Message, outcome: str | None) -> None:
        if outcome is not None:
            self._count(message.qos, outcome)
        if message.span is not None and message.span.end is None:
            if outcome is not None:
                message.span.args["outcome"] = outcome
            message.trace.end(message.span, self.sim.now)
            message.span = None
