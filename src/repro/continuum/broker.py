"""MQTT-like pub/sub delivery between field endpoints and the edge.

Continuum deployments rarely speak request/response end to end: sensors
and cameras publish to a broker on the farm gateway, and edge services
subscribe.  This module models that hop with MQTT's delivery semantics:

* **QoS 0** (at most once) — fire and forget.  A message that loses a
  packet end-to-end is simply gone; the publisher never learns.
* **QoS 1** (at least once) — the broker expects a PUBACK.  A lost
  message is republished after ``retry_seconds`` (bounded by
  ``max_retries``); a delivered message whose *ack* is lost is also
  republished, which the subscriber sees as a **duplicate** — the
  at-least-once contract made visible.

Transfers ride any transport sharing the
:class:`~repro.continuum.network.NetworkLink` surface — including a
:class:`~repro.continuum.uplink.SharedUplink`, so broker traffic
contends with image uploads for the same bottleneck, and a
:class:`~repro.continuum.uplink.StoreAndForward` buffer, so publishes
during an outage arrive late rather than never (QoS 0 included: the
loss being modeled is packet loss on the wire, not gateway death).

Delivery outcomes are sampled from a seeded stream in event order, so
replays are deterministic.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np


def _base_link(transport):
    """The underlying NetworkLink behind any transport composition."""
    seen = set()
    obj = transport
    while not hasattr(obj, "loss_probability"):
        if id(obj) in seen:
            raise TypeError("transport does not wrap a NetworkLink")
        seen.add(id(obj))
        inner = getattr(obj, "link", None) or getattr(obj, "transport",
                                                      None)
        if inner is None:
            raise TypeError("transport does not wrap a NetworkLink")
        obj = inner
    return obj


class Subscription:
    """One subscriber's endpoint on the broker: callback + queue.

    The broker fans every delivered message out to *all* subscriptions
    on the topic; each gets its own copy and its own accounting, so a
    slow irrigation planner cannot make the alerting service miss a
    frost warning.  With ``service_seconds == 0`` (the default) the
    callback runs synchronously at delivery time — exactly the
    pre-fan-out behavior, no extra simulator events.  A positive
    ``service_seconds`` models a subscriber that processes messages
    one at a time: deliveries enter a per-subscriber FIFO and the
    callback fires when processing *completes*; ``max_queue`` (0 =
    unbounded) bounds the *waiting* backlog — the message in service
    does not count against it — and overflow increments ``dropped``
    without ever touching other subscribers.

    QoS 1 duplicate visibility is per subscriber: every subscription
    sees the ``duplicate`` flag on every redelivered copy (counted in
    ``duplicates``), because deduplication is the *application's* job
    under at-least-once delivery.
    """

    __slots__ = ("broker", "topic", "callback", "name",
                 "service_seconds", "max_queue", "received",
                 "delivered", "duplicates", "dropped",
                 "max_queue_depth", "_queue", "_busy")

    def __init__(self, broker, topic: str, callback, name: str,
                 service_seconds: float = 0.0, max_queue: int = 0):
        if service_seconds < 0:
            raise ValueError("service time must be >= 0")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.broker = broker
        self.topic = topic
        self.callback = callback
        self.name = name
        self.service_seconds = service_seconds
        self.max_queue = max_queue
        #: Copies handed to this subscriber (before its queue).
        self.received = 0
        #: Callbacks actually completed.
        self.delivered = 0
        #: Copies flagged as QoS 1 redeliveries.
        self.duplicates = 0
        #: Copies lost to this subscriber's own full queue.
        self.dropped = 0
        #: High-water mark of the backlog.
        self.max_queue_depth = 0
        self._queue: list = []
        self._busy = False

    @property
    def queue_depth(self) -> int:
        """Messages waiting in this subscriber's backlog."""
        return len(self._queue)

    def _offer(self, topic: str, payload_bytes: float,
               duplicate: bool) -> None:
        self.received += 1
        if duplicate:
            self.duplicates += 1
        if self.service_seconds == 0.0:
            # Fast path == the pre-queue contract: synchronous
            # delivery, no simulator events, byte-identical replays.
            self.delivered += 1
            self.callback(topic, payload_bytes, duplicate)
            return
        if not self._busy:
            self._serve(topic, payload_bytes, duplicate)
            return
        if self.max_queue and len(self._queue) >= self.max_queue:
            self.dropped += 1
            return
        self._queue.append((topic, payload_bytes, duplicate))
        self.max_queue_depth = max(self.max_queue_depth,
                                   len(self._queue))

    def _serve(self, topic: str, payload_bytes: float,
               duplicate: bool) -> None:
        self._busy = True

        def done() -> None:
            self.delivered += 1
            self.callback(topic, payload_bytes, duplicate)
            if self._queue:
                self._serve(*self._queue.pop(0))
            else:
                self._busy = False

        self.broker.sim.schedule(self.service_seconds, done)


class _Message:
    """One publish in flight (possibly across retries)."""

    __slots__ = ("topic", "payload_bytes", "qos", "trace", "span",
                 "delivered_once")

    def __init__(self, topic, payload_bytes, qos, trace, span):
        self.topic = topic
        self.payload_bytes = payload_bytes
        self.qos = qos
        self.trace = trace
        self.span = span
        self.delivered_once = False


class Broker:
    """Topic-based pub/sub with QoS 0/1 delivery over a lossy link.

    Parameters
    ----------
    sim:
        The shared simulator clock.
    transport:
        Anything with the link transport surface (``schedule_transfer``
        + pricing attributes); publishes travel as ``uplink`` legs.
    seed:
        Seed for the message-loss/ack-loss sample stream.
    registry:
        Optional metrics registry; wires
        ``broker_messages_total{qos, outcome}``.
    retry_seconds:
        QoS 1 republish timeout after a missing PUBACK.
    max_retries:
        Republish budget per QoS 1 message (after which an undelivered
        message counts as ``failed``).

    Subscribers are callables ``callback(topic, payload_bytes,
    duplicate)``; :meth:`subscribe` wraps each in a
    :class:`Subscription` with its own delivery queue, and every
    subscription on a topic receives every delivered message (fan-out).
    """

    def __init__(self, sim, transport, seed: int = 0, registry=None,
                 retry_seconds: float = 1.0, max_retries: int = 2):
        if retry_seconds <= 0:
            raise ValueError("retry timeout must be positive")
        if max_retries < 0:
            raise ValueError("retry budget must be >= 0")
        self.sim = sim
        self.transport = transport
        self.link = _base_link(transport)
        self.retry_seconds = retry_seconds
        self.max_retries = max_retries
        self._rng = np.random.default_rng(seed)
        self._subs: dict[str, list[Subscription]] = {}
        self._c_messages = None
        self._handles: dict[tuple[int, str], object] = {}
        if registry is not None:
            self._c_messages = registry.counter(
                "broker_messages_total",
                "Broker publishes by QoS and delivery outcome.")
        #: Lifetime statistics (deterministic; the CLI prints them).
        self.published = 0
        self.delivered = 0
        self.dropped = 0
        self.duplicates = 0
        self.failed = 0
        self.retries = 0

    def _count(self, qos: int, outcome: str) -> None:
        if self._c_messages is not None:
            key = (qos, outcome)
            handle = self._handles.get(key)
            if handle is None:
                handle = self._handles[key] = self._c_messages.labels(
                    qos=str(qos), outcome=outcome)
            handle.inc()

    # ------------------------------------------------------------------
    def subscribe(self, topic: str,
                  callback: Callable[[str, float, bool], None],
                  name: str | None = None,
                  service_seconds: float = 0.0,
                  max_queue: int = 0) -> Subscription:
        """Register a subscriber for one topic.

        Returns the :class:`Subscription`, whose per-subscriber queue
        knobs and counters are documented there.  The defaults (no
        service time, unbounded queue) deliver synchronously — the
        original single-subscriber contract.
        """
        subs = self._subs.setdefault(topic, [])
        subscription = Subscription(
            self, topic, callback,
            name=name if name is not None
            else f"{topic}#{len(subs)}",
            service_seconds=service_seconds, max_queue=max_queue)
        subs.append(subscription)
        return subscription

    def subscriptions(self, topic: str) -> list[Subscription]:
        """All subscriptions on one topic, in subscribe order."""
        return list(self._subs.get(topic, []))

    def message_loss_probability(self, payload_bytes: float) -> float:
        """End-to-end loss chance of one unacknowledged message.

        A message survives only if every one of its packets does:
        ``1 - (1 - p) ** packets``.
        """
        p = self.link.loss_probability
        if p == 0.0:
            return 0.0
        return 1.0 - (1.0 - p) ** self.link.packet_count(payload_bytes)

    def publish(self, topic: str, payload_bytes: float, qos: int = 0,
                trace=None) -> None:
        """Publish one message at the current virtual time."""
        if qos not in (0, 1):
            raise ValueError("QoS must be 0 or 1 (QoS 2 is not modeled)")
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        self.published += 1
        span = None
        if trace is not None:
            span = trace.begin("publish", self.sim.now,
                               category="network", topic=topic,
                               qos=qos, payload_bytes=payload_bytes)
        message = _Message(topic, payload_bytes, qos, trace, span)
        self._attempt(message, attempt=1)

    # ------------------------------------------------------------------
    def _attempt(self, message: _Message, attempt: int) -> None:
        self.transport.schedule_transfer(
            self.sim, message.payload_bytes,
            lambda: self._arrived(message, attempt),
            trace=message.trace, direction="uplink")

    def _arrived(self, message: _Message, attempt: int) -> None:
        lost = bool(self._rng.random()
                    < self.message_loss_probability(
                        message.payload_bytes))
        if lost:
            if message.qos == 0:
                self.dropped += 1
                self._finish(message, "dropped")
            elif attempt <= self.max_retries:
                self._retry(message, attempt)
            else:
                self.failed += 1
                self._finish(message, "failed")
            return
        duplicate = message.delivered_once
        message.delivered_once = True
        if duplicate:
            self.duplicates += 1
            self._count(message.qos, "duplicate")
        else:
            self.delivered += 1
        for subscription in self._subs.get(message.topic, []):
            subscription._offer(message.topic, message.payload_bytes,
                                duplicate)
        if message.qos == 1:
            # The single-packet PUBACK can itself be lost; the
            # publisher then re-sends and the subscriber sees a dupe.
            ack_lost = bool(self._rng.random()
                            < self.link.loss_probability)
            if ack_lost and attempt <= self.max_retries:
                self._retry(message, attempt)
                return
        self._finish(message, "delivered" if not duplicate
                     else None)

    def _retry(self, message: _Message, attempt: int) -> None:
        self.retries += 1
        if message.trace is not None:
            message.trace.instant(
                "publish_retry", self.sim.now, category="network",
                topic=message.topic, attempt=attempt + 1)
        self.sim.schedule(self.retry_seconds,
                          lambda: self._attempt(message, attempt + 1))

    def _finish(self, message: _Message, outcome: str | None) -> None:
        if outcome is not None:
            self._count(message.qos, outcome)
        if message.span is not None and message.span.end is None:
            if outcome is not None:
                message.span.args["outcome"] = outcome
            message.trace.end(message.span, self.sim.now)
            message.span = None
