"""Network links between continuum tiers.

"This setup presents challenges for data transmission, especially when
transmitting large image data to the cloud.  It would be beneficial to
leverage advanced wireless capabilities" (Section 2.2.1).  A
:class:`NetworkLink` prices payload transfers; the presets cover the
deployment situations the paper discusses (field LTE uplink, farm Wi-Fi,
station Ethernet, on-device loopback) plus lossy variants of the
wireless legs.

Two pricing regimes coexist:

* **Expected-value** (:meth:`NetworkLink.transfer_seconds`) — the
  deterministic analytic cost, now including the expected retransmission
  expansion of a lossy link (each packet must be sent ``1 / (1 - p)``
  times on average).  Everything that *plans* — the offload policy, the
  capacity planner, the what-if previews — uses this regime, so plans
  stay reproducible without a RNG.
* **Sampled** (:meth:`NetworkLink.sample_transfer`,
  :meth:`NetworkLink.schedule_transfer` with an ``rng``) — per-transfer
  jitter and per-packet retransmission draws from a seeded generator,
  for the discrete-event replays where tail behaviour matters.  Same
  seed, same samples: replays stay byte-identical.

Congestion between co-located endpoints lives in
:class:`repro.continuum.uplink.SharedUplink`; pub/sub delivery in
:class:`repro.continuum.broker.Broker`.  Both compose over these links.
"""

from __future__ import annotations

import dataclasses
import math


class Transfer:
    """Handle for one in-flight :meth:`NetworkLink.schedule_transfer`.

    Wraps the scheduled arrival :class:`~repro.serving.events.Event`
    together with the ``network`` span opened for the leg.  Cancel an
    in-flight transfer through :meth:`cancel` — never through
    ``sim.cancel(transfer.event)`` directly — so the span is closed (or
    discarded) instead of leaking open into the trace export.
    """

    __slots__ = ("event", "span", "_trace", "_sim")

    def __init__(self, event, span, trace, sim):
        self.event = event
        self.span = span
        self._trace = trace
        self._sim = sim

    @property
    def cancelled(self) -> bool:
        """Whether the transfer was cancelled before arriving."""
        return self.event.cancelled

    @property
    def fired(self) -> bool:
        """Whether the arrival callback already ran."""
        return self.event.fired

    def cancel(self) -> None:
        """Cancel the pending arrival and close the leg's span.

        The span is stamped ``cancelled=True`` and ended at the current
        virtual time, so the trace records a truncated leg instead of an
        interval that never closes (drained instances and injected link
        faults cancel transfers mid-flight; the Chrome export must still
        validate).  No-op once the transfer arrived.
        """
        if self.event.fired:
            return
        self._sim.cancel(self.event)
        if self.span is not None and self.span.end is None:
            self.span.args["cancelled"] = True
            self._trace.end(self.span, self._sim.now)
            self.span = None


class LinkTelemetry:
    """Per-link Prometheus metrics, bound once and shared by transports.

    Registers ``link_bytes_total`` / ``link_retransmits_total`` counters
    and a ``link_queue_depth`` gauge on a
    :class:`~repro.serving.observability.MetricsRegistry`; the shared
    uplink and the store-and-forward buffer report through one of these
    so a scrape shows every leg of the continuum's network.
    """

    def __init__(self, registry, link_name: str):
        self.link_name = link_name
        self._bytes = registry.counter(
            "link_bytes_total",
            "Payload bytes carried per link and direction.")
        self._retransmits = registry.counter(
            "link_retransmits_total",
            "Packets retransmitted after loss, per link.")
        self._queue = registry.gauge(
            "link_queue_depth",
            "Transfers in flight (or buffered) per link component.")
        self._sent_handles: dict[str, object] = {}
        self._retx = self._retransmits.labels(link=link_name)
        self._depth_handles: dict[str, object] = {}

    def sent(self, payload_bytes: float, direction: str,
             retransmits: int = 0) -> None:
        """Record one completed transfer."""
        handle = self._sent_handles.get(direction)
        if handle is None:
            handle = self._sent_handles[direction] = self._bytes.labels(
                link=self.link_name, direction=direction)
        handle.inc(payload_bytes)
        if retransmits:
            self._retx.inc(retransmits)

    def queue_depth(self, depth: int, component: str = "uplink") -> None:
        """Publish the current in-flight/buffered transfer count."""
        handle = self._depth_handles.get(component)
        if handle is None:
            handle = self._depth_handles[component] = self._queue.labels(
                link=self.link_name, component=component)
        handle.set(float(depth))


@dataclasses.dataclass(frozen=True)
class NetworkLink:
    """A point-to-point link with bandwidth, RTT, jitter and loss."""

    name: str
    bandwidth_bps: float          # usable goodput, bits/second
    round_trip_seconds: float
    #: Multiplier on payload bytes for protocol framing.
    overhead_factor: float = 1.05
    #: Half-width of the uniform one-way delay jitter (seconds).  The
    #: sampled propagation delay is ``rtt/2 + U(-jitter, +jitter)``,
    #: floored at zero; the expected-value path ignores it (zero mean).
    jitter_seconds: float = 0.0
    #: Per-packet loss probability.  Lost packets are retransmitted
    #: (reliable delivery), so loss shows up as time, not drops:
    #: expected transmissions per packet are ``1 / (1 - p)``.
    loss_probability: float = 0.0
    #: Packetization unit for loss/retransmission accounting.
    mtu_bytes: float = 1500.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.round_trip_seconds < 0:
            raise ValueError("RTT must be non-negative")
        if self.overhead_factor < 1.0:
            raise ValueError("overhead factor must be >= 1")
        if self.jitter_seconds < 0:
            raise ValueError("jitter must be non-negative")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss probability must lie in [0, 1)")
        if self.mtu_bytes <= 0:
            raise ValueError("MTU must be positive")

    # -- expected-value pricing ----------------------------------------
    @property
    def retransmit_expansion(self) -> float:
        """Expected transmissions per packet: ``1 / (1 - loss)``."""
        return 1.0 / (1.0 - self.loss_probability)

    def packet_count(self, payload_bytes: float) -> int:
        """Packets (MTU units) one payload occupies on the wire."""
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        wire = payload_bytes * self.overhead_factor
        return max(1, math.ceil(wire / self.mtu_bytes))

    def serialization_seconds(self, payload_bytes: float) -> float:
        """Expected time on the wire (loss-expanded, no propagation)."""
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        return (payload_bytes * self.overhead_factor * 8.0
                * self.retransmit_expansion / self.bandwidth_bps)

    def transfer_seconds(self, payload_bytes: float) -> float:
        """Expected one-way transfer time (half-RTT + serialization)."""
        return (self.round_trip_seconds / 2.0
                + self.serialization_seconds(payload_bytes))

    def request_response_seconds(self, upload_bytes: float,
                                 download_bytes: float = 1024.0) -> float:
        """Full round trip: upload payload, download a (small) result."""
        return (self.transfer_seconds(upload_bytes)
                + self.transfer_seconds(download_bytes))

    # -- sampled pricing -----------------------------------------------
    def sample_retransmits(self, payload_bytes: float, rng) -> int:
        """Draw the retransmission count for one payload.

        Each of the payload's packets needs a geometric number of
        transmissions at success probability ``1 - loss``; the excess
        over one per packet is the retransmit count.  Lossless links
        consume no randomness (the draw is identically zero), so
        attaching a RNG to a clean link keeps streams untouched.
        """
        if self.loss_probability == 0.0:
            return 0
        packets = self.packet_count(payload_bytes)
        draws = rng.geometric(1.0 - self.loss_probability, size=packets)
        return int(draws.sum()) - packets

    def sample_jitter(self, rng) -> float:
        """Draw the one-way propagation jitter (may be negative)."""
        if self.jitter_seconds == 0.0:
            return 0.0
        return float(rng.uniform(-self.jitter_seconds,
                                 self.jitter_seconds))

    def sample_transfer(self, payload_bytes: float, rng):
        """One sampled transfer: ``(duration, retransmits, jitter)``.

        Duration = max(0, half-RTT + jitter) + serialization inflated by
        the sampled retransmits.  Deterministic for a given generator
        state — the determinism tests replay the stream and compare.
        """
        retransmits = self.sample_retransmits(payload_bytes, rng)
        jitter = self.sample_jitter(rng)
        packets = self.packet_count(payload_bytes)
        wire_bits = payload_bytes * self.overhead_factor * 8.0
        serialization = (wire_bits * (packets + retransmits) / packets
                         / self.bandwidth_bps)
        propagation = max(0.0, self.round_trip_seconds / 2.0 + jitter)
        return propagation + serialization, retransmits, jitter

    # -- scheduling ----------------------------------------------------
    def schedule_transfer(self, sim, payload_bytes: float, on_complete,
                          trace=None, direction: str = "uplink",
                          rng=None, telemetry: LinkTelemetry | None = None,
                          ) -> Transfer:
        """Put one transfer on the simulator clock.

        Schedules ``on_complete`` at ``now + duration`` — the expected
        duration without a ``rng``, a sampled one (jitter + per-packet
        retransmission draws) with one — and, when a
        :class:`~repro.serving.tracectx.TraceContext` is passed, records
        the leg as a named ``network`` span (``direction`` is the span
        name: ``uplink`` or ``downlink``).  Returns a :class:`Transfer`
        handle; cancel through it (not ``sim.cancel``) so the span is
        closed instead of leaking open.
        """
        retransmits = 0
        if rng is None:
            duration = self.transfer_seconds(payload_bytes)
        else:
            duration, retransmits, _ = self.sample_transfer(
                payload_bytes, rng)
        span = None
        if trace is not None:
            span = trace.begin(direction, sim.now, category="network",
                               link=self.name,
                               payload_bytes=payload_bytes)
            if retransmits:
                span.args["retransmits"] = retransmits

        def arrive() -> None:
            if span is not None:
                trace.end(span, sim.now)
            if telemetry is not None:
                telemetry.sent(payload_bytes, direction,
                               retransmits=retransmits)
            on_complete()

        event = sim.schedule(duration, arrive)
        return Transfer(event, span, trace, sim)

    def sustainable_images_per_second(self, image_bytes: float) -> float:
        """Upload-rate ceiling for a stream of same-sized images."""
        if image_bytes <= 0:
            raise ValueError("image size must be positive")
        return self.bandwidth_bps / (image_bytes * self.overhead_factor
                                     * 8.0 * self.retransmit_expansion)


LINKS: dict[str, NetworkLink] = {}


def register_link(link: NetworkLink, replace: bool = False) -> NetworkLink:
    """Register a preset under its lowercased name.

    Keys are normalized at registration so :func:`get_link`'s
    case-insensitive lookup can actually reach every preset (an
    uppercase ``link.name`` used to be stored verbatim and become
    unreachable).  Duplicate names are rejected unless ``replace=True``.
    """
    key = link.name.lower()
    if not replace and key in LINKS:
        raise ValueError(f"link {link.name!r} already registered")
    LINKS[key] = link
    return link


for _link in (
    # Rural LTE uplink from a field deployment.
    NetworkLink("field_lte", bandwidth_bps=10e6,
                round_trip_seconds=0.060),
    # The same LTE leg as measured in the field: delay spread from
    # cell-load variation and ~1% packet loss at the coverage fringe.
    NetworkLink("field_lte_lossy", bandwidth_bps=10e6,
                round_trip_seconds=0.060, jitter_seconds=0.015,
                loss_probability=0.01),
    # Farm-building Wi-Fi backhaul.
    NetworkLink("farm_wifi", bandwidth_bps=80e6,
                round_trip_seconds=0.010),
    # Farm Wi-Fi with interference (machinery, distance to the AP).
    NetworkLink("farm_wifi_lossy", bandwidth_bps=80e6,
                round_trip_seconds=0.010, jitter_seconds=0.004,
                loss_probability=0.005),
    # Research-station wired uplink to the cluster.
    NetworkLink("station_ethernet", bandwidth_bps=1e9,
                round_trip_seconds=0.002),
    # On-device (camera directly attached to the Jetson).
    NetworkLink("local", bandwidth_bps=40e9,
                round_trip_seconds=0.0, overhead_factor=1.0),
):
    register_link(_link)
del _link


def get_link(name: str) -> NetworkLink:
    """Look up a preset link by name (case-insensitive)."""
    try:
        return LINKS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown link {name!r}; available: {sorted(LINKS)}") from None
