"""Network links between continuum tiers.

"This setup presents challenges for data transmission, especially when
transmitting large image data to the cloud.  It would be beneficial to
leverage advanced wireless capabilities" (Section 2.2.1).  A
:class:`NetworkLink` prices payload transfers; the presets cover the
deployment situations the paper discusses (field LTE uplink, farm Wi-Fi,
station Ethernet, on-device loopback).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class NetworkLink:
    """A point-to-point link with bandwidth, RTT and loss overhead."""

    name: str
    bandwidth_bps: float          # usable goodput, bits/second
    round_trip_seconds: float
    #: Multiplier on payload bytes for protocol framing/retransmission.
    overhead_factor: float = 1.05

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.round_trip_seconds < 0:
            raise ValueError("RTT must be non-negative")
        if self.overhead_factor < 1.0:
            raise ValueError("overhead factor must be >= 1")

    def transfer_seconds(self, payload_bytes: float) -> float:
        """One-way transfer time of a payload (half-RTT + serialization)."""
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        serialization = (payload_bytes * self.overhead_factor * 8.0
                         / self.bandwidth_bps)
        return self.round_trip_seconds / 2.0 + serialization

    def request_response_seconds(self, upload_bytes: float,
                                 download_bytes: float = 1024.0) -> float:
        """Full round trip: upload payload, download a (small) result."""
        return (self.transfer_seconds(upload_bytes)
                + self.transfer_seconds(download_bytes))

    def schedule_transfer(self, sim, payload_bytes: float, on_complete,
                          trace=None, direction: str = "uplink"):
        """Put one transfer on the simulator clock.

        Schedules ``on_complete`` at ``now + transfer_seconds(payload)``
        and — when a :class:`~repro.serving.tracectx.TraceContext` is
        passed — records the leg as a named span (``direction`` is the
        span name: ``uplink`` or ``downlink``), so network time shows up
        in the critical-path analysis next to queueing and inference.
        Returns the scheduled :class:`~repro.serving.events.Event`.
        """
        duration = self.transfer_seconds(payload_bytes)
        span = None
        if trace is not None:
            span = trace.begin(direction, sim.now, category="network",
                               link=self.name,
                               payload_bytes=payload_bytes)

        def arrive() -> None:
            if span is not None:
                trace.end(span, sim.now)
            on_complete()

        return sim.schedule(duration, arrive)

    def sustainable_images_per_second(self, image_bytes: float) -> float:
        """Upload-rate ceiling for a stream of same-sized images."""
        if image_bytes <= 0:
            raise ValueError("image size must be positive")
        return self.bandwidth_bps / (image_bytes * self.overhead_factor
                                     * 8.0)


LINKS: dict[str, NetworkLink] = {
    link.name: link
    for link in (
        # Rural LTE uplink from a field deployment.
        NetworkLink("field_lte", bandwidth_bps=10e6,
                    round_trip_seconds=0.060),
        # Farm-building Wi-Fi backhaul.
        NetworkLink("farm_wifi", bandwidth_bps=80e6,
                    round_trip_seconds=0.010),
        # Research-station wired uplink to the cluster.
        NetworkLink("station_ethernet", bandwidth_bps=1e9,
                    round_trip_seconds=0.002),
        # On-device (camera directly attached to the Jetson).
        NetworkLink("local", bandwidth_bps=40e9,
                    round_trip_seconds=0.0, overhead_factor=1.0),
    )
}


def get_link(name: str) -> NetworkLink:
    """Look up a preset link by name."""
    try:
        return LINKS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown link {name!r}; available: {sorted(LINKS)}") from None
