"""Deployment manifests: declarative serving-stack configuration.

HARVEST targets operators, not systems programmers; a deployment should
be a reviewable document, not code.  A manifest is a JSON-able dict::

    {
      "name": "station-a100",
      "platform": "a100",
      "scenario": "online",
      "models": [
        {"model": "vit_small", "dataset": "plant_village",
         "max_batch_size": 64, "max_queue_delay_ms": 3.0,
         "instances": 2, "gpu_preprocessing": true}
      ]
    }

:func:`load_manifest` validates it against the registries (platform,
models, datasets, scenario constraints, memory feasibility) and
:func:`build_stack` materializes a ready-to-run
:class:`~repro.serving.server.TritonLikeServer` with preprocessing and
engine backends wired per entry.
"""

from __future__ import annotations

import dataclasses
import json

from repro.continuum.scenarios import (
    OfflineScenario,
    OnlineScenario,
    RealTimeScenario,
    ScenarioSpec,
)
from repro.data.datasets import get_dataset
from repro.engine.latency import LatencyModel
from repro.engine.oom import EngineMemoryModel
from repro.hardware.platform import get_platform
from repro.models.zoo import get_model
from repro.preprocessing.frameworks import DALI, DALIWarp, PyTorchCPU
from repro.serving.batcher import BatcherConfig
from repro.serving.server import ModelConfig, TritonLikeServer


class ManifestError(ValueError):
    """Raised for invalid deployment manifests."""


_SCENARIOS = {
    "online": OnlineScenario,
    "offline": OfflineScenario,
    "real-time": RealTimeScenario,
}


@dataclasses.dataclass(frozen=True)
class ModelEntryConfig:
    """One validated manifest model entry."""

    model: str
    dataset: str
    max_batch_size: int
    max_queue_delay: float
    instances: int
    gpu_preprocessing: bool


@dataclasses.dataclass(frozen=True)
class DeploymentManifest:
    """A fully validated deployment description."""

    name: str
    platform_name: str
    scenario: ScenarioSpec
    entries: tuple[ModelEntryConfig, ...]


def _require(doc: dict, key: str):
    if key not in doc:
        raise ManifestError(f"manifest missing required key {key!r}")
    return doc[key]


def load_manifest(doc: "dict | str") -> DeploymentManifest:
    """Validate a manifest dict (or JSON string)."""
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except json.JSONDecodeError as exc:
            raise ManifestError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ManifestError("manifest must be a JSON object")

    name = _require(doc, "name")
    platform = get_platform(_require(doc, "platform"))
    scenario_name = _require(doc, "scenario")
    if scenario_name not in _SCENARIOS:
        raise ManifestError(
            f"unknown scenario {scenario_name!r}; one of "
            f"{sorted(_SCENARIOS)}")
    scenario = _SCENARIOS[scenario_name]()
    try:
        scenario.validate_platform(platform)
    except ValueError as exc:
        raise ManifestError(str(exc)) from exc

    raw_entries = _require(doc, "models")
    if not raw_entries:
        raise ManifestError("manifest deploys no models")
    entries = []
    for raw in raw_entries:
        model = get_model(_require(raw, "model"))
        dataset = get_dataset(_require(raw, "dataset"))
        batch = raw.get("max_batch_size", 64)
        entry = ModelEntryConfig(
            model=model.name,
            dataset=dataset.name,
            max_batch_size=batch,
            max_queue_delay=raw.get("max_queue_delay_ms", 5.0) / 1e3,
            instances=raw.get("instances", 1),
            gpu_preprocessing=raw.get("gpu_preprocessing", True),
        )
        if entry.instances < 1 or entry.max_batch_size < 1:
            raise ManifestError(
                f"{model.name}: instances and batch must be >= 1")
        if dataset.dataset_specific_preprocessing and \
                not entry.gpu_preprocessing:
            # CPU CRSA preprocessing is the documented non-real-time
            # path; allow it but not silently.
            if isinstance(scenario, RealTimeScenario):
                raise ManifestError(
                    f"{dataset.name} with CPU preprocessing cannot meet "
                    "the real-time scenario (Section 4.2)")
        entries.append(entry)

    manifest = DeploymentManifest(name, platform.name, scenario,
                                  tuple(entries))
    _check_memory(manifest)
    return manifest


def _check_memory(manifest: DeploymentManifest) -> None:
    """Engines declared in the manifest must fit the device together."""
    platform = get_platform(manifest.platform_name)
    total = 0.0
    for entry in manifest.entries:
        graph = get_model(entry.model).graph
        memory = EngineMemoryModel(graph, platform)
        total += entry.instances * memory.engine_bytes(
            entry.max_batch_size)
    if total > platform.usable_gpu_memory_bytes:
        raise ManifestError(
            f"manifest needs {total / 1e9:.1f} GB of engine memory; "
            f"{platform.name} has "
            f"{platform.usable_gpu_memory_bytes / 1e9:.1f} GB usable")


def build_stack(manifest: DeploymentManifest,
                sim=None) -> TritonLikeServer:
    """Materialize the serving stack a manifest describes.

    Each entry gets a preprocessing backend (``pre_<model>``) and an
    engine backend wired as an ensemble of two stages, with service
    times from the calibrated models.
    """
    platform = get_platform(manifest.platform_name)
    server = TritonLikeServer(sim)
    for entry in manifest.entries:
        model_entry = get_model(entry.model)
        graph = model_entry.graph
        dataset = get_dataset(entry.dataset)
        input_size = graph.input_shape[1]
        if dataset.dataset_specific_preprocessing:
            framework = (DALIWarp(input_size) if entry.gpu_preprocessing
                         else PyTorchCPU(input_size))
        else:
            framework = (DALI(input_size) if entry.gpu_preprocessing
                         else PyTorchCPU(input_size))
        estimate = framework.estimate(dataset, platform,
                                      batch_size=entry.max_batch_size)
        per_image = estimate.per_image_seconds
        latency = LatencyModel(graph, platform)

        pre_name = f"pre_{entry.model}"
        server.register(ModelConfig(
            pre_name,
            service_time=lambda n, t=per_image: t * max(1, n),
            batcher=BatcherConfig(
                max_batch_size=entry.max_batch_size,
                max_queue_delay=entry.max_queue_delay),
        ))
        server.register(ModelConfig(
            entry.model,
            service_time=lambda n, m=latency: m.latency(max(1, n)),
            batcher=BatcherConfig(
                max_batch_size=entry.max_batch_size,
                max_queue_delay=entry.max_queue_delay),
            instances=entry.instances,
            preprocess_model=pre_name,
        ))
    return server
