"""Orthomosaic stitching and tiling for the offline drone workflow.

Fig. 3a: "drone images are first stitched using OpenDroneMap, followed by
tiling and offline processing via the HARVEST inference pipeline,
ultimately generating fine-grained heatmaps".  This module provides a
real (if simplified) version of that front end:

* :func:`plan_survey` — lays out an overlapping flight grid over a field;
* :func:`stitch_mosaic` — feather-blends overlapping captures onto a
  canvas at their known offsets (translation-only orthomosaic — drone
  surveys fly nadir at fixed altitude, so translation is the dominant
  alignment term);
* :func:`tile_mosaic` — cuts the mosaic into model-input tiles;
* :class:`StitchCostModel` — prices full-scale ODM runs (which are hours
  of CPU the offline scenario budgets for).
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class TilePlacement:
    """One capture placed on the mosaic canvas."""

    image: np.ndarray  # (H, W, C)
    x: int             # left edge on the canvas
    y: int             # top edge on the canvas

    def __post_init__(self) -> None:
        if self.image.ndim != 3:
            raise ValueError("placement image must be (H, W, C)")
        if self.x < 0 or self.y < 0:
            raise ValueError("placements must be on-canvas (x, y >= 0)")


def plan_survey(field_w: int, field_h: int, capture_w: int, capture_h: int,
                overlap: float = 0.3) -> list[tuple[int, int]]:
    """Grid of capture origins covering a field with the given overlap.

    Drone surveys fly with 60-80% forward/side overlap in practice; the
    default is conservative so tests stay small.  The last row/column is
    clamped to the field edge so coverage is complete.
    """
    if not 0.0 <= overlap < 1.0:
        raise ValueError("overlap must be in [0, 1)")
    if capture_w > field_w or capture_h > field_h:
        raise ValueError("capture larger than the field")
    step_x = max(1, int(capture_w * (1.0 - overlap)))
    step_y = max(1, int(capture_h * (1.0 - overlap)))
    xs = list(range(0, max(field_w - capture_w, 0) + 1, step_x))
    ys = list(range(0, max(field_h - capture_h, 0) + 1, step_y))
    if xs[-1] != field_w - capture_w:
        xs.append(field_w - capture_w)
    if ys[-1] != field_h - capture_h:
        ys.append(field_h - capture_h)
    return [(x, y) for y in ys for x in xs]


def stitch_mosaic(placements: list[TilePlacement],
                  canvas_w: int, canvas_h: int) -> np.ndarray:
    """Feather-blend placements onto a canvas; returns (H, W, C) uint8.

    Each capture contributes with a weight that tapers toward its edges
    (triangular feathering), so overlapping seams blend smoothly instead
    of leaving hard steps.
    """
    if not placements:
        raise ValueError("need at least one placement")
    channels = placements[0].image.shape[2]
    acc = np.zeros((canvas_h, canvas_w, channels), dtype=np.float64)
    weight = np.zeros((canvas_h, canvas_w, 1), dtype=np.float64)
    for placement in placements:
        img = placement.image.astype(np.float64)
        h, w = img.shape[:2]
        if placement.y + h > canvas_h or placement.x + w > canvas_w:
            raise ValueError(
                f"placement at ({placement.x}, {placement.y}) of size "
                f"{w}x{h} falls off the {canvas_w}x{canvas_h} canvas")
        wy = 1.0 - np.abs(np.linspace(-1, 1, h))[:, None]
        wx = 1.0 - np.abs(np.linspace(-1, 1, w))[None, :]
        fw = np.maximum(wy * wx, 1e-4)[..., None]
        ys = slice(placement.y, placement.y + h)
        xs = slice(placement.x, placement.x + w)
        acc[ys, xs] += img * fw
        weight[ys, xs] += fw
    covered = weight[..., 0] > 0
    out = np.zeros_like(acc)
    out[covered] = acc[covered] / weight[covered]
    return np.clip(np.rint(out), 0, 255).astype(np.uint8)


def tile_mosaic(mosaic: np.ndarray, tile_size: int,
                drop_partial: bool = False) -> list[tuple[int, int, np.ndarray]]:
    """Cut a mosaic into (x, y, tile) model inputs.

    Edge tiles are padded to the full tile size unless ``drop_partial``.
    """
    if mosaic.ndim != 3:
        raise ValueError("mosaic must be (H, W, C)")
    if tile_size < 1:
        raise ValueError("tile_size must be positive")
    h, w = mosaic.shape[:2]
    tiles = []
    for y in range(0, h, tile_size):
        for x in range(0, w, tile_size):
            tile = mosaic[y:y + tile_size, x:x + tile_size]
            th, tw = tile.shape[:2]
            if (th, tw) != (tile_size, tile_size):
                if drop_partial:
                    continue
                padded = np.zeros((tile_size, tile_size, mosaic.shape[2]),
                                  dtype=mosaic.dtype)
                padded[:th, :tw] = tile
                tile = padded
            tiles.append((x, y, tile))
    return tiles


@dataclasses.dataclass(frozen=True)
class StitchCostModel:
    """Prices a full-resolution ODM-style stitch on CPU.

    OpenDroneMap runs feature extraction + matching + blending; observed
    full-pipeline rates are on the order of single-digit megapixels per
    second per core.  The offline scenario uses this to budget the
    stitching stage ahead of inference.
    """

    pixels_per_second_per_core: float = 3e6
    fixed_overhead_seconds: float = 30.0

    def stitch_seconds(self, total_capture_pixels: float,
                       cpu_cores: int) -> float:
        """Wall time to stitch the given capture pixels on N cores."""
        if total_capture_pixels < 0:
            raise ValueError("pixel count must be non-negative")
        if cpu_cores < 1:
            raise ValueError("need at least one core")
        rate = self.pixels_per_second_per_core * cpu_cores
        return self.fixed_overhead_seconds + total_capture_pixels / rate
