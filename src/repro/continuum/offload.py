"""Edge-cloud offload decisions.

Section 2.2: "A single training process enables deployment on both edge
and cloud systems — inference can run in the cloud with high throughput
after unified preprocessing, or be performed on edge devices in the
field for low-latency results supporting real-time decisions."

When a vehicle carries an edge device *and* a link to the cluster, every
frame poses a decision: classify locally (slow device, zero transfer) or
upload (fast device, pay the link).  :class:`OffloadPolicy` prices both
paths with the calibrated models and picks per request;
:func:`crossover_image_bytes` solves for the payload size where the
decision flips — the continuum's operating boundary.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.continuum.network import NetworkLink
from repro.engine.latency import LatencyModel
from repro.hardware.platform import PlatformSpec
from repro.models.graph import ModelGraph


#: Relative tolerance for the edge/cloud tie at the crossover payload:
#: the solved boundary re-priced through float arithmetic lands within a
#: few ULPs of exact equality, and the tie must resolve consistently.
_TIE_REL_TOL = 1e-9


class Placement(str, enum.Enum):
    """Which continuum tier serves a request."""

    EDGE = "edge"
    CLOUD = "cloud"


@dataclasses.dataclass(frozen=True)
class OffloadDecision:
    """The priced decision for one request."""

    placement: Placement
    edge_latency_seconds: float
    cloud_latency_seconds: float      # upload + compute + result download
    payload_bytes: float

    @property
    def chosen_latency_seconds(self) -> float:
        """Latency of the selected placement."""
        return (self.edge_latency_seconds
                if self.placement is Placement.EDGE
                else self.cloud_latency_seconds)

    @property
    def margin_seconds(self) -> float:
        """How much the chosen path wins by (>= 0)."""
        return abs(self.edge_latency_seconds
                   - self.cloud_latency_seconds)


class OffloadPolicy:
    """Latency-optimal per-request placement.

    Parameters
    ----------
    graph:
        The deployed model (same checkpoint both sides — the paper's
        single-training-process premise).
    edge / cloud:
        The two platforms.
    link:
        The uplink between them — a :class:`NetworkLink` or anything
        sharing its pricing surface, e.g. a
        :class:`~repro.continuum.uplink.SharedUplink` (in which case
        the cloud path is priced *under the uplink's current
        contention*, so decisions shift toward the edge while the
        shared bottleneck is busy).
    edge_batch / cloud_batch:
        Operating batch sizes per side (the edge typically runs small
        batches for latency; the cloud batches aggressively).
    result_bytes:
        Response payload (classification results are tiny).
    """

    def __init__(self, graph: ModelGraph, edge: PlatformSpec,
                 cloud: PlatformSpec, link: NetworkLink,
                 edge_batch: int = 1, cloud_batch: int = 16,
                 result_bytes: float = 512.0):
        if edge_batch < 1 or cloud_batch < 1:
            raise ValueError("batch sizes must be >= 1")
        self.graph = graph
        self.link = link
        self.edge_model = LatencyModel(graph, edge)
        self.cloud_model = LatencyModel(graph, cloud)
        self.edge_batch = edge_batch
        self.cloud_batch = cloud_batch
        self.result_bytes = result_bytes

    # ------------------------------------------------------------------
    def edge_latency(self) -> float:
        """On-device request latency at the edge batch."""
        return self.edge_model.latency(self.edge_batch)

    def cloud_latency(self, payload_bytes: float) -> float:
        """Round-trip latency through the cluster."""
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        transfer = self.link.transfer_seconds(payload_bytes) + \
            self.link.transfer_seconds(self.result_bytes)
        return transfer + self.cloud_model.latency(self.cloud_batch)

    def decide(self, payload_bytes: float,
               trace=None, now: float = 0.0) -> OffloadDecision:
        """Pick the lower-latency path for one request.

        With a :class:`~repro.serving.tracectx.TraceContext` passed, the
        decision is recorded as an instant ``offload_decision`` event
        (stamped at virtual time ``now``) carrying both priced paths —
        the trace shows *why* a request stayed on the edge or paid the
        uplink.

        Ties break toward the cloud: :meth:`crossover_image_bytes`
        documents the crossover as the largest payload at which
        uploading still wins, so ``decide(crossover_image_bytes())``
        must offload.  Equality is judged with a relative tolerance —
        the crossover payload re-priced through float arithmetic lands
        ULPs away from an exact tie, and the boundary decision must not
        flip on rounding noise.
        """
        edge = self.edge_latency()
        cloud = self.cloud_latency(payload_bytes)
        tie = abs(edge - cloud) <= _TIE_REL_TOL * max(edge, cloud)
        placement = (Placement.CLOUD if tie or cloud < edge
                     else Placement.EDGE)
        if trace is not None:
            trace.instant("offload_decision", now, category="continuum",
                          placement=placement.value,
                          edge_seconds=edge, cloud_seconds=cloud,
                          payload_bytes=payload_bytes)
        return OffloadDecision(placement, edge, cloud, payload_bytes)

    # ------------------------------------------------------------------
    def crossover_image_bytes(self) -> float | None:
        """Payload size where edge and cloud latencies are equal.

        The largest payload at which uploading still wins: at or below
        it the request uploads (``decide`` places it on the cloud);
        strictly above it, the edge wins.  Returns None when one side
        dominates at every size (e.g. the cloud is slower even for a
        zero-byte payload).
        """
        edge = self.edge_latency()
        base = self.cloud_latency(0.0)
        if base >= edge:
            return None  # cloud never wins
        # Transfer cost grows linearly in payload bytes; derive the
        # slope from the pricing function itself so loss-retransmit
        # expansion and shared-uplink contention are priced exactly as
        # decide() will price them, then solve base + k * bytes = edge.
        probe = 1e6
        per_byte = (self.cloud_latency(probe) - base) / probe
        return (edge - base) / per_byte

    def sustainable_offload_rate(self, payload_bytes: float) -> float:
        """Uplink ceiling in requests/second at this payload size."""
        if payload_bytes <= 0:
            raise ValueError("payload must be positive")
        return self.link.sustainable_images_per_second(payload_bytes)
