"""Shared-bottleneck congestion and store-and-forward buffering.

Section 2.2.1's transmission bottleneck is not a private pipe per
camera: every endpoint on a field site funnels through the same LTE
modem or farm AP.  :class:`SharedUplink` models that bottleneck as a
fair-share (processor-sharing) queue integrated event-by-event on the
simulator clock — ``n`` concurrent transfers each progress at
``bandwidth / n``, and every start or finish re-integrates the
remaining work, so in-flight transfers visibly slow each other down and
the uplink spans in the trace widen under contention.

:class:`StoreAndForward` wraps any transport with a byte-bounded buffer
wired to a :class:`~repro.serving.faults.LinkOutageModel`: while the
link is down, submitted transfers queue instead of dropping, and the
backlog drains in FIFO order on restore — rural connectivity outages
degrade to *delayed* delivery, which is what a field gateway actually
does.

Both classes expose the same duck-typed transport surface as
:class:`~repro.continuum.network.NetworkLink` (``schedule_transfer``,
``transfer_seconds``, the pricing attributes), so the continuum
replayer, the offload policy, and the broker compose over a bare link,
a contended uplink, or a buffered contended uplink interchangeably.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.continuum.network import LinkTelemetry, NetworkLink

#: Residual-work epsilon: flows within half a bit of done are done
#: (float round-off from the advance/reschedule arithmetic is orders of
#: magnitude below one bit for any realistic payload).
_BITS_EPS = 0.5


class _Flow:
    """One transfer's residual serialization work inside the bottleneck."""

    __slots__ = ("seq", "bits_left", "payload_bytes", "retransmits",
                 "jitter", "on_complete", "trace", "span", "direction",
                 "state")

    # state values
    SERIALIZING, PROPAGATING, DELIVERED, CANCELLED = range(4)

    def __init__(self, seq, bits_left, payload_bytes, retransmits,
                 jitter, on_complete, trace, span, direction):
        self.seq = seq
        self.bits_left = bits_left
        self.payload_bytes = payload_bytes
        self.retransmits = retransmits
        self.jitter = jitter
        self.on_complete = on_complete
        self.trace = trace
        self.span = span
        self.direction = direction
        self.state = _Flow.SERIALIZING


class UplinkTransfer:
    """Cancel/inspect handle for a transfer inside a shared uplink."""

    __slots__ = ("_uplink", "_flow", "_delivery")

    def __init__(self, uplink, flow):
        self._uplink = uplink
        self._flow = flow
        self._delivery = None  # propagation-phase Event

    @property
    def cancelled(self) -> bool:
        """Whether the transfer was cancelled before delivery."""
        return self._flow.state == _Flow.CANCELLED

    @property
    def fired(self) -> bool:
        """Whether the payload was delivered."""
        return self._flow.state == _Flow.DELIVERED

    def cancel(self) -> None:
        """Abort the transfer and close its span (never leaks it open)."""
        self._uplink._cancel(self._flow, self._delivery)


class SharedUplink:
    """A fair-share bottleneck multiplexing co-located endpoints.

    Parameters
    ----------
    link:
        The underlying :class:`~repro.continuum.network.NetworkLink`
        whose bandwidth/RTT/jitter/loss parameters the bottleneck
        enforces.
    sim:
        The shared :class:`~repro.serving.events.Simulator`.
    seed:
        Seed for the jitter/retransmission sample stream.  Draws happen
        in submission order, so identical replays consume identical
        samples.
    registry:
        Optional metrics registry; wires ``link_bytes_total``,
        ``link_retransmits_total`` and ``link_queue_depth``.

    Only ``direction="uplink"`` transfers contend — the uplink is the
    asymmetric leg the paper worries about; downlink results are small
    and ride the underlying link directly (still sampled, still
    traced).
    """

    def __init__(self, link: NetworkLink, sim, seed: int = 0,
                 registry=None):
        self.link = link
        self.sim = sim
        self._rng = np.random.default_rng(seed)
        self.telemetry = (LinkTelemetry(registry, link.name)
                          if registry is not None else None)
        self._flows: list[_Flow] = []
        self._last = sim.now
        self._completion = None
        self._next_seq = 0
        #: seq -> live handle, for stashing the propagation-phase event.
        self._handles: dict[int, UplinkTransfer] = {}
        #: Lifetime statistics (deterministic, reported by the CLI).
        self.completed = 0
        self.total_retransmits = 0
        self.peak_concurrency = 0

    # -- pricing surface (duck-typed NetworkLink) ----------------------
    @property
    def name(self) -> str:
        """The underlying link's name (spans and metrics share it)."""
        return self.link.name

    @property
    def bandwidth_bps(self) -> float:
        """The bottleneck's total bandwidth (shared, not per-flow)."""
        return self.link.bandwidth_bps

    @property
    def round_trip_seconds(self) -> float:
        """The underlying link's RTT."""
        return self.link.round_trip_seconds

    @property
    def overhead_factor(self) -> float:
        """The underlying link's framing overhead multiplier."""
        return self.link.overhead_factor

    @property
    def current_concurrency(self) -> int:
        """Transfers currently serializing through the bottleneck."""
        return len(self._flows)

    def transfer_seconds(self, payload_bytes: float) -> float:
        """Expected one-way time *under the current contention*.

        A transfer submitted now would share the wire with every active
        flow, so serialization stretches by ``n_active + 1``.  With an
        idle uplink this equals the bare link's expected cost — the
        offload policy prices congestion for free by holding a
        :class:`SharedUplink` instead of a :class:`NetworkLink`.
        """
        share = len(self._flows) + 1
        return (self.link.round_trip_seconds / 2.0
                + self.link.serialization_seconds(payload_bytes) * share)

    def sustainable_images_per_second(self, image_bytes: float) -> float:
        """Aggregate upload ceiling of the bottleneck (all endpoints)."""
        return self.link.sustainable_images_per_second(image_bytes)

    # -- the processor-sharing integration -----------------------------
    def _advance(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0.0 and self._flows:
            rate = self.link.bandwidth_bps / len(self._flows)
            drained = elapsed * rate
            for flow in self._flows:
                flow.bits_left -= drained
        self._last = now

    def _reschedule(self) -> None:
        if self._completion is not None:
            self.sim.cancel(self._completion)
            self._completion = None
        if self.telemetry is not None:
            self.telemetry.queue_depth(len(self._flows))
        if not self._flows:
            return
        n = len(self._flows)
        min_bits = min(flow.bits_left for flow in self._flows)
        delay = max(0.0, min_bits * n / self.link.bandwidth_bps)
        self._completion = self.sim.schedule(delay, self._on_serialized)

    def _on_serialized(self) -> None:
        self._completion = None
        self._advance(self.sim.now)
        finished = [f for f in self._flows if f.bits_left <= _BITS_EPS]
        if finished:
            self._flows = [f for f in self._flows
                           if f.bits_left > _BITS_EPS]
            for flow in finished:
                self._start_propagation(flow)
        self._reschedule()

    def _start_propagation(self, flow: _Flow) -> None:
        flow.state = _Flow.PROPAGATING
        delay = max(0.0, self.link.round_trip_seconds / 2.0 + flow.jitter)
        event = self.sim.schedule(delay, lambda: self._deliver(flow))
        handle = self._handles.get(flow.seq)
        if handle is not None:
            handle._delivery = event

    def _deliver(self, flow: _Flow) -> None:
        flow.state = _Flow.DELIVERED
        self._handles.pop(flow.seq, None)
        if flow.span is not None:
            flow.trace.end(flow.span, self.sim.now)
        if self.telemetry is not None:
            self.telemetry.sent(flow.payload_bytes, flow.direction,
                                retransmits=flow.retransmits)
        self.completed += 1
        flow.on_complete()

    def _cancel(self, flow: _Flow, delivery_event) -> None:
        if flow.state in (_Flow.DELIVERED, _Flow.CANCELLED):
            return
        if flow.state == _Flow.SERIALIZING:
            self._advance(self.sim.now)
            self._flows = [f for f in self._flows if f is not flow]
            self._reschedule()
        else:  # propagating
            handle = self._handles.get(flow.seq)
            event = (handle._delivery if handle is not None
                     else delivery_event)
            if event is not None:
                self.sim.cancel(event)
        flow.state = _Flow.CANCELLED
        self._handles.pop(flow.seq, None)
        if flow.span is not None and flow.span.end is None:
            flow.span.args["cancelled"] = True
            flow.trace.end(flow.span, self.sim.now)
            flow.span = None

    # -- transport surface ---------------------------------------------
    def schedule_transfer(self, sim, payload_bytes: float, on_complete,
                          trace=None, direction: str = "uplink"):
        """Enter one transfer into the bottleneck at the current time.

        Uplink-direction transfers contend under fair sharing; other
        directions delegate to the underlying link (sampled from the
        same RNG stream, so determinism covers both legs).  Returns an
        :class:`UplinkTransfer` (or
        :class:`~repro.continuum.network.Transfer`) handle.
        """
        if sim is not self.sim:
            raise ValueError("shared uplink is bound to one simulator")
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        if direction != "uplink":
            return self.link.schedule_transfer(
                sim, payload_bytes, on_complete, trace=trace,
                direction=direction, rng=self._rng,
                telemetry=self.telemetry)
        retransmits = self.link.sample_retransmits(payload_bytes,
                                                   self._rng)
        jitter = self.link.sample_jitter(self._rng)
        packets = self.link.packet_count(payload_bytes)
        wire_bits = (payload_bytes * self.link.overhead_factor * 8.0
                     * (packets + retransmits) / packets)
        span = None
        if trace is not None:
            span = trace.begin(direction, sim.now, category="network",
                               link=self.link.name,
                               payload_bytes=payload_bytes,
                               queue_depth=len(self._flows))
            if retransmits:
                span.args["retransmits"] = retransmits
        self.total_retransmits += retransmits
        self._advance(sim.now)
        flow = _Flow(self._next_seq, wire_bits, payload_bytes,
                     retransmits, jitter, on_complete, trace, span,
                     direction)
        self._next_seq += 1
        self._flows.append(flow)
        self.peak_concurrency = max(self.peak_concurrency,
                                    len(self._flows))
        handle = UplinkTransfer(self, flow)
        self._handles[flow.seq] = handle
        self._reschedule()
        return handle


class BufferedTransfer:
    """Handle for a transfer parked in a store-and-forward buffer."""

    __slots__ = ("_buffer", "_entry", "forwarded")

    def __init__(self, buffer, entry):
        self._buffer = buffer
        self._entry = entry
        #: The live transport handle once the buffer drains (None while
        #: parked or after a cancel).
        self.forwarded = None

    @property
    def cancelled(self) -> bool:
        """Whether the entry was dropped before (or after) forwarding."""
        return self._entry.get("cancelled", False) or (
            self.forwarded is not None and self.forwarded.cancelled)

    @property
    def fired(self) -> bool:
        """Whether the forwarded transfer delivered."""
        return self.forwarded is not None and self.forwarded.fired

    def cancel(self) -> None:
        """Drop the parked entry (or cancel the forwarded transfer)."""
        if self.forwarded is not None:
            self.forwarded.cancel()
            return
        self._buffer._cancel_entry(self._entry)


class StoreAndForward:
    """A byte-bounded outage buffer in front of any transport.

    While the link is up, transfers pass straight through.  While it is
    down (per the attached
    :class:`~repro.serving.faults.LinkOutageModel`, or an explicit
    :meth:`fail`), transfers park in a FIFO buffer — each under a
    ``store_and_forward`` span so the trace shows the wait — and drain
    in order on restore.  Only a full buffer drops (tail drop, counted
    in ``dropped``): connectivity loss degrades to delayed delivery,
    not to data loss.
    """

    def __init__(self, transport, sim, outage=None,
                 capacity_bytes: float = float("inf"), registry=None):
        if capacity_bytes <= 0:
            raise ValueError("buffer capacity must be positive")
        self.transport = transport
        self.sim = sim
        self.outage = outage
        self.capacity_bytes = capacity_bytes
        self.down = False
        self._queue: collections.deque = collections.deque()
        self._buffered_bytes = 0.0
        self.telemetry = (LinkTelemetry(registry,
                                        getattr(transport, "name", "link"))
                          if registry is not None else None)
        #: Lifetime statistics.
        self.buffered_total = 0
        self.dropped = 0
        self.max_buffer_depth = 0
        self.outages = 0

    # -- pricing delegation --------------------------------------------
    @property
    def name(self) -> str:
        """The wrapped transport's link name."""
        return getattr(self.transport, "name", "link")

    @property
    def bandwidth_bps(self) -> float:
        """The wrapped transport's bandwidth."""
        return self.transport.bandwidth_bps

    @property
    def round_trip_seconds(self) -> float:
        """The wrapped transport's RTT."""
        return self.transport.round_trip_seconds

    @property
    def overhead_factor(self) -> float:
        """The wrapped transport's framing overhead multiplier."""
        return self.transport.overhead_factor

    def transfer_seconds(self, payload_bytes: float) -> float:
        """Expected transfer time on the wrapped transport (when up)."""
        return self.transport.transfer_seconds(payload_bytes)

    def sustainable_images_per_second(self, image_bytes: float) -> float:
        """The wrapped transport's upload-rate ceiling."""
        return self.transport.sustainable_images_per_second(image_bytes)

    @property
    def buffer_depth(self) -> int:
        """Transfers currently parked."""
        return len(self._queue)

    # -- outage wiring --------------------------------------------------
    def start(self, horizon: float) -> None:
        """Arm the outage model's down/up transitions until ``horizon``.

        Transitions are daemon events: an outage window scheduled past
        the end of the workload never keeps the simulation alive.
        """
        if self.outage is None:
            return
        for start, end in self.outage.windows_until(horizon):
            self.sim.schedule_at(start, self.fail, daemon=True)
            self.sim.schedule_at(end, self.restore, daemon=True)

    def fail(self) -> None:
        """Take the link down; subsequent transfers buffer."""
        if not self.down:
            self.down = True
            self.outages += 1

    def restore(self) -> None:
        """Bring the link up and drain the buffered backlog in order."""
        if not self.down:
            return
        self.down = False
        while self._queue:
            entry = self._queue.popleft()
            self._forward(entry)
        self._buffered_bytes = 0.0
        self._publish_depth()

    # -- transport surface ---------------------------------------------
    def schedule_transfer(self, sim, payload_bytes: float, on_complete,
                          trace=None, direction: str = "uplink"):
        """Pass through when up; park under a buffering span when down."""
        if sim is not self.sim:
            raise ValueError("store-and-forward is bound to one simulator")
        if not self.down:
            return self.transport.schedule_transfer(
                sim, payload_bytes, on_complete, trace=trace,
                direction=direction)
        if self._buffered_bytes + payload_bytes > self.capacity_bytes:
            self.dropped += 1
            if trace is not None:
                trace.instant("store_and_forward_drop", sim.now,
                              category="network", link=self.name,
                              payload_bytes=payload_bytes)
            return None
        span = None
        if trace is not None:
            span = trace.begin("store_and_forward", sim.now,
                               category="network", link=self.name,
                               payload_bytes=payload_bytes,
                               buffer_depth=len(self._queue))
        entry = {"payload": payload_bytes, "on_complete": on_complete,
                 "trace": trace, "span": span, "direction": direction,
                 "cancelled": False}
        handle = BufferedTransfer(self, entry)
        entry["handle"] = handle
        self._queue.append(entry)
        self._buffered_bytes += payload_bytes
        self.buffered_total += 1
        self.max_buffer_depth = max(self.max_buffer_depth,
                                    len(self._queue))
        self._publish_depth()
        return handle

    def _forward(self, entry) -> None:
        if entry["cancelled"]:
            return
        span, trace = entry["span"], entry["trace"]
        if span is not None:
            trace.end(span, self.sim.now)
        forwarded = self.transport.schedule_transfer(
            self.sim, entry["payload"], entry["on_complete"],
            trace=trace, direction=entry["direction"])
        entry["handle"].forwarded = forwarded

    def _cancel_entry(self, entry) -> None:
        if entry["cancelled"]:
            return
        entry["cancelled"] = True
        try:
            self._queue.remove(entry)
        except ValueError:
            return
        self._buffered_bytes -= entry["payload"]
        span, trace = entry["span"], entry["trace"]
        if span is not None and span.end is None:
            span.args["cancelled"] = True
            trace.end(span, self.sim.now)
        self._publish_depth()

    def _publish_depth(self) -> None:
        if self.telemetry is not None:
            self.telemetry.queue_depth(len(self._queue),
                                       component="buffer")
